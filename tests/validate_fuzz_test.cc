// Differential query fuzzer: three independent implementations (graph
// store, relational baseline, naive oracle) must agree on every read query
// over hundreds of random graphs; any disagreement shrinks to a minimal
// standalone regression artifact.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "validate/fuzz.h"

namespace snb::validate {
namespace {

TEST(FuzzGeneratorTest, IsDeterministicAndBounded) {
  schema::SocialNetwork a = GenerateFuzzNetwork(42, 12);
  schema::SocialNetwork b = GenerateFuzzNetwork(42, 12);
  ASSERT_EQ(a.persons.size(), b.persons.size());
  ASSERT_GE(a.persons.size(), 2u);
  ASSERT_LE(a.persons.size(), 12u);
  ASSERT_EQ(a.knows.size(), b.knows.size());
  ASSERT_EQ(a.messages.size(), b.messages.size());
  ASSERT_EQ(a.likes.size(), b.likes.size());
  for (size_t i = 0; i < a.messages.size(); ++i) {
    EXPECT_EQ(a.messages[i].id, b.messages[i].id);
    EXPECT_EQ(a.messages[i].content, b.messages[i].content);
  }
  // A different seed produces a different graph (overwhelmingly likely).
  schema::SocialNetwork c = GenerateFuzzNetwork(43, 12);
  EXPECT_TRUE(a.persons.size() != c.persons.size() ||
              a.messages.size() != c.messages.size() ||
              a.knows.size() != c.knows.size() ||
              a.likes.size() != c.likes.size());
}

TEST(FuzzGeneratorTest, CommentsReplyToEarlierMessages) {
  for (uint64_t seed : {1ULL, 7ULL, 99ULL}) {
    schema::SocialNetwork net = GenerateFuzzNetwork(seed, 12);
    for (const schema::Message& m : net.messages) {
      if (m.kind == schema::MessageKind::kComment) {
        EXPECT_LT(m.reply_to_id, m.id);
        EXPECT_NE(m.root_post_id, schema::kInvalidId);
      } else {
        EXPECT_EQ(m.root_post_id, m.id);
      }
    }
  }
}

// The acceptance gate: >= 200 random graphs, all 21 read queries, zero
// mismatches between the store, the relational baseline and the oracle.
TEST(DifferentialFuzzTest, TwoHundredGraphsAgreeAcrossBackends) {
  FuzzConfig config;
  config.num_graphs = 200;
  FuzzOutcome outcome;
  ASSERT_TRUE(RunDifferentialFuzz(config, &outcome).ok());
  EXPECT_EQ(outcome.graphs_run, 200);
  EXPECT_GT(outcome.comparisons, 0u);
  ASSERT_EQ(outcome.mismatches, 0)
      << "backend " << outcome.first.backend << " diverged on "
      << outcome.first.binding.op << " (graph seed "
      << outcome.first.graph_seed << "):\n"
      << MismatchToJson(outcome.first);
}

TEST(DifferentialFuzzTest, PerturbationIsCaughtShrunkAndRoundTrips) {
  // Simulated store-side bug: Q2 drops its last row.
  StorePerturbation drop_last = [](const std::string& op,
                                   std::vector<std::string>* rows) {
    if (op == "complex.Q2" && !rows->empty()) rows->pop_back();
  };
  FuzzConfig config;
  config.num_graphs = 50;
  FuzzOutcome outcome;
  ASSERT_TRUE(RunDifferentialFuzz(config, drop_last, &outcome).ok());
  ASSERT_EQ(outcome.mismatches, 1);
  const FuzzMismatch& mismatch = outcome.first;
  EXPECT_EQ(mismatch.backend, "store");
  EXPECT_EQ(mismatch.binding.op, "complex.Q2");
  EXPECT_NE(mismatch.expected, mismatch.actual);

  // The shrunk graph still reproduces, and shrinking actually removed
  // irrelevant structure: the surviving graph is no bigger than the
  // original the seed regenerates.
  EXPECT_TRUE(MismatchReproduces(mismatch, drop_last));
  schema::SocialNetwork original =
      GenerateFuzzNetwork(mismatch.graph_seed, config.max_persons);
  size_t original_entities = original.persons.size() + original.knows.size() +
                             original.messages.size() + original.likes.size() +
                             original.memberships.size() +
                             original.forums.size();
  size_t shrunk_entities =
      mismatch.graph.persons.size() + mismatch.graph.knows.size() +
      mismatch.graph.messages.size() + mismatch.graph.likes.size() +
      mismatch.graph.memberships.size() + mismatch.graph.forums.size();
  EXPECT_LE(shrunk_entities, original_entities);

  // Artifact round-trip: write, read back, reproduce from the file alone.
  std::string path = ::testing::TempDir() + "fuzz_regression.json";
  ASSERT_TRUE(WriteMismatch(mismatch, path).ok());
  FuzzMismatch loaded;
  ASSERT_TRUE(ReadMismatch(path, &loaded).ok());
  // The shard count the mismatch was found at travels with the artifact,
  // so the reproducer rebuilds the same store topology.
  EXPECT_GE(mismatch.shard_count, 1u);
  EXPECT_LE(mismatch.shard_count, 8u);
  EXPECT_EQ(loaded.shard_count, mismatch.shard_count);
  EXPECT_EQ(loaded.backend, mismatch.backend);
  EXPECT_EQ(loaded.binding.op, mismatch.binding.op);
  EXPECT_EQ(loaded.expected, mismatch.expected);
  EXPECT_EQ(loaded.actual, mismatch.actual);
  EXPECT_EQ(loaded.graph.persons.size(), mismatch.graph.persons.size());
  EXPECT_EQ(loaded.graph.messages.size(), mismatch.graph.messages.size());
  for (size_t i = 0; i < loaded.graph.messages.size(); ++i) {
    EXPECT_EQ(loaded.graph.messages[i].content,
              mismatch.graph.messages[i].content);
    EXPECT_EQ(loaded.graph.messages[i].reply_to_id,
              mismatch.graph.messages[i].reply_to_id);
  }
  EXPECT_TRUE(MismatchReproduces(loaded, drop_last));
  // Without the simulated bug the artifact does not reproduce — the
  // mismatch lived in the perturbation, not the store.
  EXPECT_FALSE(MismatchReproduces(loaded));
  std::remove(path.c_str());
}

TEST(FuzzArtifactTest, RejectsForeignAndCorruptDocuments) {
  FuzzMismatch out;
  EXPECT_FALSE(MismatchFromJson("not json", &out).ok());
  EXPECT_FALSE(MismatchFromJson("{\"schema\":\"other-v9\"}", &out).ok());
  EXPECT_FALSE(
      MismatchFromJson("{\"schema\":\"snb-fuzz-regression-v1\"}", &out).ok());
}

// v2 artifacts persist the shard count; v1 artifacts (written before the
// sharded store) must still load, defaulting to a single shard.
TEST(FuzzArtifactTest, ShardCountRoundTripsAndV1StaysAccepted) {
  FuzzMismatch m;
  m.graph_seed = 7;
  m.shard_count = 4;
  m.backend = "store";
  m.binding.op = "short.S3";
  m.binding.person = 1;
  m.expected = {"1|First|Last|100"};
  schema::Person a;
  a.id = 1;
  a.first_name = "First";
  a.last_name = "Last";
  schema::Person b;
  b.id = 2;
  b.first_name = "Other";
  b.last_name = "Person";
  m.graph.persons = {a, b};
  m.graph.knows = {{1, 2, 100}};

  std::string json = MismatchToJson(m);
  EXPECT_NE(json.find("snb-fuzz-regression-v2"), std::string::npos);
  FuzzMismatch loaded;
  ASSERT_TRUE(MismatchFromJson(json, &loaded).ok());
  EXPECT_EQ(loaded.shard_count, 4u);
  EXPECT_EQ(loaded.graph_seed, 7u);
  EXPECT_EQ(loaded.graph.persons.size(), 2u);

  // Downgrade the document to v1 by hand: old tag, no shard_count field.
  std::string v1 = json;
  size_t tag = v1.find("snb-fuzz-regression-v2");
  ASSERT_NE(tag, std::string::npos);
  v1.replace(tag, 22, "snb-fuzz-regression-v1");
  size_t field = v1.find("\"shard_count\":4,");
  ASSERT_NE(field, std::string::npos);
  v1.erase(field, 16);
  FuzzMismatch from_v1;
  ASSERT_TRUE(MismatchFromJson(v1, &from_v1).ok());
  EXPECT_EQ(from_v1.shard_count, 1u);
  EXPECT_EQ(from_v1.graph.persons.size(), 2u);

  // A v2 document with an out-of-range count is rejected.
  std::string bad = json;
  size_t count = bad.find("\"shard_count\":4");
  ASSERT_NE(count, std::string::npos);
  bad.replace(count, 15, "\"shard_count\":9");
  EXPECT_FALSE(MismatchFromJson(bad, &loaded).ok());
}

}  // namespace
}  // namespace snb::validate
