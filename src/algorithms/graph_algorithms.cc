#include "algorithms/graph_algorithms.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <numeric>
#include <unordered_map>

namespace snb::algorithms {

CsrGraph::CsrGraph(uint64_t num_vertices,
                   const std::vector<std::pair<uint32_t, uint32_t>>& edges) {
  std::vector<std::vector<uint32_t>> adjacency(num_vertices);
  for (const auto& [a, b] : edges) {
    assert(a < num_vertices && b < num_vertices);
    if (a == b) continue;
    adjacency[a].push_back(b);
    adjacency[b].push_back(a);
  }
  offsets_.assign(num_vertices + 1, 0);
  for (uint64_t v = 0; v < num_vertices; ++v) {
    std::vector<uint32_t>& nbrs = adjacency[v];
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
    offsets_[v + 1] = offsets_[v] + nbrs.size();
  }
  targets_.reserve(offsets_.back());
  for (const std::vector<uint32_t>& nbrs : adjacency) {
    targets_.insert(targets_.end(), nbrs.begin(), nbrs.end());
  }
}

CsrGraph CsrGraph::FromKnows(uint64_t num_persons,
                             const std::vector<schema::Knows>& knows) {
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  edges.reserve(knows.size());
  for (const schema::Knows& k : knows) {
    edges.push_back({static_cast<uint32_t>(k.person1_id),
                     static_cast<uint32_t>(k.person2_id)});
  }
  return CsrGraph(num_persons, edges);
}

CsrGraph CsrGraph::DegreeMatchedRandom(util::Rng& rng) const {
  // Configuration model: collect every half-edge, shuffle, and pair
  // consecutive stubs. Self-loops/parallel edges are dropped (collapsed by
  // the constructor), which only marginally perturbs the degree sequence.
  std::vector<uint32_t> stubs;
  stubs.reserve(targets_.size());
  for (uint32_t v = 0; v < num_vertices(); ++v) {
    for (uint32_t d = 0; d < Degree(v); ++d) stubs.push_back(v);
  }
  // Fisher-Yates with the deterministic Rng.
  for (size_t i = stubs.size(); i > 1; --i) {
    size_t j = rng.NextBounded(i);
    std::swap(stubs[i - 1], stubs[j]);
  }
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  edges.reserve(stubs.size() / 2);
  for (size_t i = 0; i + 1 < stubs.size(); i += 2) {
    edges.push_back({stubs[i], stubs[i + 1]});
  }
  return CsrGraph(num_vertices(), edges);
}

std::vector<double> PageRank(const CsrGraph& graph, double damping,
                             int iterations) {
  uint32_t n = graph.num_vertices();
  if (n == 0) return {};
  std::vector<double> rank(n, 1.0 / n);
  std::vector<double> next(n, 0.0);
  for (int it = 0; it < iterations; ++it) {
    double dangling = 0.0;
    std::fill(next.begin(), next.end(), 0.0);
    for (uint32_t v = 0; v < n; ++v) {
      uint32_t degree = graph.Degree(v);
      if (degree == 0) {
        dangling += rank[v];
        continue;
      }
      double share = rank[v] / degree;
      for (const uint32_t* t = graph.NeighborsBegin(v);
           t != graph.NeighborsEnd(v); ++t) {
        next[*t] += share;
      }
    }
    double teleport = (1.0 - damping) / n + damping * dangling / n;
    for (uint32_t v = 0; v < n; ++v) {
      next[v] = teleport + damping * next[v];
    }
    rank.swap(next);
  }
  return rank;
}

std::vector<int32_t> BreadthFirstSearch(const CsrGraph& graph,
                                        uint32_t source, uint64_t* reached) {
  std::vector<int32_t> level(graph.num_vertices(), -1);
  uint64_t count = 0;
  if (source < graph.num_vertices()) {
    std::deque<uint32_t> queue{source};
    level[source] = 0;
    count = 1;
    while (!queue.empty()) {
      uint32_t v = queue.front();
      queue.pop_front();
      for (const uint32_t* t = graph.NeighborsBegin(v);
           t != graph.NeighborsEnd(v); ++t) {
        if (level[*t] < 0) {
          level[*t] = level[v] + 1;
          ++count;
          queue.push_back(*t);
        }
      }
    }
  }
  if (reached != nullptr) *reached = count;
  return level;
}

std::vector<uint32_t> ConnectedComponents(const CsrGraph& graph,
                                          uint64_t* count) {
  uint32_t n = graph.num_vertices();
  std::vector<uint32_t> component(n, ~0u);
  uint64_t components = 0;
  std::deque<uint32_t> queue;
  for (uint32_t root = 0; root < n; ++root) {
    if (component[root] != ~0u) continue;
    ++components;
    component[root] = root;
    queue.push_back(root);
    while (!queue.empty()) {
      uint32_t v = queue.front();
      queue.pop_front();
      for (const uint32_t* t = graph.NeighborsBegin(v);
           t != graph.NeighborsEnd(v); ++t) {
        if (component[*t] == ~0u) {
          component[*t] = root;
          queue.push_back(*t);
        }
      }
    }
  }
  if (count != nullptr) *count = components;
  return component;
}

std::vector<uint32_t> LabelPropagation(const CsrGraph& graph,
                                       int max_iterations) {
  // Asynchronous (in-place) label propagation with deterministic vertex
  // order: synchronous updates oscillate or collapse on dense graphs. A
  // vertex keeps its current label when it ties for the majority; other
  // ties break by a seeded random pick (a fixed preference like "smallest
  // label" floods one label across community bridges).
  uint32_t n = graph.num_vertices();
  std::vector<uint32_t> labels(n);
  std::iota(labels.begin(), labels.end(), 0);
  std::unordered_map<uint32_t, uint32_t> votes;
  for (int it = 0; it < max_iterations; ++it) {
    bool changed = false;
    for (uint32_t v = 0; v < n; ++v) {
      if (graph.Degree(v) == 0) continue;
      votes.clear();
      for (const uint32_t* t = graph.NeighborsBegin(v);
           t != graph.NeighborsEnd(v); ++t) {
        ++votes[labels[*t]];
      }
      uint32_t best_count = 0;
      for (auto [label, count] : votes) {
        best_count = std::max(best_count, count);
      }
      // Keep the current label when it is among the maxima.
      auto own = votes.find(labels[v]);
      if (own != votes.end() && own->second == best_count) continue;
      std::vector<uint32_t> maxima;
      for (auto [label, count] : votes) {
        if (count == best_count) maxima.push_back(label);
      }
      std::sort(maxima.begin(), maxima.end());
      util::Rng tie_rng(0x1abe1, (static_cast<uint64_t>(it) << 32) | v,
                        util::RandomPurpose::kFriendPick);
      uint32_t best_label = maxima[tie_rng.NextBounded(maxima.size())];
      if (best_label != labels[v]) {
        labels[v] = best_label;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return labels;
}

namespace {

/// Weighted undirected multigraph used by Louvain aggregation. Self-loop
/// weight counts both endpoints (like degree).
struct WeightedGraph {
  std::vector<std::unordered_map<uint32_t, double>> adjacency;
  std::vector<double> self_loop;  // 2x internal weight of the super-node.
  double total_weight2 = 0.0;     // 2m.

  uint32_t size() const { return static_cast<uint32_t>(adjacency.size()); }

  double WeightedDegree(uint32_t v) const {
    double d = self_loop[v];
    for (auto [_, w] : adjacency[v]) d += w;
    return d;
  }
};

WeightedGraph FromCsr(const CsrGraph& graph) {
  WeightedGraph wg;
  wg.adjacency.resize(graph.num_vertices());
  wg.self_loop.assign(graph.num_vertices(), 0.0);
  for (uint32_t v = 0; v < graph.num_vertices(); ++v) {
    for (const uint32_t* t = graph.NeighborsBegin(v);
         t != graph.NeighborsEnd(v); ++t) {
      wg.adjacency[v][*t] += 1.0;
      wg.total_weight2 += 1.0;
    }
  }
  return wg;
}

/// One Louvain level: local moving until stable; returns the labels and
/// whether anything moved.
bool LocalMoving(const WeightedGraph& graph, std::vector<uint32_t>& labels) {
  uint32_t n = graph.size();
  double m2 = graph.total_weight2;
  if (m2 == 0.0) return false;
  // Total weighted degree per community.
  std::vector<double> community_degree(n, 0.0);
  std::vector<double> degree(n, 0.0);
  for (uint32_t v = 0; v < n; ++v) {
    degree[v] = graph.WeightedDegree(v);
    community_degree[labels[v]] += degree[v];
  }
  bool any_move = false;
  bool improved = true;
  std::unordered_map<uint32_t, double> links;  // Community -> edge weight.
  for (int round = 0; round < 40 && improved; ++round) {
    improved = false;
    for (uint32_t v = 0; v < n; ++v) {
      uint32_t current = labels[v];
      links.clear();
      for (auto [t, w] : graph.adjacency[v]) {
        if (t != v) links[labels[t]] += w;
      }
      community_degree[current] -= degree[v];
      double best_gain = links.count(current) > 0
                             ? links[current] -
                                   community_degree[current] * degree[v] / m2
                             : -community_degree[current] * degree[v] / m2;
      uint32_t best = current;
      for (auto [community, weight] : links) {
        if (community == current) continue;
        double gain =
            weight - community_degree[community] * degree[v] / m2;
        if (gain > best_gain + 1e-12) {
          best_gain = gain;
          best = community;
        }
      }
      community_degree[best] += degree[v];
      if (best != current) {
        labels[v] = best;
        improved = true;
        any_move = true;
      }
    }
  }
  return any_move;
}

/// Aggregates communities into super-nodes.
WeightedGraph Aggregate(const WeightedGraph& graph,
                        const std::vector<uint32_t>& labels,
                        std::vector<uint32_t>* renumbered) {
  // Renumber labels densely.
  std::unordered_map<uint32_t, uint32_t> dense;
  renumbered->assign(labels.size(), 0);
  for (size_t v = 0; v < labels.size(); ++v) {
    auto [it, inserted] = dense.try_emplace(
        labels[v], static_cast<uint32_t>(dense.size()));
    (*renumbered)[v] = it->second;
  }
  WeightedGraph out;
  out.adjacency.resize(dense.size());
  out.self_loop.assign(dense.size(), 0.0);
  out.total_weight2 = graph.total_weight2;
  for (uint32_t v = 0; v < graph.size(); ++v) {
    uint32_t cv = (*renumbered)[v];
    out.self_loop[cv] += graph.self_loop[v];
    for (auto [t, w] : graph.adjacency[v]) {
      uint32_t ct = (*renumbered)[t];
      if (ct == cv) {
        out.self_loop[cv] += w;
      } else {
        out.adjacency[cv][ct] += w;
      }
    }
  }
  return out;
}

}  // namespace

std::vector<uint32_t> Louvain(const CsrGraph& graph, int max_levels) {
  uint32_t n = graph.num_vertices();
  std::vector<uint32_t> assignment(n);
  std::iota(assignment.begin(), assignment.end(), 0);
  WeightedGraph level_graph = FromCsr(graph);
  std::vector<uint32_t> level_labels(n);
  std::iota(level_labels.begin(), level_labels.end(), 0);

  for (int level = 0; level < max_levels; ++level) {
    if (!LocalMoving(level_graph, level_labels)) break;
    std::vector<uint32_t> renumbered;
    level_graph = Aggregate(level_graph, level_labels, &renumbered);
    // Compose: original vertex -> super-node of this level.
    for (uint32_t v = 0; v < n; ++v) {
      assignment[v] = renumbered[assignment[v]];
    }
    level_labels.assign(level_graph.size(), 0);
    std::iota(level_labels.begin(), level_labels.end(), 0);
  }
  return assignment;
}

double Modularity(const CsrGraph& graph,
                  const std::vector<uint32_t>& labels) {
  double m2 = 0.0;  // 2m = sum of degrees.
  for (uint32_t v = 0; v < graph.num_vertices(); ++v) {
    m2 += graph.Degree(v);
  }
  if (m2 == 0.0) return 0.0;

  // Sum over communities of (intra-edges/m - (deg_sum/2m)^2).
  std::unordered_map<uint32_t, double> intra;   // 2 * intra edge endpoints.
  std::unordered_map<uint32_t, double> degree_sum;
  for (uint32_t v = 0; v < graph.num_vertices(); ++v) {
    degree_sum[labels[v]] += graph.Degree(v);
    for (const uint32_t* t = graph.NeighborsBegin(v);
         t != graph.NeighborsEnd(v); ++t) {
      if (labels[*t] == labels[v]) intra[labels[v]] += 1.0;
    }
  }
  double q = 0.0;
  for (auto [label, deg] : degree_sum) {
    double e_in = intra.count(label) > 0 ? intra[label] / m2 : 0.0;
    double a = deg / m2;
    q += e_in - a * a;
  }
  return q;
}

double LocalClusteringCoefficient(const CsrGraph& graph, uint32_t v) {
  uint32_t degree = graph.Degree(v);
  if (degree < 2) return 0.0;
  uint64_t closed = 0;
  for (const uint32_t* a = graph.NeighborsBegin(v);
       a != graph.NeighborsEnd(v); ++a) {
    for (const uint32_t* b = a + 1; b != graph.NeighborsEnd(v); ++b) {
      // Is (a, b) an edge? Binary search in a's (sorted) adjacency.
      const uint32_t* begin = graph.NeighborsBegin(*a);
      const uint32_t* end = graph.NeighborsEnd(*a);
      if (std::binary_search(begin, end, *b)) ++closed;
    }
  }
  double pairs = 0.5 * degree * (degree - 1);
  return static_cast<double>(closed) / pairs;
}

double AverageClusteringCoefficient(const CsrGraph& graph) {
  double sum = 0.0;
  uint64_t counted = 0;
  for (uint32_t v = 0; v < graph.num_vertices(); ++v) {
    if (graph.Degree(v) < 2) continue;
    sum += LocalClusteringCoefficient(graph, v);
    ++counted;
  }
  return counted == 0 ? 0.0 : sum / static_cast<double>(counted);
}

uint64_t CountTriangles(const CsrGraph& graph) {
  // Each triangle counted once via ordered triple (v < a < b).
  uint64_t triangles = 0;
  for (uint32_t v = 0; v < graph.num_vertices(); ++v) {
    for (const uint32_t* a = graph.NeighborsBegin(v);
         a != graph.NeighborsEnd(v); ++a) {
      if (*a <= v) continue;
      for (const uint32_t* b = a + 1; b != graph.NeighborsEnd(v); ++b) {
        if (std::binary_search(graph.NeighborsBegin(*a),
                               graph.NeighborsEnd(*a), *b)) {
          ++triangles;
        }
      }
    }
  }
  return triangles;
}

}  // namespace snb::algorithms
