file(REMOVE_RECURSE
  "CMakeFiles/recycler_test.dir/recycler_test.cc.o"
  "CMakeFiles/recycler_test.dir/recycler_test.cc.o.d"
  "recycler_test"
  "recycler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recycler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
