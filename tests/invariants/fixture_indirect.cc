// Mutation fixture: an epoch-pinned read path that calls through a
// function pointer. Static reachability cannot see through it, so the
// checker must flag the indirect transfer conservatively (the rule's
// indirect_allow is empty) rather than silently assuming the target is
// benign.
#include <cstdint>

#include "util/invariant_root.h"

namespace fixture {

__attribute__((noinline, used)) uint64_t Leaf(uint64_t x) { return x ^ 42; }

uint64_t (*volatile g_fp)(uint64_t) = &Leaf;

__attribute__((noinline, used)) uint64_t IndirectPinnedRead(uint64_t x) {
  SNB_INVARIANT_ROOT("pinned_read");
  return g_fp(x);  // The violation under test: an unvetted indirect call.
}

}  // namespace fixture

uint64_t (*volatile g_pinned)(uint64_t) = &fixture::IndirectPinnedRead;

int main(int argc, char**) {
  return static_cast<int>(g_pinned(static_cast<uint64_t>(argc)) & 1);
}
