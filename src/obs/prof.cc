#include "obs/prof.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <thread>
#include <unordered_map>

#include "obs/metrics.h"
#include "util/invariant_root.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

#if defined(__linux__)
#include <cxxabi.h>
#include <dlfcn.h>
#include <pthread.h>
#include <signal.h>
#include <sys/syscall.h>
#include <time.h>
#include <ucontext.h>
#include <unistd.h>
#endif

// Sanitizer runtimes intercept signal delivery and instrument the
// handler path, so per-sample signals both distort what TSan/ASan
// verify and violate the runtimes' own signal-safety expectations. The
// profiler compiles to the no-op backend outright under either.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define SNB_PROF_UNDER_SANITIZER 1
#endif
#if defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define SNB_PROF_UNDER_SANITIZER 1
#endif
#endif

namespace snb::obs::prof {
namespace {

/// Samples a handler invocation can record before truncating the walk.
/// Deep template stacks truncate at the root end; the leaf frames (the
/// ones a flamegraph is read by) always survive.
inline constexpr size_t kMaxFrames = 24;
/// Per-thread ring capacity. At the default 997 us CPU interval a fully
/// CPU-bound thread produces ~1000 samples/s, so the collator's 100 ms
/// drain cadence keeps the ring under 3% full.
inline constexpr uint32_t kRingCapacity = 4096;

/// One sample, written by the signal handler (fixed size, no pointers
/// the collator cannot chase: `label` has static storage duration).
struct Sample {
  const char* label;
  uint16_t op;
  uint16_t depth;
  uintptr_t pc[kMaxFrames];
};

std::atomic<Backend> g_backend{Backend::kDisabled};
std::atomic<int> g_forced_errno{0};
std::atomic<uint32_t> g_interval_us{997};

/// Guards the registry, the fold map and the collator lifecycle. The
/// signal handler NEVER takes it (it only touches its own thread's ring
/// and relaxed atomics); everything else — registration, draining,
/// Collect(), Enable()/ResetForTest() — serializes here.
util::Mutex g_prof_mu;
/// Guards the human-readable backend message (cold paths only).
util::Mutex g_prof_message_mu;

std::string& MessageStorage() {
  static std::string storage;
  return storage;
}

void SetMessage(const std::string& message) {
  util::MutexLock lock(&g_prof_message_mu);
  MessageStorage() = message;
}

/// Everything the handler writes into, per registered thread. Lives
/// until ResetForTest() — never while its thread could still deliver a
/// late signal — so the handler needs no lifetime handshake beyond the
/// thread-local pointer below.
struct ThreadState {
  // Registration-time constants (read by handler and collator).
  std::string lane;
  uint32_t lane_id = 0;
  pid_t tid = 0;
  pthread_t pthread{};
  uintptr_t stack_lo = 0;
  uintptr_t stack_hi = 0;

  // SPSC ring: the handler is the only producer (it runs on this
  // thread), the collator the only consumer (under g_prof_mu).
  std::unique_ptr<Sample[]> ring{std::make_unique<Sample[]>(kRingCapacity)};
  std::atomic<uint32_t> head{0};
  std::atomic<uint32_t> tail{0};

  // Handler-written accounting.
  std::atomic<uint64_t> dropped{0};
  std::atomic<uint64_t> overhead_ns{0};

  // Attribution context: written by this thread's scopes, read by the
  // handler interrupting this thread. Relaxed is enough — writer and
  // reader are the same thread.
  std::atomic<uint16_t> op_context{kNoOpContext};
  std::atomic<const char*> op_label{nullptr};

  // Collator-side state, all under g_prof_mu.
  uint64_t cpu_base_ns SNB_GUARDED_BY(g_prof_mu) = 0;
  bool timer_armed SNB_GUARDED_BY(g_prof_mu) = false;
  bool live SNB_GUARDED_BY(g_prof_mu) = true;
#if defined(__linux__)
  timer_t timer SNB_GUARDED_BY(g_prof_mu){};
#endif
};

/// Fold key: [lane_id, op, label ptr, pc leaf..root]. Pointer-sized
/// slots make the map key a flat byte-comparable vector.
using FoldKey = std::vector<uintptr_t>;

/// Global profiler state. Intentionally leaked (like the metrics
/// registry): the collator thread and late-unregistering threads may
/// touch it during process teardown, after static destructors ran.
struct State {
  std::vector<std::unique_ptr<ThreadState>> all SNB_GUARDED_BY(g_prof_mu);
  std::vector<ThreadState*> registry SNB_GUARDED_BY(g_prof_mu);
  std::vector<std::string> lanes SNB_GUARDED_BY(g_prof_mu);
  std::map<FoldKey, uint64_t> folds SNB_GUARDED_BY(g_prof_mu);
  std::unordered_map<uintptr_t, std::string> symbols
      SNB_GUARDED_BY(g_prof_mu);
  uint64_t attributed SNB_GUARDED_BY(g_prof_mu) = 0;
  uint64_t unattributed SNB_GUARDED_BY(g_prof_mu) = 0;
  uint64_t retired_dropped SNB_GUARDED_BY(g_prof_mu) = 0;
  uint64_t retired_overhead_ns SNB_GUARDED_BY(g_prof_mu) = 0;
  uint64_t retired_task_clock_ns SNB_GUARDED_BY(g_prof_mu) = 0;
  uint32_t threads_ever SNB_GUARDED_BY(g_prof_mu) = 0;
  bool collator_running SNB_GUARDED_BY(g_prof_mu) = false;
  bool collator_stop SNB_GUARDED_BY(g_prof_mu) = false;
  std::thread collator;  // Managed under g_prof_mu via the flags above.
  std::condition_variable_any collator_cv;
};

State& S() {
  static State* state = new State();  // Leaked by design, see above.
  return *state;
}

/// The calling thread's registration, set under g_prof_mu by
/// RegisterCurrentThread before its timer can fire. Read by the signal
/// handler: initial-exec TLS resolves to a register offset, no lazy
/// allocation, so the access is async-signal-safe in practice (the same
/// contract every in-process sampling profiler relies on).
thread_local ThreadState* tls_state = nullptr;

/// Unregisters at thread exit for threads that never close their scope
/// explicitly (lazily-registered pool workers). A thread_local with a
/// destructor is only constructed — and its at-thread-exit destructor
/// only registered — on first odr-use, so RegisterCurrentThread calls
/// EnsureConstructed(); without that, pool threads would retire with
/// their timers armed and dangling pthread_t handles in the registry.
struct TlsOwner {
  void EnsureConstructed() {}
  ~TlsOwner() { UnregisterCurrentThread(); }
};
thread_local TlsOwner tls_owner;

#if defined(__linux__)

#ifndef SIGEV_THREAD_ID
#define SIGEV_THREAD_ID 4
#endif
#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif

pid_t CurrentTid() { return static_cast<pid_t>(::syscall(SYS_gettid)); }

uint64_t TimespecNs(const timespec& ts) {
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

/// CPU time the calling thread has burned so far.
uint64_t SelfCpuNs() {
  timespec ts{};
  if (::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return TimespecNs(ts);
}

/// CPU time of another (live, registered) thread, via its CPU clock.
uint64_t ThreadCpuNs(pthread_t thread) {
  clockid_t clock;
  timespec ts{};
  if (::pthread_getcpuclockid(thread, &clock) != 0) return 0;
  if (::clock_gettime(clock, &ts) != 0) return 0;
  return TimespecNs(ts);
}

// ---- The signal handler ---------------------------------------------------
//
// Async-signal-safety rules (documented in DESIGN.md):
//   * no allocation, no locks, no iostream, no string building;
//   * only clock_gettime (async-signal-safe per POSIX), relaxed/acq-rel
//     atomics on this thread's own state, and raw memory reads that are
//     bounds-checked against this thread's stack;
//   * errno is saved and restored;
//   * SIGPROF is not SA_NODEFER, so the handler never re-enters itself.

/// Frame-pointer walk out of the interrupted context. Frames layout
/// (x86-64 and AArch64 alike, given -fno-omit-frame-pointer): [fp] is
/// the caller's frame pointer, [fp + 8] the return address. Every
/// dereference is bounds-checked against the thread's stack and the
/// chain must grow strictly upward, so a torn or foreign fp terminates
/// the walk instead of faulting.
uint16_t WalkStack(void* ucontext_ptr, const ThreadState* st,
                   uintptr_t* out) {
  uintptr_t pc = 0;
  uintptr_t fp = 0;
#if defined(__x86_64__)
  const ucontext_t* uc = static_cast<const ucontext_t*>(ucontext_ptr);
  pc = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
  fp = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
#elif defined(__aarch64__)
  const ucontext_t* uc = static_cast<const ucontext_t*>(ucontext_ptr);
  pc = static_cast<uintptr_t>(uc->uc_mcontext.pc);
  fp = static_cast<uintptr_t>(uc->uc_mcontext.regs[29]);
#else
  (void)ucontext_ptr;  // Unknown frame layout: context-only samples.
#endif
  uint16_t depth = 0;
  if (pc != 0) out[depth++] = pc;
  while (depth < kMaxFrames && fp >= st->stack_lo &&
         fp + 2 * sizeof(uintptr_t) <= st->stack_hi &&
         (fp & (sizeof(uintptr_t) - 1)) == 0) {
    const uintptr_t* frame = reinterpret_cast<const uintptr_t*>(fp);
    uintptr_t next_fp = frame[0];
    uintptr_t ret = frame[1];
    if (ret < 4096) break;  // Null page: top of the chain.
    out[depth++] = ret;
    if (next_fp <= fp) break;  // Stacks grow down; fp chains grow up.
    fp = next_fp;
  }
  return depth;
}

void ProfSignalHandler(int /*signo*/, siginfo_t* /*info*/, void* ucontext) {
  // Checked by tools/snb_invariants: everything this handler can reach
  // must stay async-signal-safe (allowlist) and lock-free (the SPSC ring
  // push must never contend with the thread it interrupted).
  SNB_INVARIANT_ROOT("signal_safe");
  SNB_INVARIANT_ROOT("lockfree");
  int saved_errno = errno;
  ThreadState* st = tls_state;
  if (st != nullptr &&
      g_backend.load(std::memory_order_relaxed) == Backend::kTimer) {
    timespec t0{};
    ::clock_gettime(CLOCK_MONOTONIC, &t0);
    uint32_t head = st->head.load(std::memory_order_relaxed);
    uint32_t tail = st->tail.load(std::memory_order_acquire);
    if (head - tail >= kRingCapacity) {
      st->dropped.fetch_add(1, std::memory_order_relaxed);
    } else {
      Sample& s = st->ring[head % kRingCapacity];
      s.op = st->op_context.load(std::memory_order_relaxed);
      s.label = st->op_label.load(std::memory_order_relaxed);
      s.depth = WalkStack(ucontext, st, s.pc);
      st->head.store(head + 1, std::memory_order_release);
    }
    timespec t1{};
    ::clock_gettime(CLOCK_MONOTONIC, &t1);
    st->overhead_ns.fetch_add(TimespecNs(t1) - TimespecNs(t0),
                              std::memory_order_relaxed);
  }
  errno = saved_errno;
}

// ---- Timers ---------------------------------------------------------------

/// timer_create against `thread`'s CPU clock, delivering SIGPROF to
/// exactly that thread. Honours the test injection hook.
int TimerCreateForThread(pid_t tid, pthread_t thread, timer_t* out) {
  int forced = g_forced_errno.load(std::memory_order_relaxed);
  if (forced != 0) return forced;
  clockid_t clock;
  // pthread_getcpuclockid returns its error code directly (it does not
  // set errno), so reading errno here would report unrelated stale state.
  int rc = ::pthread_getcpuclockid(thread, &clock);
  if (rc != 0) return rc;
  struct sigevent sev;
  std::memset(&sev, 0, sizeof(sev));
  sev.sigev_notify = SIGEV_THREAD_ID;
  sev.sigev_signo = SIGPROF;
  sev.sigev_notify_thread_id = tid;
  if (::timer_create(clock, &sev, out) != 0) {
    return errno != 0 ? errno : EINVAL;
  }
  return 0;
}

void ArmTimerLocked(ThreadState* st) SNB_REQUIRES(g_prof_mu) {
  if (st->timer_armed || !st->live) return;
  timer_t timer;
  if (TimerCreateForThread(st->tid, st->pthread, &timer) != 0) {
    // The probe passed but this thread's timer failed (clock raced a
    // dying thread, kernel limits): degrade per thread, run stays valid.
    return;
  }
  uint32_t us = g_interval_us.load(std::memory_order_relaxed);
  itimerspec spec{};
  spec.it_interval.tv_sec = us / 1000000;
  spec.it_interval.tv_nsec = static_cast<long>(us % 1000000) * 1000;
  spec.it_value = spec.it_interval;
  if (::timer_settime(timer, 0, &spec, nullptr) != 0) {
    ::timer_delete(timer);
    return;
  }
  st->timer = timer;
  st->timer_armed = true;
}

void DisarmTimerLocked(ThreadState* st) SNB_REQUIRES(g_prof_mu) {
  if (!st->timer_armed) return;
  ::timer_delete(st->timer);
  st->timer_armed = false;
}

/// Installs the SIGPROF handler once per process. SA_RESTART keeps
/// interrupted syscalls (socket reads, sleeps) transparent to the run.
[[maybe_unused]] bool InstallHandlerOnce() {
  static const bool installed = [] {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_sigaction = ProfSignalHandler;
    sa.sa_flags = SA_SIGINFO | SA_RESTART;
    sigemptyset(&sa.sa_mask);
    return ::sigaction(SIGPROF, &sa, nullptr) == 0;
  }();
  return installed;
}

/// Can this process create + arm a CPU-clock timer at all? Returns 0 or
/// the failing errno (EPERM under seccomp, ENOSYS, ...).
[[maybe_unused]] int ProbeTimer() {
  timer_t timer;
  int err = TimerCreateForThread(CurrentTid(), pthread_self(), &timer);
  if (err != 0) return err;
  ::timer_delete(timer);
  return 0;
}

void CaptureStackBounds(uintptr_t* lo, uintptr_t* hi) {
  *lo = 0;
  *hi = 0;
  pthread_attr_t attr;
  if (::pthread_getattr_np(pthread_self(), &attr) != 0) return;
  void* addr = nullptr;
  size_t size = 0;
  if (::pthread_attr_getstack(&attr, &addr, &size) == 0) {
    *lo = reinterpret_cast<uintptr_t>(addr);
    *hi = *lo + size;
  }
  ::pthread_attr_destroy(&attr);
}

#else  // !__linux__

[[maybe_unused]] int ProbeTimer() { return ENOSYS; }

#endif  // __linux__

// ---- Folding (collator side, all under g_prof_mu) -------------------------

uint32_t InternLaneLocked(const std::string& name) SNB_REQUIRES(g_prof_mu) {
  std::vector<std::string>& lanes = S().lanes;
  for (uint32_t i = 0; i < lanes.size(); ++i) {
    if (lanes[i] == name) return i;
  }
  lanes.push_back(name);
  return static_cast<uint32_t>(lanes.size() - 1);
}

void FoldSampleLocked(const ThreadState* st, const Sample& s)
    SNB_REQUIRES(g_prof_mu) {
  if (s.op != kNoOpContext) {
    ++S().attributed;
  } else {
    ++S().unattributed;
  }
  FoldKey key;
  key.reserve(3 + s.depth);
  key.push_back(st->lane_id);
  key.push_back(s.op);
  key.push_back(reinterpret_cast<uintptr_t>(s.label));
  for (uint16_t i = 0; i < s.depth; ++i) key.push_back(s.pc[i]);
  ++S().folds[key];
}

// noinline/used: the SPSC pop side must survive as a standalone symbol
// so tools/snb_invariants can verify its closure (it would otherwise
// inline into its lone caller and vanish from the binary).
__attribute__((noinline, used)) void DrainThreadLocked(ThreadState* st)
    SNB_REQUIRES(g_prof_mu) {
  // The consumer end of the sample ring: pairs with the handler's push.
  // It runs under g_prof_mu but must not itself take locks — the ring
  // protocol is what keeps the producer signal context wait-free.
  SNB_INVARIANT_ROOT("lockfree");
  uint32_t tail = st->tail.load(std::memory_order_relaxed);
  uint32_t head = st->head.load(std::memory_order_acquire);
  while (tail != head) {
    FoldSampleLocked(st, st->ring[tail % kRingCapacity]);
    ++tail;
  }
  st->tail.store(tail, std::memory_order_release);
}

/// Best-effort symbolization with a per-address cache: dladdr (exported
/// symbols — CMAKE_ENABLE_EXPORTS keeps ours visible) demangled via
/// __cxa_demangle; hex fallback otherwise. ';' would corrupt the folded
/// format, so it is scrubbed from symbol names.
const std::string& SymbolizeLocked(uintptr_t pc) SNB_REQUIRES(g_prof_mu) {
  auto& cache = S().symbols;
  auto it = cache.find(pc);
  if (it != cache.end()) return it->second;
  std::string name;
#if defined(__linux__)
  Dl_info info;
  if (::dladdr(reinterpret_cast<void*>(pc), &info) != 0 &&
      info.dli_sname != nullptr) {
    int status = -1;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    name = status == 0 && demangled != nullptr ? demangled : info.dli_sname;
    std::free(demangled);
    for (char& c : name) {
      if (c == ';' || c == '\n' || c == '\t') c = '_';
    }
  }
#endif
  if (name.empty()) {
    char buf[2 + 2 * sizeof(uintptr_t) + 1];
    std::snprintf(buf, sizeof(buf), "0x%zx", static_cast<size_t>(pc));
    name = buf;
  }
  return cache.emplace(pc, std::move(name)).first->second;
}

FoldedStack RenderStackLocked(const FoldKey& key, uint64_t count)
    SNB_REQUIRES(g_prof_mu) {
  FoldedStack out;
  out.count = count;
  out.lane = key[0] < S().lanes.size() ? S().lanes[key[0]] : "unknown";
  uint16_t op = static_cast<uint16_t>(key[1]);
  if (op != kNoOpContext && op < kNumOpTypes) {
    out.op = OpTypeName(static_cast<OpType>(op));
  }
  if (key[2] != 0) {
    out.op_label = reinterpret_cast<const char*>(key[2]);
  }
  // Stored leaf..root from index 3; rendered root-first. Return
  // addresses (every frame above the leaf) point one past their call
  // instruction, so they symbolize at pc - 1.
  out.frames.reserve(key.size() - 3);
  for (size_t i = key.size(); i > 3; --i) {
    uintptr_t pc = key[i - 1];
    out.frames.push_back(SymbolizeLocked(i - 1 == 3 ? pc : pc - 1));
  }
  return out;
}

// ---- Collator -------------------------------------------------------------

void CollatorMain() {
  util::MutexLock lock(&g_prof_mu);
  while (!S().collator_stop) {
    for (ThreadState* st : S().registry) DrainThreadLocked(st);
    // Spurious wakeups just re-drain; the stop flag is re-read under
    // the lock each iteration.
    S().collator_cv.wait_for(lock, std::chrono::milliseconds(100));
  }
  S().collator_running = false;
}

void StartCollatorLocked() SNB_REQUIRES(g_prof_mu) {
  if (S().collator_running) return;
  if (S().collator.joinable()) S().collator.join();
  S().collator_running = true;
  S().collator_stop = false;
  S().collator = std::thread(CollatorMain);
}

/// Stops the collator and disarms every timer; used by Enable()
/// (re-probe) and ResetForTest().
void StopSamplingMachinery() SNB_EXCLUDES(g_prof_mu) {
  bool join = false;
  {
    util::MutexLock lock(&g_prof_mu);
    for (ThreadState* st : S().registry) {
#if defined(__linux__)
      DisarmTimerLocked(st);
#else
      (void)st;
#endif
    }
    if (S().collator_running) {
      S().collator_stop = true;
      join = true;
    }
  }
  if (join) {
    S().collator_cv.notify_all();
    if (S().collator.joinable()) S().collator.join();
  }
}

[[maybe_unused]] std::string DescribeInterval(uint32_t us) {
  return "interval " + std::to_string(us) + " us of thread CPU time";
}

}  // namespace

const char* BackendName(Backend b) {
  switch (b) {
    case Backend::kDisabled:
      return "disabled";
    case Backend::kNoop:
      return "noop";
    case Backend::kTimer:
      return "timer";
  }
  return "unknown";
}

Backend Enable(const EnableOptions& options) {
  StopSamplingMachinery();
  uint32_t us = options.interval_us;
  if (us == 0) {
    const char* env = std::getenv("SNB_PROF_INTERVAL_US");
    if (env != nullptr && env[0] != '\0') {
      us = static_cast<uint32_t>(std::strtoul(env, nullptr, 10));
    }
  }
  if (us == 0) us = 997;
  us = std::clamp<uint32_t>(us, 50, 1000000);
  g_interval_us.store(us, std::memory_order_relaxed);

  const char* forced_env = std::getenv("SNB_PROF_FORCE_NOOP");
  if (options.force_noop ||
      (forced_env != nullptr && forced_env[0] != '\0' &&
       std::strcmp(forced_env, "0") != 0)) {
    SetMessage(options.force_noop
                   ? "no-op backend forced by caller"
                   : "no-op backend forced by SNB_PROF_FORCE_NOOP");
    g_backend.store(Backend::kNoop, std::memory_order_release);
    return Backend::kNoop;
  }
#if defined(SNB_PROF_UNDER_SANITIZER)
  SetMessage(
      "no-op backend: sampling auto-disabled under a sanitizer "
      "(signal interception)");
  g_backend.store(Backend::kNoop, std::memory_order_release);
  return Backend::kNoop;
#else
#if defined(__linux__)
  if (!InstallHandlerOnce()) {
    SetMessage("no-op backend: sigaction(SIGPROF) failed");
    g_backend.store(Backend::kNoop, std::memory_order_release);
    return Backend::kNoop;
  }
#endif
  int err = ProbeTimer();
  if (err != 0) {
    SetMessage(std::string("timer_create failed: ") + std::strerror(err) +
               " — CPU sampling unavailable, continuing with the no-op "
               "backend");
    g_backend.store(Backend::kNoop, std::memory_order_release);
    return Backend::kNoop;
  }
  SetMessage("sampling live (per-thread POSIX CPU timers, " +
             DescribeInterval(us) + ")");
  // Publish the backend before arming: the first signal must already
  // see kTimer.
  g_backend.store(Backend::kTimer, std::memory_order_release);
  {
    util::MutexLock lock(&g_prof_mu);
#if defined(__linux__)
    for (ThreadState* st : S().registry) ArmTimerLocked(st);
#endif
    StartCollatorLocked();
  }
  return Backend::kTimer;
#endif  // SNB_PROF_UNDER_SANITIZER
}

void ResetForTest() {
  g_backend.store(Backend::kDisabled, std::memory_order_release);
  StopSamplingMachinery();
  util::MutexLock lock(&g_prof_mu);
  State& s = S();
  s.folds.clear();
  s.attributed = 0;
  s.unattributed = 0;
  s.retired_dropped = 0;
  s.retired_overhead_ns = 0;
  s.retired_task_clock_ns = 0;
  s.threads_ever = static_cast<uint32_t>(s.registry.size());
  for (ThreadState* st : s.registry) {
    // Discard queued samples and restart this thread's clocks.
    st->tail.store(st->head.load(std::memory_order_acquire),
                   std::memory_order_release);
    st->dropped.store(0, std::memory_order_relaxed);
    st->overhead_ns.store(0, std::memory_order_relaxed);
#if defined(__linux__)
    st->cpu_base_ns = ThreadCpuNs(st->pthread);
#endif
  }
  // Retired thread states are unreachable now (their threads nulled
  // tls_state before retiring) — reclaim them.
  std::vector<std::unique_ptr<ThreadState>> keep;
  for (std::unique_ptr<ThreadState>& st : s.all) {
    if (st->live) keep.push_back(std::move(st));
  }
  s.all = std::move(keep);
  SetMessage("");
}

Backend ActiveBackend() {
  return g_backend.load(std::memory_order_acquire);
}

bool SamplingLive() { return ActiveBackend() == Backend::kTimer; }

std::string BackendMessage() {
  util::MutexLock lock(&g_prof_message_mu);
  return MessageStorage();
}

void SetTimerCreateErrnoForTest(int err) {
  g_forced_errno.store(err, std::memory_order_relaxed);
}

size_t LiveRegisteredThreadsForTest() {
  util::MutexLock lock(&g_prof_mu);
  return S().registry.size();
}

void RegisterCurrentThread(const char* lane_name) {
#if defined(__linux__)
  if (tls_state != nullptr) return;
  auto owned = std::make_unique<ThreadState>();
  ThreadState* st = owned.get();
  st->lane = lane_name != nullptr && lane_name[0] != '\0' ? lane_name
                                                          : "unnamed";
  st->tid = CurrentTid();
  st->pthread = pthread_self();
  CaptureStackBounds(&st->stack_lo, &st->stack_hi);
  // Odr-use the TLS owner now: this runs its lazy construction and
  // registers its destructor (the at-thread-exit unregister) with the
  // C++ runtime for this thread.
  tls_owner.EnsureConstructed();
  util::MutexLock lock(&g_prof_mu);
  st->lane_id = InternLaneLocked(st->lane);
  st->cpu_base_ns = SelfCpuNs();
  S().all.push_back(std::move(owned));
  S().registry.push_back(st);
  ++S().threads_ever;
  tls_state = st;  // Set before arming: the first signal needs it.
  if (g_backend.load(std::memory_order_acquire) == Backend::kTimer) {
    ArmTimerLocked(st);
  }
#else
  (void)lane_name;
#endif
}

void UnregisterCurrentThread() {
#if defined(__linux__)
  ThreadState* st = tls_state;
  if (st == nullptr) return;
  util::MutexLock lock(&g_prof_mu);
  DisarmTimerLocked(st);
  DrainThreadLocked(st);
  uint64_t cpu = SelfCpuNs();
  State& s = S();
  s.retired_task_clock_ns += cpu > st->cpu_base_ns ? cpu - st->cpu_base_ns : 0;
  s.retired_dropped += st->dropped.load(std::memory_order_relaxed);
  s.retired_overhead_ns += st->overhead_ns.load(std::memory_order_relaxed);
  st->live = false;
  s.registry.erase(std::find(s.registry.begin(), s.registry.end(), st));
  tls_state = nullptr;
#endif
}

ScopedOpContext::ScopedOpContext(uint16_t op_index) {
  ThreadState* st = tls_state;
  if (st == nullptr) return;
  engaged_ = true;
  previous_ = st->op_context.load(std::memory_order_relaxed);
  st->op_context.store(op_index, std::memory_order_relaxed);
}

ScopedOpContext::~ScopedOpContext() {
  if (!engaged_) return;
  ThreadState* st = tls_state;
  if (st != nullptr) {
    st->op_context.store(previous_, std::memory_order_relaxed);
  }
}

ScopedOperatorLabel::ScopedOperatorLabel(const char* label) {
  if (label == nullptr || !SamplingLive()) return;
  ThreadState* st = tls_state;
  if (st == nullptr) return;
  engaged_ = true;
  previous_ = st->op_label.load(std::memory_order_relaxed);
  st->op_label.store(label, std::memory_order_relaxed);
}

ScopedOperatorLabel::~ScopedOperatorLabel() {
  if (!engaged_) return;
  ThreadState* st = tls_state;
  if (st != nullptr) {
    st->op_label.store(previous_, std::memory_order_relaxed);
  }
}

FoldedProfile Collect() {
  FoldedProfile out;
  out.backend = ActiveBackend();
  out.message = BackendMessage();
  out.interval_us = g_interval_us.load(std::memory_order_relaxed);
  util::MutexLock lock(&g_prof_mu);
  State& s = S();
  for (ThreadState* st : s.registry) DrainThreadLocked(st);
  SampleAccounting& a = out.accounting;
  a.attributed = s.attributed;
  a.unattributed = s.unattributed;
  a.dropped = s.retired_dropped;
  a.self_overhead_ns = s.retired_overhead_ns;
  a.task_clock_ns = s.retired_task_clock_ns;
  for (ThreadState* st : s.registry) {
    a.dropped += st->dropped.load(std::memory_order_relaxed);
    a.self_overhead_ns += st->overhead_ns.load(std::memory_order_relaxed);
#if defined(__linux__)
    uint64_t cpu = ThreadCpuNs(st->pthread);
    if (cpu > st->cpu_base_ns) a.task_clock_ns += cpu - st->cpu_base_ns;
#endif
  }
  // Conserved by construction: every drained sample is attributed or
  // unattributed, every rejected one counted dropped.
  a.captured = a.attributed + a.unattributed + a.dropped;
  a.threads = s.threads_ever;
  out.stacks.reserve(s.folds.size());
  for (const auto& [key, count] : s.folds) {
    out.stacks.push_back(RenderStackLocked(key, count));
  }
  return out;
}

namespace {

/// The rendered identity of a stack (everything but the count).
std::string StackKey(const FoldedStack& stack) {
  std::string key = "thread:" + stack.lane;
  if (!stack.op.empty()) key += ";op:" + stack.op;
  if (!stack.op_label.empty()) key += ";opr:" + stack.op_label;
  for (const std::string& frame : stack.frames) {
    key += ';';
    key += frame;
  }
  return key;
}

uint64_t SatSub(uint64_t a, uint64_t b) { return a > b ? a - b : 0; }

}  // namespace

FoldedProfile DeltaSince(const FoldedProfile& earlier,
                         const FoldedProfile& later) {
  FoldedProfile out;
  out.backend = later.backend;
  out.message = later.message;
  out.interval_us = later.interval_us;
  out.accounting.captured =
      SatSub(later.accounting.captured, earlier.accounting.captured);
  out.accounting.attributed =
      SatSub(later.accounting.attributed, earlier.accounting.attributed);
  out.accounting.unattributed =
      SatSub(later.accounting.unattributed, earlier.accounting.unattributed);
  out.accounting.dropped =
      SatSub(later.accounting.dropped, earlier.accounting.dropped);
  out.accounting.self_overhead_ns = SatSub(
      later.accounting.self_overhead_ns, earlier.accounting.self_overhead_ns);
  out.accounting.task_clock_ns = SatSub(later.accounting.task_clock_ns,
                                        earlier.accounting.task_clock_ns);
  out.accounting.threads = later.accounting.threads;
  std::map<std::string, uint64_t> baseline;
  for (const FoldedStack& stack : earlier.stacks) {
    baseline[StackKey(stack)] += stack.count;
  }
  for (const FoldedStack& stack : later.stacks) {
    auto it = baseline.find(StackKey(stack));
    uint64_t before = it != baseline.end() ? it->second : 0;
    if (stack.count > before) {
      FoldedStack delta = stack;
      delta.count = stack.count - before;
      out.stacks.push_back(std::move(delta));
    }
  }
  return out;
}

std::string ToFoldedText(const FoldedProfile& profile) {
  std::vector<std::pair<std::string, uint64_t>> lines;
  lines.reserve(profile.stacks.size());
  for (const FoldedStack& stack : profile.stacks) {
    lines.emplace_back(StackKey(stack), stack.count);
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const auto& [key, count] : lines) {
    out += key;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

}  // namespace snb::obs::prof
