// Correlated value dictionaries — the DBpedia substitute.
//
// The paper draws attribute values (names, universities, companies, tags,
// message text) from DBpedia, with a key twist (section 2.1): the *shape* of
// each value distribution is the same skewed (geometric) rank distribution
// everywhere, but the order of values is permuted by the correlation
// parameter (e.g. the person's country). This module reproduces exactly that
// mechanism with embedded dictionaries: a handful of countries carry curated
// "typical" top values (so Table 2's Germany-vs-China contrast is
// reproduced verbatim), all other values are deterministic synthetic names.
#ifndef SNB_SCHEMA_DICTIONARIES_H_
#define SNB_SCHEMA_DICTIONARIES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "schema/ids.h"
#include "util/rng.h"

namespace snb::schema {

/// A country: weight drives population-proportional sampling.
struct Country {
  std::string name;
  double latitude = 0.0;
  double longitude = 0.0;
  double population_weight = 1.0;
  /// Index into Dictionaries::languages() of the native language.
  uint32_t native_language = 0;
  /// City ids located in this country.
  std::vector<PlaceId> cities;
  /// Company ids headquartered in this country.
  std::vector<OrganizationId> companies;
};

/// A city, located in one country.
struct City {
  std::string name;
  PlaceId country_id = kInvalidId32;
  double latitude = 0.0;
  double longitude = 0.0;
  /// University ids located in this city.
  std::vector<OrganizationId> universities;
};

/// A university, located in one city.
struct University {
  std::string name;
  PlaceId city_id = kInvalidId32;
};

/// A company, headquartered in one country.
struct Company {
  std::string name;
  PlaceId country_id = kInvalidId32;
};

/// A category of tags (e.g. "Music").
struct TagClass {
  std::string name;
};

/// An interest / topic tag, in one tag class.
struct Tag {
  std::string name;
  TagClassId tag_class_id = kInvalidId32;
};

/// All embedded dictionaries plus the correlated samplers over them.
///
/// Construction is deterministic in the seed; two instances with equal seeds
/// produce identical dictionaries and identical sampling behaviour.
class Dictionaries {
 public:
  explicit Dictionaries(uint64_t seed = 0x5eedULL);

  Dictionaries(const Dictionaries&) = delete;
  Dictionaries& operator=(const Dictionaries&) = delete;

  // ---- Raw dictionary access -------------------------------------------

  const std::vector<Country>& countries() const { return countries_; }
  const std::vector<City>& cities() const { return cities_; }
  const std::vector<University>& universities() const { return universities_; }
  const std::vector<Company>& companies() const { return companies_; }
  const std::vector<TagClass>& tag_classes() const { return tag_classes_; }
  const std::vector<Tag>& tags() const { return tags_; }
  const std::vector<std::string>& languages() const { return languages_; }
  const std::vector<std::string>& browsers() const { return browsers_; }

  const std::string& FirstName(size_t index) const {
    return first_names_[index];
  }
  size_t first_name_count() const { return first_names_.size(); }
  const std::string& LastName(size_t index) const {
    return last_names_[index];
  }
  size_t last_name_count() const { return last_names_.size(); }

  /// Id of the country a city belongs to.
  PlaceId CountryOfCity(PlaceId city_id) const {
    return cities_[city_id].country_id;
  }

  // ---- Correlated samplers (Table 1) -----------------------------------

  /// Population-weighted country.
  PlaceId SampleCountry(util::Rng& rng) const;

  /// Uniform city within a country.
  PlaceId SampleCityInCountry(PlaceId country_id, util::Rng& rng) const;

  /// First name, skewed with rank order permuted by (country, gender).
  size_t SampleFirstNameIndex(PlaceId country_id, uint8_t gender,
                              util::Rng& rng) const;

  /// Last name, skewed with rank order permuted by country.
  size_t SampleLastNameIndex(PlaceId country_id, util::Rng& rng) const;

  /// Interest tag, skewed with rank order permuted by country ("popular
  /// artist" correlation of Table 1).
  TagId SampleInterestTag(PlaceId country_id, util::Rng& rng) const;

  /// University: with high probability one in the person's country (the
  /// "nearby university" correlation); kInvalidId32 when the person did not
  /// study.
  OrganizationId SampleUniversity(PlaceId country_id, util::Rng& rng) const;

  /// Company in the person's country with high probability; kInvalidId32
  /// when unemployed.
  OrganizationId SampleCompany(PlaceId country_id, util::Rng& rng) const;

  /// The native language of a country.
  uint32_t NativeLanguage(PlaceId country_id) const {
    return countries_[country_id].native_language;
  }

  /// Languages a person from `country_id` speaks: native first, optionally
  /// English and a random extra.
  std::vector<uint32_t> SampleLanguages(PlaceId country_id,
                                        util::Rng& rng) const;

  /// Uniform browser name.
  const std::string& SampleBrowser(util::Rng& rng) const;

  /// Message text whose word ranks are permuted by `topic` — the stand-in
  /// for "text taken from DBpedia pages closely related to the topic".
  std::string GenerateText(TagId topic, int min_words, int max_words,
                           util::Rng& rng) const;

  /// Word at dictionary index (exposed for correlation tests).
  const std::string& Word(size_t index) const { return words_[index]; }
  size_t word_count() const { return words_.size(); }

 private:
  /// Value at `rank` of the permutation keyed by `key` over domain size `n`.
  /// Permutations are precomputed; curated values occupy the top ranks.
  size_t PermutedValue(const std::vector<std::vector<uint32_t>>& perms,
                       size_t key, size_t rank) const {
    return perms[key][rank];
  }

  uint64_t seed_;
  std::vector<Country> countries_;
  std::vector<City> cities_;
  std::vector<University> universities_;
  std::vector<Company> companies_;
  std::vector<TagClass> tag_classes_;
  std::vector<Tag> tags_;
  std::vector<std::string> languages_;
  std::vector<std::string> browsers_;
  std::vector<std::string> first_names_;
  std::vector<std::string> last_names_;
  std::vector<std::string> words_;

  // Precomputed rank permutations: [country][rank] -> value index.
  std::vector<std::vector<uint32_t>> first_name_perm_male_;
  std::vector<std::vector<uint32_t>> first_name_perm_female_;
  std::vector<std::vector<uint32_t>> last_name_perm_;
  std::vector<std::vector<uint32_t>> tag_perm_;
  // [tag][rank] -> word index, computed lazily-free: per-topic permutation is
  // derived arithmetically (see .cc) to avoid |tags| x |words| storage.

  double country_weight_total_ = 0.0;
  std::vector<double> country_weight_cumulative_;
};

}  // namespace snb::schema

#endif  // SNB_SCHEMA_DICTIONARIES_H_
