file(REMOVE_RECURSE
  "CMakeFiles/snb_schema.dir/dictionaries.cc.o"
  "CMakeFiles/snb_schema.dir/dictionaries.cc.o.d"
  "libsnb_schema.a"
  "libsnb_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snb_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
