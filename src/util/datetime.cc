#include "util/datetime.h"

#include <ctime>

#include <cstdio>

namespace snb::util {

std::string FormatTimestamp(TimestampMs ts) {
  std::time_t secs = static_cast<std::time_t>(ts / kMillisPerSecond);
  std::tm tm_utc{};
  gmtime_r(&secs, &tm_utc);
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d",
                tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday,
                tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec);
  return buf;
}

TimestampMs TimestampFromDate(int year, int month, int day) {
  std::tm tm_utc{};
  tm_utc.tm_year = year - 1900;
  tm_utc.tm_mon = month - 1;
  tm_utc.tm_mday = day;
  std::time_t secs = timegm(&tm_utc);
  return static_cast<TimestampMs>(secs) * kMillisPerSecond;
}

}  // namespace snb::util
