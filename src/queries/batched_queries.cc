#include "queries/batched_queries.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <vector>

#include "exec/batch.h"
#include "exec/hash_join.h"
#include "exec/intersect.h"
#include "exec/operators.h"
#include "obs/trace.h"
#include "store/adjacency_blocks.h"

namespace snb::queries {
namespace {

using schema::MessageKind;
using schema::PersonId;
using store::DatedEdge;
using store::FriendEdge;
using store::MessageRecord;
using store::PersonRecord;

/// Must match the scalar Query14's bound so truncated enumerations agree.
constexpr size_t kMaxPaths = 1000;

}  // namespace

// ---- Q5 ----------------------------------------------------------------
//
// Equivalence to Query5Scalar: the circle is the same sorted set
// (ExpandTwoHopSorted ≡ TwoHopCircleLocked); the qualifying forum set is
// identical (same strict date > min_date filter) — the scalar iterates it
// in hash order, this plan in id order, but the final comparator
// (count desc, forum asc) is a total order over distinct forum ids, so
// sort-then-truncate is order-insensitive; per-forum counts are identical
// because the block probe counts exactly the posts whose (non-null)
// creator is in the circle. TopK with a total order equals
// full-sort + resize byte for byte.

std::vector<Q5Result> Query5Batched(const GraphStore& store, PersonId start,
                                    TimestampMs min_date, int limit) {
  auto pin = store.ReadLock();
  std::vector<uint64_t> circle;
  exec::ExpandTwoHopSorted(store, pin, start, &circle);

  // Hash-join build side: circle membership.
  exec::HashSet64 circle_set(circle.size());
  for (uint64_t pid : circle) circle_set.Insert(pid);

  // Forums joined by circle members after min_date (dedup via sort: the
  // candidate list is small and already clusters by forum id).
  std::vector<uint64_t> forums;
  for (uint64_t pid : circle) {
    const PersonRecord* p = store.FindPerson(pin, pid);
    if (p == nullptr) continue;
    for (const DatedEdge& membership : p->forums.view()) {
      if (membership.date > min_date) forums.push_back(membership.id);
    }
  }
  std::sort(forums.begin(), forums.end());
  forums.erase(std::unique(forums.begin(), forums.end()), forums.end());

  auto less = [](const Q5Result& a, const Q5Result& b) {
    if (a.post_count != b.post_count) return a.post_count > b.post_count;
    return a.forum_id < b.forum_id;
  };
  exec::TopK<Q5Result, decltype(less)> top(static_cast<size_t>(limit), less);

  // Probe side: per forum, gather post creators block-at-a-time and count
  // circle hits.
  exec::Batch batch;
  uint32_t sel[exec::kBatchCapacity];
  for (uint64_t fid : forums) {
    const store::ForumRecord* forum = store.FindForum(pin, fid);
    if (forum == nullptr) continue;
    auto posts = forum->posts.view();
    uint32_t count = 0;
    size_t i = 0;
    while (i < posts.size()) {
      size_t n = std::min(exec::kBatchCapacity, posts.size() - i);
      batch.clear();
      for (size_t t = 0; t < n; ++t) {
        const MessageRecord* m = store.FindMessage(pin, posts[i + t]);
        if (m != nullptr) batch.b[batch.size++] = m->data.creator_id;
      }
      i += n;
      count += static_cast<uint32_t>(
          circle_set.ProbeBatch(batch.b, batch.size, sel));
    }
    top.Push({fid, count});
  }
  return top.Drain();
}

// ---- Q9 ----------------------------------------------------------------
//
// Equivalence to Query9Scalar: same circle; MessageScanOperator emits,
// per circle person, the newest min(qualifying, limit) messages with
// date < max_date — exactly the rows the scalar collects. The scalar then
// full-sorts by (date desc, id asc) and truncates to `limit`; message ids
// are unique, so the comparator is a total order and the bounded heap
// keeps the identical rows in the identical order.

std::vector<Q9Result> Query9Batched(const GraphStore& store, PersonId start,
                                    TimestampMs max_date, int limit,
                                    Q9PlanStats* stats,
                                    Q9OperatorProfile* profile) {
  auto pin = store.ReadLock();
  Q9PlanStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = Q9PlanStats();
  auto sink = [profile](obs::OperatorStats Q9OperatorProfile::* member) {
    return profile == nullptr ? nullptr : &(profile->*member);
  };

  std::vector<uint64_t> circle;
  exec::TwoHopStats hop = exec::ExpandTwoHopSorted(
      store, pin, start, &circle, sink(&Q9OperatorProfile::join1),
      sink(&Q9OperatorProfile::join2));
  stats->join1_output = hop.direct;
  stats->join2_output = hop.fof_tuples;

  auto less = [](const Q9Result& a, const Q9Result& b) {
    if (a.creation_date != b.creation_date) {
      return a.creation_date > b.creation_date;
    }
    return a.message_id < b.message_id;
  };
  exec::TopK<Q9Result, decltype(less)> top(static_cast<size_t>(limit), less);

  exec::MessageScanOperator scan(store, pin, circle, max_date,
                                 static_cast<size_t>(limit),
                                 sink(&Q9OperatorProfile::join3));
  exec::Batch batch;
  while (scan.Next(&batch)) {
    obs::TraceSpan span(sink(&Q9OperatorProfile::sort_limit), "sort_limit");
    for (size_t r = 0; r < batch.size; ++r) {
      top.Push({batch.a[r], batch.b[r], batch.date[r]});
    }
    span.AddRows(batch.size);
  }
  stats->join3_output = scan.rows_emitted();

  obs::TraceSpan span(sink(&Q9OperatorProfile::sort_limit), "sort_limit");
  std::vector<Q9Result> out = top.Drain();
  span.AddRows(out.size());
  return out;
}

// ---- Q14 ---------------------------------------------------------------

namespace {

/// All shortest Knows-paths person1 -> person2, capped at kMaxPaths, in
/// the scalar DFS enumeration order. Distance 1 and 2 take kernel fast
/// paths; the general case replays the scalar BFS + parent-DAG DFS.
///
/// The distance-2 fast path is exact: the scalar BFS fully processes every
/// depth-1 node before its `d >= target_dist` cut, so parents(person2) is
/// ALL mutual friends; the DFS sorts parents ascending and each middle has
/// the single parent person1, so paths enumerate in ascending middle-id
/// order — which is exactly Intersect(friends(p1), friends(p2)) read left
/// to right, including where a kMaxPaths cut lands.
std::vector<std::vector<PersonId>> ShortestPaths(const GraphStore& store,
                                                 const store::ShardSnapshot& pin,
                                                 PersonId person1,
                                                 PersonId person2) {
  std::vector<std::vector<PersonId>> paths;
  const PersonRecord* p1 = store.FindPerson(pin, person1);
  const PersonRecord* p2 = store.FindPerson(pin, person2);
  std::vector<uint64_t> f1;
  store::CopyFriendIds(p1->friends.view(), &f1);
  if (std::binary_search(f1.begin(), f1.end(), person2)) {
    paths.push_back({person1, person2});
    return paths;
  }
  std::vector<uint64_t> f2;
  store::CopyFriendIds(p2->friends.view(), &f2);
  std::vector<uint64_t> mid(std::min(f1.size(), f2.size()));
  size_t n =
      exec::Intersect(f1.data(), f1.size(), f2.data(), f2.size(), mid.data());
  if (n > 0) {
    size_t take = std::min(n, kMaxPaths);
    paths.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      paths.push_back({person1, mid[i], person2});
    }
    return paths;
  }

  // Distance >= 3: scalar BFS building the shortest-path parent DAG, then
  // iterative DFS (identical to Query14Scalar so truncation order agrees).
  std::unordered_map<PersonId, int> dist{{person1, 0}};
  std::unordered_map<PersonId, std::vector<PersonId>> parents;
  std::deque<PersonId> queue{person1};
  int target_dist = -1;
  while (!queue.empty()) {
    PersonId pid = queue.front();
    queue.pop_front();
    int d = dist[pid];
    if (target_dist >= 0 && d >= target_dist) break;
    const PersonRecord* p = store.FindPerson(pin, pid);
    if (p == nullptr) continue;
    for (const FriendEdge& e : p->friends.view()) {
      auto it = dist.find(e.other);
      if (it == dist.end()) {
        dist[e.other] = d + 1;
        parents[e.other].push_back(pid);
        queue.push_back(e.other);
        if (e.other == person2) target_dist = d + 1;
      } else if (it->second == d + 1) {
        parents[e.other].push_back(pid);
      }
    }
  }
  if (target_dist < 0) return paths;

  struct Frame {
    PersonId node;
    size_t next_parent;
  };
  std::vector<Frame> stack{{person2, 0}};
  while (!stack.empty() && paths.size() < kMaxPaths) {
    Frame& frame = stack.back();
    if (frame.node == person1) {
      std::vector<PersonId> path;
      path.reserve(stack.size());
      for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
        path.push_back(it->node);
      }
      paths.push_back(std::move(path));
      stack.pop_back();
      continue;
    }
    std::vector<PersonId>& ps = parents[frame.node];
    std::sort(ps.begin(), ps.end());
    if (frame.next_parent >= ps.size()) {
      stack.pop_back();
      continue;
    }
    PersonId parent = ps[frame.next_parent++];
    stack.push_back({parent, 0});
  }
  return paths;
}

}  // namespace

// Equivalence to Query14Scalar: the path set and order match (see
// ShortestPaths). Weights: the scalar computes PairWeight(u, v) per path
// edge by scanning both persons' comment lists; this plan scans each
// distinct path person's comment list ONCE and accumulates into a flat
// hash map of needed {u, v} pairs — the same multiset of 0.5/1.0
// contributions per pair, just grouped differently. Every contribution is
// a dyadic rational and every partial sum stays far below 2^52, so IEEE
// addition is exact and association order cannot change the result:
// the doubles are bit-equal, hence the canonical rows are byte-equal.

std::vector<Q14Result> Query14Batched(const GraphStore& store,
                                      PersonId person1, PersonId person2) {
  auto pin = store.ReadLock();
  std::vector<Q14Result> results;
  if (store.FindPerson(pin, person1) == nullptr ||
      store.FindPerson(pin, person2) == nullptr) {
    return results;
  }
  if (person1 == person2) {
    results.push_back({{person1}, 0.0});
    return results;
  }
  std::vector<std::vector<PersonId>> paths =
      ShortestPaths(store, pin, person1, person2);
  if (paths.empty()) return results;

  // Distinct persons on any path, id-sorted, as the pair-index domain.
  std::vector<uint64_t> persons;
  for (const auto& path : paths) {
    persons.insert(persons.end(), path.begin(), path.end());
  }
  std::sort(persons.begin(), persons.end());
  persons.erase(std::unique(persons.begin(), persons.end()), persons.end());
  auto index_of = [&persons](uint64_t id) -> size_t {
    auto it = std::lower_bound(persons.begin(), persons.end(), id);
    if (it == persons.end() || *it != id) return persons.size();
    return static_cast<size_t>(it - persons.begin());
  };
  auto pair_key = [&persons](size_t u, size_t v) -> uint64_t {
    return static_cast<uint64_t>(std::min(u, v)) * persons.size() +
           std::max(u, v);
  };

  // Build side: every consecutive pair that occurs on any path, mapped to
  // an accumulator slot.
  exec::HashMap64 pair_index;
  std::vector<double> pair_weight;
  for (const auto& path : paths) {
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      uint64_t key = pair_key(index_of(path[i]), index_of(path[i + 1]));
      if (pair_index.Find(key) == nullptr) {
        pair_index.Put(key, pair_weight.size());
        pair_weight.push_back(0.0);
      }
    }
  }

  // Probe side: one pass over each distinct person's comments. A comment
  // by u replying to a message of v lands in pair {u, v} iff that pair is
  // a path edge — together the passes over u and v see exactly the
  // contributions PairWeight(u, v) sees.
  for (size_t uidx = 0; uidx < persons.size(); ++uidx) {
    const PersonRecord* p = store.FindPerson(pin, persons[uidx]);
    if (p == nullptr) continue;
    for (const DatedEdge& e : p->messages.view()) {
      const MessageRecord* m = store.FindMessage(pin, e.id);
      if (m == nullptr || m->data.kind != MessageKind::kComment) continue;
      const MessageRecord* parent =
          store.FindMessage(pin, m->data.reply_to_id);
      if (parent == nullptr) continue;
      size_t vidx = index_of(parent->data.creator_id);
      if (vidx == persons.size()) continue;
      const uint64_t* acc = pair_index.Find(pair_key(uidx, vidx));
      if (acc == nullptr) continue;
      pair_weight[*acc] +=
          parent->data.kind == MessageKind::kComment ? 0.5 : 1.0;
    }
  }

  results.reserve(paths.size());
  for (std::vector<PersonId>& path : paths) {
    Q14Result r;
    r.weight = 0.0;
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      uint64_t key = pair_key(index_of(path[i]), index_of(path[i + 1]));
      r.weight += pair_weight[*pair_index.Find(key)];
    }
    r.path = std::move(path);
    results.push_back(std::move(r));
  }
  std::sort(results.begin(), results.end(),
            [](const Q14Result& a, const Q14Result& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              return a.path < b.path;
            });
  return results;
}

}  // namespace snb::queries
