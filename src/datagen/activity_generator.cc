#include "datagen/activity_generator.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "util/distributions.h"
#include "util/rng.h"

namespace snb::datagen {
namespace {

using schema::Dictionaries;
using schema::Forum;
using schema::ForumMembership;
using schema::Like;
using schema::Message;
using schema::MessageKind;
using schema::Person;
using schema::SocialNetwork;
using util::Mix64;
using util::Rng;
using util::RandomPurpose;
using util::TimestampMs;

// --- Activity volume knobs -------------------------------------------------
// Posts a person writes scale linearly with its friendship count ("people
// having more friends are likely more active and post more messages").
constexpr double kPostsPerFriend = 1.2;
// Mean number of comments under a post (geometric fan).
constexpr double kMeanCommentsPerPost = 2.0;
// Mean number of likes per message.
constexpr double kMeanLikesPerMessage = 0.8;
// Probability a friend joins one of the owner's group forums.
constexpr double kGroupJoinProb = 0.5;
// Photos per person in its album, per friend.
constexpr double kPhotosPerFriend = 0.4;
// Probability that a post is event-driven (when spikes are enabled).
constexpr double kEventDrivenProb = 0.35;
// Probability a message is posted while travelling in a foreign country
// (exercised by Query 3).
constexpr double kTravelProb = 0.08;
// Mean delay between an event and a post about it (the spike decay).
constexpr double kEventDecayMs = 3.0 * util::kMillisPerDay;

// Trending events over the 36-month timeline. A small pool with heavy-tailed
// magnitudes concentrates posts into visible spikes (Figure 2a).
constexpr int kNumEvents = 60;

// Forum id space: per-owner slots so ids are stable across thread counts.
constexpr uint64_t kForumSlotsPerPerson = 8;
constexpr uint64_t kWallSlot = 0;
constexpr uint64_t kAlbumSlot = 1;
constexpr uint64_t kFirstGroupSlot = 2;

struct FriendRef {
  schema::PersonId id;
  TimestampMs since;  // Friendship creation date.
};

// Per-worker output buffers, merged deterministically after the parallel
// phase.
struct ActivityChunk {
  std::vector<Forum> forums;
  std::vector<ForumMembership> memberships;
  std::vector<Message> messages;  // Temp ids = index into this vector later.
  std::vector<Like> likes;
};

// Country a message is sent from: usually home, sometimes a travel
// destination.
schema::PlaceId MessageCountry(const Dictionaries& dict,
                               schema::PlaceId home, Rng& rng) {
  if (rng.NextBool(kTravelProb)) {
    return static_cast<schema::PlaceId>(
        rng.NextBounded(dict.countries().size()));
  }
  return home;
}

TimestampMs ClampToTimeline(TimestampMs ts) {
  TimestampMs lo = util::kNetworkStartMs;
  TimestampMs hi = util::NetworkEndMs() - 1;
  return ts < lo ? lo : (ts > hi ? hi : ts);
}

// Samples a post creation date in [earliest, end): uniform, or event-driven
// around an event matching the creator's interests.
TimestampMs SamplePostDate(const std::vector<TrendEvent>& events,
                           const std::vector<schema::TagId>& interests,
                           bool event_driven, TimestampMs earliest,
                           Rng& rng, schema::TagId* topic_out) {
  TimestampMs end = util::NetworkEndMs() - 1;
  if (earliest >= end) earliest = end - 1;
  if (event_driven && rng.NextBool(kEventDrivenProb)) {
    // Pick a candidate event magnitude-weighted among events inside the
    // permitted time span. Persons interested in the event's topic always
    // post about it; big events also attract persons who are not (broad
    // news coverage), with reduced probability.
    double total = 0.0;
    for (const TrendEvent& e : events) {
      if (e.time < earliest || e.time >= end) continue;
      total += e.magnitude;
    }
    if (total > 0.0) {
      double u = rng.NextDouble() * total;
      const TrendEvent* chosen = nullptr;
      for (const TrendEvent& e : events) {
        if (e.time < earliest || e.time >= end) continue;
        u -= e.magnitude;
        if (u <= 0.0) {
          chosen = &e;
          break;
        }
      }
      if (chosen != nullptr) {
        bool interested = false;
        for (schema::TagId t : interests) {
          if (t == chosen->tag) {
            interested = true;
            break;
          }
        }
        if (interested || rng.NextBool(0.5)) {
          double delay = util::SampleExponential(rng, 1.0 / kEventDecayMs);
          TimestampMs ts = chosen->time + static_cast<TimestampMs>(delay);
          if (ts >= end) ts = end - 1;
          if (ts < earliest) ts = earliest;
          if (topic_out != nullptr) *topic_out = chosen->tag;
          return ts;
        }
      }
    }
  }
  // Uniform over the permitted span.
  return earliest + static_cast<TimestampMs>(
                        rng.NextDouble() *
                        static_cast<double>(end - earliest));
}

// Generates all activity owned by one person: its wall, album, group forums,
// the posts of those forums, comment trees and likes.
void GeneratePersonActivity(const DatagenConfig& config,
                            const Dictionaries& dict,
                            const std::vector<TrendEvent>& events,
                            const std::vector<Person>& persons,
                            const std::vector<std::vector<FriendRef>>& friends,
                            schema::PersonId owner_id,
                            ActivityChunk& out) {
  const uint64_t seed = config.seed;
  const Person& owner = persons[owner_id];
  const std::vector<FriendRef>& owner_friends = friends[owner_id];

  Rng forum_rng(seed, owner_id, RandomPurpose::kForumCount);

  // Forums this person owns: wall (always), album (always), 0-2 groups.
  struct LocalForum {
    schema::ForumId id;
    TimestampMs created;
    bool is_album;
    std::vector<schema::TagId> tags;
    // Members with their join dates (owner included).
    std::vector<FriendRef> members;
  };
  std::vector<LocalForum> local_forums;

  auto forum_id_for_slot = [&](uint64_t slot) {
    return static_cast<schema::ForumId>(owner_id * kForumSlotsPerPerson +
                                        slot);
  };

  TimestampMs owner_active = owner.creation_date + kTSafeMs;

  auto make_forum = [&](uint64_t slot, const char* kind_name,
                        bool is_album) {
    LocalForum forum;
    forum.id = forum_id_for_slot(slot);
    // Forum created shortly after the owner joined.
    double gap = util::SampleExponential(forum_rng,
                                         1.0 / (7.0 * util::kMillisPerDay));
    forum.created =
        ClampToTimeline(owner_active + static_cast<TimestampMs>(gap));
    // Keep room for the owner's membership (+T_SAFE) before timeline end.
    TimestampMs forum_latest = util::NetworkEndMs() - 2 * kTSafeMs;
    if (forum.created > forum_latest) forum.created = forum_latest;
    forum.is_album = is_album;
    int num_tags =
        std::min<int>(static_cast<int>(owner.interests.size()), 3);
    forum.tags.assign(owner.interests.begin(),
                      owner.interests.begin() + num_tags);

    Forum record;
    record.id = forum.id;
    record.title = std::string(kind_name) + "_of_" + owner.first_name + "_" +
                   owner.last_name + "_" + std::to_string(owner_id);
    record.moderator_id = owner_id;
    record.creation_date = forum.created;
    record.tags = forum.tags;
    out.forums.push_back(std::move(record));

    // Owner membership, T_SAFE after the forum exists so that the driver may
    // schedule it independently of the AddForum operation.
    TimestampMs owner_join = forum.created + kTSafeMs;
    forum.members.push_back({owner_id, owner_join});
    out.memberships.push_back({forum.id, owner_id, owner_join});
    local_forums.push_back(std::move(forum));
  };

  make_forum(kWallSlot, "Wall", false);
  make_forum(kAlbumSlot, "Album", true);
  uint64_t num_groups = forum_rng.NextBounded(3);  // 0..2 groups.
  for (uint64_t g = 0; g < num_groups; ++g) {
    make_forum(kFirstGroupSlot + g, "Group", false);
  }

  // Friends join: the wall gets all friends, groups get a subset. Join date
  // is after both the friendship and the forum creation (+T_SAFE: a member
  // may only post T_SAFE after joining the network; joining a forum follows
  // the friendship by at least T_SAFE so windowed execution stays safe).
  Rng member_rng(seed, owner_id, RandomPurpose::kMembership);
  for (const FriendRef& fr : owner_friends) {
    for (size_t fi = 0; fi < local_forums.size(); ++fi) {
      LocalForum& forum = local_forums[fi];
      if (forum.is_album) continue;  // Albums: owner-only photos.
      bool is_wall = fi == 0;
      if (!is_wall && !member_rng.NextBool(kGroupJoinProb)) continue;
      TimestampMs join =
          std::max(fr.since, forum.created) + kTSafeMs +
          static_cast<TimestampMs>(member_rng.NextBounded(
              3 * util::kMillisPerDay));
      if (join >= util::NetworkEndMs()) continue;
      forum.members.push_back({fr.id, join});
      out.memberships.push_back({forum.id, fr.id, join});
    }
  }

  // --- Posts -----------------------------------------------------------
  // The owner's posting budget scales with its friend count; posts go to the
  // owner's wall/groups. (Friends' own posts to this wall are generated when
  // processing those friends' activity against *their* walls; comments below
  // are what bring friends into this forum's discussion trees.)
  Rng post_rng(seed, owner_id, RandomPurpose::kPostCount);
  auto num_posts = static_cast<uint32_t>(
      kPostsPerFriend * static_cast<double>(owner_friends.size()) + 0.999);
  if (num_posts == 0) num_posts = 1;

  // Only non-album forums receive text posts.
  std::vector<size_t> postable;
  for (size_t fi = 0; fi < local_forums.size(); ++fi) {
    if (!local_forums[fi].is_album) postable.push_back(fi);
  }

  Rng topic_rng(seed, owner_id, RandomPurpose::kPostTopic);
  Rng text_rng(seed, owner_id, RandomPurpose::kPostText);
  Rng date_rng(seed, owner_id, RandomPurpose::kPostDate);
  Rng comment_rng(seed, owner_id, RandomPurpose::kCommentFan);
  Rng like_rng(seed, owner_id, RandomPurpose::kLikeFan);

  for (uint32_t pi = 0; pi < num_posts; ++pi) {
    const LocalForum& forum =
        local_forums[postable[post_rng.NextBounded(postable.size())]];
    // Post topic: one of the owner's interests (Table 1:
    // person.interests -> person.forum.post.topic). May be overridden by an
    // event tag for event-driven posts.
    schema::TagId topic =
        owner.interests.empty()
            ? static_cast<schema::TagId>(0)
            : owner.interests[topic_rng.NextBounded(owner.interests.size())];
    TimestampMs earliest = forum.created + kTSafeMs;
    TimestampMs post_date =
        SamplePostDate(events, owner.interests, config.event_driven_posts,
                       earliest, date_rng, &topic);

    Message post;
    post.kind = MessageKind::kPost;
    post.creator_id = owner_id;
    post.creation_date = post_date;
    post.forum_id = forum.id;
    post.tags.push_back(topic);
    // Posts carry up to two secondary tags from the creator's interests
    // (tag co-occurrence, exercised by Query 6).
    for (int extra = 0; extra < 2; ++extra) {
      if (owner.interests.empty() || !topic_rng.NextBool(0.4)) continue;
      schema::TagId t =
          owner.interests[topic_rng.NextBounded(owner.interests.size())];
      if (std::find(post.tags.begin(), post.tags.end(), t) ==
          post.tags.end()) {
        post.tags.push_back(t);
      }
    }
    post.language = owner.languages.empty() ? 0 : owner.languages[0];
    post.country_id = MessageCountry(
        dict, dict.CountryOfCity(persons[owner_id].city_id), topic_rng);
    post.content = dict.GenerateText(topic, 10, 60, text_rng);
    size_t post_index = out.messages.size();
    out.messages.push_back(std::move(post));

    // --- Comment tree under this post --------------------------------
    // Commenters are forum members who became friends of the owner before
    // commenting; a comment replies to the post or to an earlier comment.
    uint64_t num_comments = 0;
    {
      double mean = kMeanCommentsPerPost;
      // Geometric with the given mean.
      double p = 1.0 / (1.0 + mean);
      while (num_comments < 64 && !comment_rng.NextBool(p)) ++num_comments;
    }
    std::vector<size_t> tree;  // Indices into out.messages.
    tree.push_back(post_index);
    for (uint64_t c = 0; c < num_comments; ++c) {
      if (forum.members.size() < 2) break;
      // Pick a commenter among members (excluding picks that are not yet
      // members when the parent was written is approximated by date
      // maxing below).
      const FriendRef& member =
          forum.members[1 + comment_rng.NextBounded(forum.members.size() -
                                                    1)];
      // Reply target: the root post with probability 1/2, otherwise a
      // uniform earlier node (deeper threads for popular posts).
      size_t parent_index =
          comment_rng.NextBool(0.5)
              ? post_index
              : tree[comment_rng.NextBounded(tree.size())];
      const Message& parent = out.messages[parent_index];
      TimestampMs comment_earliest =
          std::max(parent.creation_date, member.since + kTSafeMs) +
          util::kMillisPerHour;
      if (comment_earliest >= util::NetworkEndMs()) continue;
      double gap = util::SampleExponential(
          comment_rng, 1.0 / (12.0 * util::kMillisPerHour));
      TimestampMs comment_date =
          comment_earliest + static_cast<TimestampMs>(gap);
      // Activity that would fall past the simulated timeline is dropped
      // rather than clamped (clamping would pile messages onto the final
      // instant).
      if (comment_date >= util::NetworkEndMs()) continue;

      Message comment;
      comment.kind = MessageKind::kComment;
      comment.creator_id = member.id;
      comment.creation_date = comment_date;
      comment.forum_id = forum.id;
      comment.reply_to_id = static_cast<schema::MessageId>(parent_index);
      comment.root_post_id = static_cast<schema::MessageId>(post_index);
      // Comment topic follows the post topic; text correlates with it.
      comment.tags.push_back(topic);
      comment.language = persons[member.id].languages.empty()
                             ? 0
                             : persons[member.id].languages[0];
      comment.country_id = MessageCountry(
          dict, dict.CountryOfCity(persons[member.id].city_id), comment_rng);
      comment.content = dict.GenerateText(topic, 4, 30, text_rng);
      tree.push_back(out.messages.size());
      out.messages.push_back(std::move(comment));
    }

    // --- Likes on the whole tree --------------------------------------
    for (size_t node : tree) {
      const Message& msg = out.messages[node];
      uint64_t num_likes = 0;
      double p = 1.0 / (1.0 + kMeanLikesPerMessage);
      while (num_likes < 64 && !like_rng.NextBool(p)) ++num_likes;
      for (uint64_t l = 0; l < num_likes && !forum.members.empty(); ++l) {
        const FriendRef& member =
            forum.members[like_rng.NextBounded(forum.members.size())];
        if (member.id == msg.creator_id) continue;
        TimestampMs like_earliest =
            std::max(msg.creation_date, member.since + kTSafeMs) + 1;
        if (like_earliest >= util::NetworkEndMs()) continue;
        double gap = util::SampleExponential(
            like_rng, 1.0 / (6.0 * util::kMillisPerHour));
        TimestampMs like_date =
            like_earliest + static_cast<TimestampMs>(gap);
        if (like_date >= util::NetworkEndMs()) continue;
        Like like;
        like.person_id = member.id;
        like.message_id = static_cast<schema::MessageId>(node);
        like.creation_date = like_date;
        out.likes.push_back(like);
      }
    }
  }

  // --- Photos in the album --------------------------------------------
  Rng photo_rng(seed, owner_id, RandomPurpose::kPhoto);
  const LocalForum& album = local_forums[1];
  auto num_photos = static_cast<uint32_t>(
      kPhotosPerFriend * static_cast<double>(owner_friends.size()));
  schema::PlaceId owner_country = dict.CountryOfCity(owner.city_id);
  const schema::Country& country = dict.countries()[owner_country];
  for (uint32_t ph = 0; ph < num_photos; ++ph) {
    Message photo;
    photo.kind = MessageKind::kPhoto;
    photo.creator_id = owner_id;
    photo.forum_id = album.id;
    TimestampMs earliest = album.created + kTSafeMs;
    photo.creation_date = SamplePostDate(events, owner.interests, false,
                                         earliest, photo_rng, nullptr);
    photo.country_id = owner_country;
    // Table 1: photo location matches its coordinates.
    photo.latitude =
        country.latitude + photo_rng.NextDouble() * 4.0 - 2.0;
    photo.longitude =
        country.longitude + photo_rng.NextDouble() * 4.0 - 2.0;
    photo.language = owner.languages.empty() ? 0 : owner.languages[0];
    if (!owner.interests.empty()) {
      photo.tags.push_back(
          owner.interests[photo_rng.NextBounded(owner.interests.size())]);
    }
    out.messages.push_back(std::move(photo));
  }
}

}  // namespace

std::vector<TrendEvent> MakeTrendEvents(uint64_t seed) {
  std::vector<TrendEvent> events;
  events.reserve(kNumEvents);
  Rng rng(seed, 0xe7e47ULL, RandomPurpose::kEventSpike);
  util::BoundedParetoSampler magnitude(0.7, 1.0, 400.0);
  const Dictionaries dict_probe(seed);
  for (int e = 0; e < kNumEvents; ++e) {
    TrendEvent event;
    event.time = util::kNetworkStartMs +
                 static_cast<TimestampMs>(
                     rng.NextDouble() *
                     static_cast<double>(util::kSimulationMonths *
                                         util::kMillisPerMonth));
    // Events concern topics that are *popular* somewhere: sample a tag with
    // the interest skew of a random country, so a large share of that
    // country's members is interested and the spike is visible.
    auto country = static_cast<schema::PlaceId>(
        rng.NextBounded(dict_probe.countries().size()));
    event.tag = dict_probe.SampleInterestTag(country, rng);
    event.magnitude = magnitude.Sample(rng);
    events.push_back(event);
  }
  std::sort(events.begin(), events.end(),
            [](const TrendEvent& a, const TrendEvent& b) {
              return a.time < b.time;
            });
  return events;
}

void GenerateActivity(const DatagenConfig& config,
                      const Dictionaries& dictionaries,
                      SocialNetwork& network, util::ThreadPool& pool) {
  const std::vector<Person>& persons = network.persons;
  const size_t n = persons.size();

  // Friend lists with friendship dates (only friends comment/like, and only
  // after the friendship exists).
  std::vector<std::vector<FriendRef>> friends(n);
  for (const schema::Knows& k : network.knows) {
    friends[k.person1_id].push_back({k.person2_id, k.creation_date});
    friends[k.person2_id].push_back({k.person1_id, k.creation_date});
  }

  std::vector<TrendEvent> events = MakeTrendEvents(config.seed);

  size_t workers = pool.num_threads();
  std::vector<ActivityChunk> chunks(workers);
  pool.ParallelForRanges(n, [&](size_t begin, size_t end, size_t worker) {
    for (size_t i = begin; i < end; ++i) {
      GeneratePersonActivity(config, dictionaries, events, persons, friends,
                             static_cast<schema::PersonId>(i),
                             chunks[worker]);
    }
  });

  // Deterministic merge. Message temp-ids are chunk-local; rebase them while
  // concatenating.
  for (ActivityChunk& chunk : chunks) {
    uint64_t base = network.messages.size();
    for (Message& m : chunk.messages) {
      if (m.reply_to_id != schema::kInvalidId) m.reply_to_id += base;
      if (m.root_post_id != schema::kInvalidId) m.root_post_id += base;
      network.messages.push_back(std::move(m));
    }
    for (Like& l : chunk.likes) {
      l.message_id += base;
      network.likes.push_back(l);
    }
    for (Forum& f : chunk.forums) network.forums.push_back(std::move(f));
    for (ForumMembership& fm : chunk.memberships) {
      network.memberships.push_back(fm);
    }
    chunk = ActivityChunk();
  }

  // Re-assign message ids in creation-time order (ids increase with time).
  size_t num_messages = network.messages.size();
  std::vector<uint64_t> order(num_messages);
  for (size_t i = 0; i < num_messages; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](uint64_t a, uint64_t b) {
    const Message& ma = network.messages[a];
    const Message& mb = network.messages[b];
    if (ma.creation_date != mb.creation_date) {
      return ma.creation_date < mb.creation_date;
    }
    return a < b;
  });
  std::vector<uint64_t> new_id(num_messages);
  for (size_t rank = 0; rank < num_messages; ++rank) {
    new_id[order[rank]] = rank;
  }
  for (Message& m : network.messages) {
    m.id = new_id[&m - network.messages.data()];
    if (m.reply_to_id != schema::kInvalidId) {
      m.reply_to_id = new_id[m.reply_to_id];
    }
    if (m.root_post_id != schema::kInvalidId) {
      m.root_post_id = new_id[m.root_post_id];
    } else {
      m.root_post_id = m.id;  // Posts/photos root themselves.
    }
  }
  for (Like& l : network.likes) l.message_id = new_id[l.message_id];
  // Store messages sorted by id (= creation-time order).
  std::sort(network.messages.begin(), network.messages.end(),
            [](const Message& a, const Message& b) { return a.id < b.id; });

  // Posts/photos that never set root (defensive): ensured above.
  assert(network.messages.empty() || network.messages.front().id == 0);
}

}  // namespace snb::datagen
