// Greedy parameter curation (paper section 4.1, "Parameter Curation at
// scale", step 2).
//
// Given a Parameter-Count table, select k bindings whose intermediate
// result counts have minimal variance across every column of the intended
// plan, so the resulting queries satisfy
//   P1 bounded runtime variance,
//   P2 stable runtime distribution across samples,
//   P3 identical optimal logical plan.
// The heuristic refines windows column by column: sort by the first column,
// pick the minimum-variance window, then within it pick the minimum-variance
// sub-window on the next column, and so on until k rows remain.
#ifndef SNB_CURATION_PARAMETER_CURATION_H_
#define SNB_CURATION_PARAMETER_CURATION_H_

#include <cstdint>
#include <vector>

#include "curation/pc_table.h"
#include "util/datetime.h"
#include "util/rng.h"

namespace snb::curation {

/// Selects `k` parameter bindings from `table` with the greedy
/// window-refinement heuristic. Returns fewer than k only when the table has
/// fewer rows. Deterministic.
std::vector<uint64_t> CurateParameters(const PcTable& table, size_t k);

/// Baseline for comparison (Figure 5b "uniform" case): a uniform random
/// sample of k keys.
std::vector<uint64_t> UniformParameters(const PcTable& table, size_t k,
                                        util::Rng& rng);

/// Variance of the total intermediate-result count (Cout) over a selection;
/// the objective the curation minimizes.
double SelectionCoutVariance(const PcTable& table,
                             const std::vector<uint64_t>& keys);

/// Buckets a continuous timestamp domain into month-sized buckets (the
/// paper's treatment of continuous parameters): returns the bucket index.
int TimestampBucket(util::TimestampMs ts);

/// Curation for a (discrete, bucketed-continuous) parameter pair, e.g.
/// (PersonId, month). `counts[r][b]` is the intermediate-result count for
/// key r in bucket b; selects k (key, bucket) pairs with minimal count
/// variance.
struct CuratedPair {
  uint64_t key = 0;
  int bucket = 0;
};
std::vector<CuratedPair> CuratePairs(
    const std::vector<uint64_t>& keys,
    const std::vector<std::vector<uint64_t>>& counts, size_t k);

}  // namespace snb::curation

#endif  // SNB_CURATION_PARAMETER_CURATION_H_
