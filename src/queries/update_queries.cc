#include "queries/update_queries.h"

#include <string>
#include <variant>

namespace snb::queries {

using datagen::UpdateKind;
using datagen::UpdateOperation;

util::Status ApplyUpdate(store::GraphStore& store, const UpdateOperation& op) {
  // std::get_if (not std::get) throughout: a corrupt update stream can
  // carry an out-of-range kind byte or a kind/payload mismatch, and the
  // driver must get a Status back, not a thrown bad_variant_access.
  switch (op.kind) {
    case UpdateKind::kAddPerson:
      if (const auto* p = std::get_if<schema::Person>(&op.payload)) {
        return store.AddPerson(*p);
      }
      break;
    case UpdateKind::kAddFriendship:
      if (const auto* k = std::get_if<schema::Knows>(&op.payload)) {
        return store.AddFriendship(*k);
      }
      break;
    case UpdateKind::kAddForum:
      if (const auto* f = std::get_if<schema::Forum>(&op.payload)) {
        return store.AddForum(*f);
      }
      break;
    case UpdateKind::kAddForumMembership:
      if (const auto* m = std::get_if<schema::ForumMembership>(&op.payload)) {
        return store.AddForumMembership(*m);
      }
      break;
    case UpdateKind::kAddPost:
    case UpdateKind::kAddComment:
      if (const auto* m = std::get_if<schema::Message>(&op.payload)) {
        return store.AddMessage(*m);
      }
      break;
    case UpdateKind::kAddLikePost:
    case UpdateKind::kAddLikeComment:
      if (const auto* l = std::get_if<schema::Like>(&op.payload)) {
        return store.AddLike(*l);
      }
      break;
    default:
      return util::Status::InvalidArgument(
          "unknown update kind " +
          std::to_string(static_cast<unsigned>(op.kind)));
  }
  return util::Status::InvalidArgument(
      "update kind " + std::to_string(static_cast<unsigned>(op.kind)) +
      " does not match its payload type");
}

}  // namespace snb::queries
