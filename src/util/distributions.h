// Probability distributions used by DATAGEN.
//
// The paper relies on skewed value distributions (exponential rank decay for
// dictionary values), geometric window-distance decay for friendship picks,
// and the discretized Facebook power-law for friendship degrees.
#ifndef SNB_UTIL_DISTRIBUTIONS_H_
#define SNB_UTIL_DISTRIBUTIONS_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace snb::util {

/// Samples ranks 0..n-1 with geometrically decaying probability
/// P(rank = k) ∝ (1-p)^k. Used for skewed dictionary value selection and for
/// sliding-window friend picking (probability decays with window distance).
class GeometricRankSampler {
 public:
  /// `p` is the per-step success probability in (0, 1); `n` the domain size.
  GeometricRankSampler(double p, uint64_t n) : p_(p), n_(n) {
    assert(p > 0.0 && p < 1.0 && n > 0);
  }

  /// Draws a rank in [0, n). Truncated geometric via inversion.
  uint64_t Sample(Rng& rng) const {
    // Inverse CDF of the geometric distribution, truncated to [0, n).
    double u = rng.NextDouble();
    // Normalize u to the truncated support so all ranks stay reachable.
    double total = 1.0 - std::pow(1.0 - p_, static_cast<double>(n_));
    u *= total;
    double k = std::floor(std::log1p(-u) / std::log1p(-p_));
    if (k < 0.0) k = 0.0;
    uint64_t rank = static_cast<uint64_t>(k);
    return rank >= n_ ? n_ - 1 : rank;
  }

 private:
  double p_;
  uint64_t n_;
};

/// Samples from an arbitrary discrete distribution given per-item weights.
class DiscreteSampler {
 public:
  /// Weights need not be normalized; all must be >= 0 and sum > 0.
  explicit DiscreteSampler(std::vector<double> weights)
      : cumulative_(std::move(weights)) {
    double acc = 0.0;
    for (double& w : cumulative_) {
      assert(w >= 0.0);
      acc += w;
      w = acc;
    }
    assert(acc > 0.0);
    total_ = acc;
  }

  /// Draws an index in [0, weights.size()).
  size_t Sample(Rng& rng) const {
    double u = rng.NextDouble() * total_;
    size_t lo = 0, hi = cumulative_.size() - 1;
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cumulative_[mid] <= u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  size_t size() const { return cumulative_.size(); }

 private:
  std::vector<double> cumulative_;
  double total_ = 0.0;
};

/// Power-law (bounded Pareto) sampler on [lo, hi] with exponent alpha > 0:
/// p(x) ∝ x^-(alpha+1).
class BoundedParetoSampler {
 public:
  BoundedParetoSampler(double alpha, double lo, double hi)
      : alpha_(alpha), lo_(lo), hi_(hi) {
    assert(alpha > 0.0 && lo > 0.0 && hi > lo);
  }

  double Sample(Rng& rng) const {
    double u = rng.NextDouble();
    double la = std::pow(lo_, alpha_);
    double ha = std::pow(hi_, alpha_);
    return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha_);
  }

 private:
  double alpha_;
  double lo_;
  double hi_;
};

/// Exponential inter-arrival sampler with the given rate (events per unit).
inline double SampleExponential(Rng& rng, double rate) {
  assert(rate > 0.0);
  double u = rng.NextDouble();
  // Guard against log(0).
  if (u >= 1.0) u = 0.9999999999;
  return -std::log1p(-u) / rate;
}

}  // namespace snb::util

#endif  // SNB_UTIL_DISTRIBUTIONS_H_
