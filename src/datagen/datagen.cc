#include "datagen/datagen.h"

#include <utility>

#include "datagen/activity_generator.h"
#include "datagen/degree_model.h"
#include "datagen/friendship_generator.h"
#include "datagen/person_generator.h"
#include "util/thread_pool.h"

namespace snb::datagen {

Dataset Generate(const DatagenConfig& config,
                 const schema::Dictionaries& dictionaries) {
  util::ThreadPool pool(config.num_threads);

  schema::SocialNetwork network;
  network.persons = GeneratePersons(config, dictionaries, pool);

  DegreeModel degree_model(config.num_persons);
  network.knows = GenerateFriendships(config, dictionaries, degree_model,
                                      network.persons, pool);

  GenerateActivity(config, dictionaries, network, pool);

  Dataset dataset;
  dataset.config = config;
  dataset.stats = ComputeStatistics(network);

  if (config.split_update_stream) {
    SplitResult split =
        SplitAtTimestamp(std::move(network), util::UpdateStreamStartMs());
    dataset.bulk = std::move(split.bulk);
    dataset.updates = std::move(split.updates);
  } else {
    dataset.bulk = std::move(network);
  }
  return dataset;
}

Dataset Generate(const DatagenConfig& config) {
  schema::Dictionaries dictionaries(config.seed);
  return Generate(config, dictionaries);
}

}  // namespace snb::datagen
