file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2b_degree_percentiles.dir/bench_fig2b_degree_percentiles.cc.o"
  "CMakeFiles/bench_fig2b_degree_percentiles.dir/bench_fig2b_degree_percentiles.cc.o.d"
  "bench_fig2b_degree_percentiles"
  "bench_fig2b_degree_percentiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2b_degree_percentiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
