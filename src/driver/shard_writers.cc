#include "driver/shard_writers.h"

#include <chrono>
#include <string>
#include <variant>

#include "schema/entities.h"

namespace snb::driver {

ShardWriterPool::ShardWriterPool(store::GraphStore* store, Options options)
    : store_(store),
      options_(options),
      num_shards_(store->num_shards()) {
  lanes_.reserve(num_shards_);
  for (uint32_t i = 0; i < num_shards_; ++i) {
    auto lane = std::make_unique<Lane>();
    lane->queue =
        std::make_unique<util::SpscQueue<SubOp>>(options_.queue_capacity);
    lanes_.push_back(std::move(lane));
  }
  for (uint32_t i = 0; i < num_shards_; ++i) {
    lanes_[i]->worker = std::thread([this, i] { WorkerLoop(i); });
  }
}

ShardWriterPool::~ShardWriterPool() {
  stop_.store(true, std::memory_order_release);
  for (auto& lane : lanes_) {
    if (lane->worker.joinable()) lane->worker.join();
  }
}

void ShardWriterPool::Enqueue(uint32_t shard, HalfKind kind,
                              const datagen::UpdateOperation* op) {
  Lane& lane = *lanes_[shard];
  SubOp sub;
  sub.kind = kind;
  sub.op = op;
  // Workers pop unconditionally (they skip the mutation when poisoned),
  // so a full ring always drains and this spin is bounded.
  while (!lane.queue->TryPush(sub)) {
    std::this_thread::yield();
  }
  lane.enqueued.fetch_add(1, std::memory_order_release);
}

util::Status ShardWriterPool::Submit(const datagen::UpdateOperation& op) {
  if (poisoned()) {
    util::MutexLock lock(&pool_error_mu_);
    return first_error_;
  }
  util::MutexLock submit_lock(&submit_mu_);
  owned_.push_back(op);
  const datagen::UpdateOperation* p = &owned_.back();
  using datagen::UpdateKind;
  switch (p->kind) {
    case UpdateKind::kAddPerson: {
      const auto& person = std::get<schema::Person>(p->payload);
      Enqueue(store_->ShardOfPersonId(person.id), HalfKind::kPersonCreate, p);
      break;
    }
    case UpdateKind::kAddFriendship: {
      const auto& knows = std::get<schema::Knows>(p->payload);
      Enqueue(store_->ShardOfPersonId(knows.person1_id),
              HalfKind::kFriendHalf1, p);
      Enqueue(store_->ShardOfPersonId(knows.person2_id),
              HalfKind::kFriendHalf2, p);
      break;
    }
    case UpdateKind::kAddForum: {
      const auto& forum = std::get<schema::Forum>(p->payload);
      Enqueue(store_->ShardOfForumId(forum.id), HalfKind::kForumCreate, p);
      break;
    }
    case UpdateKind::kAddForumMembership: {
      const auto& m = std::get<schema::ForumMembership>(p->payload);
      Enqueue(store_->ShardOfPersonId(m.person_id),
              HalfKind::kMemberPersonSide, p);
      Enqueue(store_->ShardOfForumId(m.forum_id), HalfKind::kMemberForumSide,
              p);
      break;
    }
    case UpdateKind::kAddPost:
    case UpdateKind::kAddComment: {
      const auto& msg = std::get<schema::Message>(p->payload);
      // Create before links: when a link half lands on the same lane as
      // the create, FIFO order alone satisfies its dependency.
      Enqueue(store_->ShardOfMessageId(msg.id), HalfKind::kMessageCreate, p);
      Enqueue(store_->ShardOfPersonId(msg.creator_id),
              HalfKind::kMessageCreatorLink, p);
      const uint32_t container_shard =
          msg.reply_to_id != schema::kInvalidId
              ? store_->ShardOfMessageId(msg.reply_to_id)
              : store_->ShardOfForumId(msg.forum_id);
      Enqueue(container_shard, HalfKind::kMessageContainerLink, p);
      break;
    }
    case UpdateKind::kAddLikePost:
    case UpdateKind::kAddLikeComment: {
      const auto& like = std::get<schema::Like>(p->payload);
      Enqueue(store_->ShardOfPersonId(like.person_id),
              HalfKind::kLikePersonSide, p);
      Enqueue(store_->ShardOfMessageId(like.message_id),
              HalfKind::kLikeMessageSide, p);
      break;
    }
  }
  // Release-publish the submission frontier only after every half of the
  // op is in its ring; idle lanes fold this into their due floor. Max,
  // not a plain store: windowed submission interleaves due times.
  if (p->due_time > submitted_through_.load(std::memory_order_relaxed)) {
    submitted_through_.store(p->due_time, std::memory_order_release);
  }
  return util::Status::Ok();
}

// Max-advance of a lane's due floor. Only the lane's worker writes the
// floor, so load + store is race-free; max (not plain store) because
// windowed submission interleaves due times within a window.
void ShardWriterPool::AdvanceFloor(Lane& lane, util::TimestampMs t) {
  if (t > lane.due_floor.load(std::memory_order_relaxed)) {
    lane.due_floor.store(t, std::memory_order_release);
  }
}

void ShardWriterPool::WorkerLoop(uint32_t shard) {
  Lane& lane = *lanes_[shard];
  for (;;) {
    // Snapshot the submission frontier BEFORE the pop attempt: the
    // producer's pushes happen-before its frontier store, so observing
    // the ring empty afterwards means every half for ops counted in
    // `submitted` on this lane has already been applied here.
    const util::TimestampMs submitted =
        submitted_through_.load(std::memory_order_acquire);
    SubOp sub;
    if (lane.queue->TryPop(&sub)) {
      ApplyHalf(sub);
      AdvanceFloor(lane, sub.op->due_time);
      lane.applied.fetch_add(1, std::memory_order_release);
      continue;
    }
    AdvanceFloor(lane, submitted);
    if (stop_.load(std::memory_order_acquire)) {
      // Final pushes happen-before the stop store: one more pop attempt
      // after observing stop sees anything left.
      if (!lane.queue->TryPop(&sub)) break;
      ApplyHalf(sub);
      AdvanceFloor(lane, sub.op->due_time);
      lane.applied.fetch_add(1, std::memory_order_release);
      continue;
    }
    std::this_thread::yield();
  }
}

template <typename Pred>
bool ShardWriterPool::WaitPresent(const Pred& pred, const char* what) {
  if (pred()) return true;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.wait_timeout_ms);
  for (;;) {
    if (pred()) return true;
    if (poisoned()) return false;
    if (std::chrono::steady_clock::now() >= deadline) {
      Poison(util::Status::Aborted(
          std::string("shard writer dependency wait timed out: ") + what));
      return false;
    }
    std::this_thread::yield();
  }
}

void ShardWriterPool::ApplyHalf(const SubOp& sub) {
  const datagen::UpdateOperation& op = *sub.op;
  util::Status status = util::Status::Ok();
  if (!poisoned()) {
    switch (sub.kind) {
      case HalfKind::kPersonCreate:
        status = store_->ApplyPersonCreate(
            std::get<schema::Person>(op.payload));
        break;
      case HalfKind::kFriendHalf1: {
        const auto& k = std::get<schema::Knows>(op.payload);
        if (WaitPresent(
                [&] { return store_->PersonPresent(k.person2_id); },
                "friendship endpoint")) {
          status = store_->ApplyFriendshipHalf(k.person1_id, k.person2_id,
                                               k.creation_date,
                                               /*bump_counters=*/true);
        }
        break;
      }
      case HalfKind::kFriendHalf2: {
        const auto& k = std::get<schema::Knows>(op.payload);
        if (WaitPresent(
                [&] { return store_->PersonPresent(k.person1_id); },
                "friendship endpoint")) {
          status = store_->ApplyFriendshipHalf(k.person2_id, k.person1_id,
                                               k.creation_date,
                                               /*bump_counters=*/false);
        }
        break;
      }
      case HalfKind::kForumCreate: {
        const auto& f = std::get<schema::Forum>(op.payload);
        if (WaitPresent(
                [&] { return store_->PersonPresent(f.moderator_id); },
                "forum moderator")) {
          status = store_->ApplyForumCreate(f);
        }
        break;
      }
      case HalfKind::kMemberPersonSide: {
        const auto& m = std::get<schema::ForumMembership>(op.payload);
        if (WaitPresent([&] { return store_->ForumPresent(m.forum_id); },
                        "membership forum")) {
          status = store_->ApplyMembershipPersonHalf(m);
        }
        break;
      }
      case HalfKind::kMemberForumSide: {
        const auto& m = std::get<schema::ForumMembership>(op.payload);
        if (WaitPresent([&] { return store_->PersonPresent(m.person_id); },
                        "membership person")) {
          status = store_->ApplyMembershipForumHalf(m,
                                                    /*bump_counters=*/true);
        }
        break;
      }
      case HalfKind::kMessageCreate: {
        const auto& msg = std::get<schema::Message>(op.payload);
        bool deps_ok = WaitPresent(
            [&] { return store_->PersonPresent(msg.creator_id); },
            "message creator");
        if (deps_ok) {
          deps_ok = msg.reply_to_id != schema::kInvalidId
                        ? WaitPresent(
                              [&] {
                                return store_->MessagePresent(msg.reply_to_id);
                              },
                              "comment parent")
                        : WaitPresent(
                              [&] {
                                return store_->ForumPresent(msg.forum_id);
                              },
                              "post forum");
        }
        if (deps_ok) status = store_->ApplyMessageCreate(msg);
        break;
      }
      case HalfKind::kMessageCreatorLink: {
        const auto& msg = std::get<schema::Message>(op.payload);
        if (WaitPresent([&] { return store_->MessagePresent(msg.id); },
                        "created message")) {
          status = store_->ApplyMessageCreatorLink(msg);
        }
        break;
      }
      case HalfKind::kMessageContainerLink: {
        const auto& msg = std::get<schema::Message>(op.payload);
        if (WaitPresent([&] { return store_->MessagePresent(msg.id); },
                        "created message")) {
          status = store_->ApplyMessageContainerLink(msg);
        }
        break;
      }
      case HalfKind::kLikePersonSide: {
        const auto& like = std::get<schema::Like>(op.payload);
        if (WaitPresent(
                [&] { return store_->MessagePresent(like.message_id); },
                "liked message")) {
          status = store_->ApplyLikePersonHalf(like);
        }
        break;
      }
      case HalfKind::kLikeMessageSide: {
        const auto& like = std::get<schema::Like>(op.payload);
        if (WaitPresent(
                [&] { return store_->PersonPresent(like.person_id); },
                "like person")) {
          status = store_->ApplyLikeMessageHalf(like,
                                                /*bump_counters=*/true);
        }
        break;
      }
    }
  }
  if (!status.ok()) Poison(status);
}

util::Status ShardWriterPool::Drain() {
  for (auto& lane : lanes_) {
    while (lane->applied.load(std::memory_order_acquire) <
           lane->enqueued.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  }
  // Idle workers fold the submission frontier into their floors; wait so
  // CompletedThrough() == submitted frontier after a drain.
  const util::TimestampMs submitted =
      submitted_through_.load(std::memory_order_acquire);
  while (!poisoned() && CompletedThrough() < submitted) {
    std::this_thread::yield();
  }
  util::MutexLock lock(&pool_error_mu_);
  return first_error_;
}

util::TimestampMs ShardWriterPool::CompletedThrough() const {
  util::TimestampMs floor = kTimeMax;
  for (const auto& lane : lanes_) {
    const util::TimestampMs f =
        lane->due_floor.load(std::memory_order_acquire);
    if (f < floor) floor = f;
  }
  return lanes_.empty() ? 0 : floor;
}

void ShardWriterPool::WaitCompletedThrough(util::TimestampMs t) const {
  while (!poisoned() && CompletedThrough() < t) {
    std::this_thread::yield();
  }
}

std::vector<uint64_t> ShardWriterPool::WatermarkVector() const {
  std::vector<uint64_t> v;
  v.reserve(lanes_.size());
  for (const auto& lane : lanes_) {
    v.push_back(lane->applied.load(std::memory_order_acquire));
  }
  return v;
}

void ShardWriterPool::Poison(const util::Status& status) {
  util::MutexLock lock(&pool_error_mu_);
  if (first_error_.ok()) first_error_ = status;
  poisoned_.store(true, std::memory_order_release);
}

}  // namespace snb::driver
