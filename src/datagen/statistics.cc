#include "datagen/statistics.h"

#include <algorithm>
#include <unordered_set>

namespace snb::datagen {
namespace {

// Rough CSV field widths used for the SF size estimate: ids print as
// decimals, dates as 19-char timestamps, plus separators.
constexpr uint64_t kIdBytes = 12;
constexpr uint64_t kDateBytes = 20;

uint64_t PersonCsvBytes(const schema::Person& p) {
  uint64_t bytes = kIdBytes + p.first_name.size() + p.last_name.size() + 2 +
                   kDateBytes * 2 + kIdBytes + p.browser.size() +
                   p.location_ip.size();
  for (const std::string& e : p.emails) bytes += e.size() + 1;
  bytes += p.languages.size() * 4;
  bytes += p.interests.size() * (kIdBytes + 1);
  bytes += 2 * (kIdBytes + 6);  // university/company rows.
  return bytes + 8;
}

uint64_t MessageCsvBytes(const schema::Message& m) {
  return kIdBytes * 4 + kDateBytes + m.content.size() +
         m.tags.size() * (kIdBytes + 1) + 24;
}

}  // namespace

GenerationStats ComputeStatistics(const schema::SocialNetwork& network) {
  GenerationStats stats;
  size_t n = network.persons.size();
  stats.num_persons = n;
  stats.num_knows = network.knows.size();
  stats.num_forums = network.forums.size();
  stats.num_memberships = network.memberships.size();
  stats.num_likes = network.likes.size();

  stats.friend_count.assign(n, 0);
  stats.two_hop_count.assign(n, 0);
  stats.person_message_count.assign(n, 0);
  stats.friend_message_count.assign(n, 0);

  std::vector<std::vector<uint32_t>> adjacency(n);
  for (const schema::Knows& k : network.knows) {
    ++stats.friend_count[k.person1_id];
    ++stats.friend_count[k.person2_id];
    adjacency[k.person1_id].push_back(
        static_cast<uint32_t>(k.person2_id));
    adjacency[k.person2_id].push_back(
        static_cast<uint32_t>(k.person1_id));
    stats.csv_bytes += kIdBytes * 2 + kDateBytes + 3;
  }

  for (const schema::Message& m : network.messages) {
    switch (m.kind) {
      case schema::MessageKind::kPost:
        ++stats.num_posts;
        ++stats.posts_per_month[util::MonthIndex(m.creation_date)];
        break;
      case schema::MessageKind::kComment:
        ++stats.num_comments;
        break;
      case schema::MessageKind::kPhoto:
        ++stats.num_photos;
        break;
    }
    if (m.creator_id < n) ++stats.person_message_count[m.creator_id];
    stats.csv_bytes += MessageCsvBytes(m);
  }

  for (const schema::Person& p : network.persons) {
    stats.csv_bytes += PersonCsvBytes(p);
  }
  stats.csv_bytes +=
      network.forums.size() * (kIdBytes * 2 + kDateBytes + 40) +
      network.memberships.size() * (kIdBytes * 2 + kDateBytes + 3) +
      network.likes.size() * (kIdBytes * 2 + kDateBytes + 3);

  // Two-hop neighbourhood sizes and friends' message totals.
  std::unordered_set<uint32_t> seen;
  for (size_t p = 0; p < n; ++p) {
    seen.clear();
    uint64_t friend_messages = 0;
    for (uint32_t f : adjacency[p]) {
      seen.insert(f);
      friend_messages += stats.person_message_count[f];
      for (uint32_t ff : adjacency[f]) {
        if (ff != p) seen.insert(ff);
      }
    }
    stats.two_hop_count[p] = static_cast<uint32_t>(seen.size());
    stats.friend_message_count[p] = friend_messages;
  }
  return stats;
}

}  // namespace snb::datagen
