#include "store/graph_store.h"

#include <algorithm>
#include <string>

#include "util/mutex.h"

namespace snb::store {

using schema::Knows;
using schema::Message;
using schema::Person;
using util::Status;

namespace {

constexpr auto kFriendLess = [](const FriendEdge& a, const FriendEdge& b) {
  return a.other < b.other;
};

Status BadId(const char* what, uint64_t id) {
  return Status::InvalidArgument(std::string(what) + " id out of range: " +
                                 std::to_string(id));
}

}  // namespace

// ---- Public transactional API ----------------------------------------------

Status GraphStore::BulkLoad(const schema::SocialNetwork& network) {
  util::WriterMutexLock lock(&mu_);
  if (NumPersons() != 0 || messages_.bound() != 0) {
    return Status::FailedPrecondition("BulkLoad requires an empty store");
  }
  for (const Person& p : network.persons) {
    SNB_RETURN_IF_ERROR(AddPersonLocked(p));
  }
  for (const Knows& k : network.knows) {
    SNB_RETURN_IF_ERROR(AddFriendshipLocked(k));
  }
  for (const schema::Forum& f : network.forums) {
    SNB_RETURN_IF_ERROR(AddForumLocked(f));
  }
  for (const schema::ForumMembership& fm : network.memberships) {
    SNB_RETURN_IF_ERROR(AddForumMembershipLocked(fm));
  }
  for (const Message& m : network.messages) {
    SNB_RETURN_IF_ERROR(AddMessageLocked(m));
  }
  for (const schema::Like& l : network.likes) {
    SNB_RETURN_IF_ERROR(AddLikeLocked(l));
  }
  return Status::Ok();
}

Status GraphStore::AddPerson(const Person& person) {
  util::WriterMutexLock lock(&mu_);
  return AddPersonLocked(person);
}

Status GraphStore::AddFriendship(const Knows& knows) {
  util::WriterMutexLock lock(&mu_);
  return AddFriendshipLocked(knows);
}

Status GraphStore::AddForum(const schema::Forum& forum) {
  util::WriterMutexLock lock(&mu_);
  return AddForumLocked(forum);
}

Status GraphStore::AddForumMembership(
    const schema::ForumMembership& membership) {
  util::WriterMutexLock lock(&mu_);
  return AddForumMembershipLocked(membership);
}

Status GraphStore::AddMessage(const Message& message) {
  util::WriterMutexLock lock(&mu_);
  return AddMessageLocked(message);
}

Status GraphStore::AddLike(const schema::Like& like) {
  util::WriterMutexLock lock(&mu_);
  return AddLikeLocked(like);
}

// ---- Locked internals -------------------------------------------------------
//
// Publication order is what makes kEpoch readers safe: a record's payload
// is stored, then its `ready` flag release-published, and only then is its
// id linked into adjacency lists (whose RcuVector appends are themselves
// release stores). A reader that can see an id in any list therefore sees
// the fully built record behind it.

Status GraphStore::AddPersonLocked(const Person& person) {
  if (person.id >= kMaxEntityId) return BadId("person", person.id);
  PersonRecord* rec = persons_.GrowToSlot(person.id, *epoch_);
  if (rec->present()) {
    return Status::AlreadyExists("person " + std::to_string(person.id));
  }
  rec->data = person;
  rec->ready.store(1, std::memory_order_release);
  num_persons_.fetch_add(1, std::memory_order_release);
  return Status::Ok();
}

Status GraphStore::AddFriendshipLocked(const Knows& knows) {
  PersonRecord* p1 = FindPersonMutable(knows.person1_id);
  PersonRecord* p2 = FindPersonMutable(knows.person2_id);
  if (p1 == nullptr || p2 == nullptr) {
    return Status::NotFound("friendship endpoint missing");
  }
  p1->friends.insert_sorted({knows.person2_id, knows.creation_date},
                            kFriendLess, *epoch_);
  p2->friends.insert_sorted({knows.person1_id, knows.creation_date},
                            kFriendLess, *epoch_);
  num_knows_.fetch_add(1, std::memory_order_release);
  knows_version_.fetch_add(1, std::memory_order_release);
  return Status::Ok();
}

Status GraphStore::AddForumLocked(const schema::Forum& forum) {
  if (forum.id >= kMaxEntityId) return BadId("forum", forum.id);
  if (FindPersonMutable(forum.moderator_id) == nullptr) {
    return Status::NotFound("forum moderator missing");
  }
  ForumRecord* rec = forums_.GrowToSlot(forum.id, *epoch_);
  if (rec->present()) {
    return Status::AlreadyExists("forum " + std::to_string(forum.id));
  }
  rec->data = forum;
  rec->ready.store(1, std::memory_order_release);
  num_forums_.fetch_add(1, std::memory_order_release);
  return Status::Ok();
}

Status GraphStore::AddForumMembershipLocked(
    const schema::ForumMembership& membership) {
  PersonRecord* person = FindPersonMutable(membership.person_id);
  ForumRecord* forum = forums_.MutableSlot(membership.forum_id);
  if (person == nullptr || forum == nullptr || !forum->present()) {
    return Status::NotFound("membership endpoint missing");
  }
  person->forums.push_back({membership.forum_id, membership.join_date},
                           *epoch_);
  forum->members.push_back({membership.person_id, membership.join_date},
                           *epoch_);
  num_memberships_.fetch_add(1, std::memory_order_release);
  return Status::Ok();
}

Status GraphStore::AddMessageLocked(const Message& message) {
  if (message.id >= kMaxEntityId) return BadId("message", message.id);
  PersonRecord* creator = FindPersonMutable(message.creator_id);
  if (creator == nullptr) {
    return Status::NotFound("message creator missing");
  }
  bool is_comment = message.kind == schema::MessageKind::kComment;
  MessageRecord* parent = nullptr;
  ForumRecord* forum = nullptr;
  if (is_comment) {
    parent = messages_.MutableSlot(message.reply_to_id);
    if (parent == nullptr || !parent->present()) {
      return Status::NotFound("comment parent missing");
    }
  } else {
    forum = forums_.MutableSlot(message.forum_id);
    if (forum == nullptr || !forum->present()) {
      return Status::NotFound("post forum missing");
    }
  }
  // Records never move (chunked table), so `parent`/`forum` stay valid
  // across this growth — unlike the old dense vector, which had to
  // re-resolve after resize.
  MessageRecord* rec = messages_.GrowToSlot(message.id, *epoch_);
  if (rec->present()) {
    return Status::AlreadyExists("message " + std::to_string(message.id));
  }
  rec->data = message;
  rec->ready.store(1, std::memory_order_release);
  // Keep the creator's message list sorted by (date, id) regardless of
  // application order. Q2/Q9 binary-search this list by date and S2 walks
  // it newest-first; the windowed and parallel-GCT drivers may apply two
  // messages of one creator out of due-time order when they fall into
  // different forum partitions, so insertion — not arrival — establishes
  // the invariant. Datagen streams are mostly ordered, so this is an O(1)
  // append except for the rare cross-partition inversion.
  creator->messages.insert_sorted(
      {message.id, message.creation_date},
      [](const DatedEdge& a, const DatedEdge& b) {
        if (a.date != b.date) return a.date < b.date;
        return a.id < b.id;
      },
      *epoch_);
  if (is_comment) {
    parent->replies.push_back(message.id, *epoch_);
  } else {
    forum->posts.push_back(message.id, *epoch_);
  }
  num_messages_.fetch_add(1, std::memory_order_release);
  return Status::Ok();
}

Status GraphStore::AddLikeLocked(const schema::Like& like) {
  PersonRecord* person = FindPersonMutable(like.person_id);
  if (person == nullptr) {
    return Status::NotFound("like person missing");
  }
  MessageRecord* message = messages_.MutableSlot(like.message_id);
  if (message == nullptr || !message->present()) {
    return Status::NotFound("liked message missing");
  }
  person->likes.push_back({like.message_id, like.creation_date}, *epoch_);
  message->likes.push_back({like.person_id, like.creation_date}, *epoch_);
  num_likes_.fetch_add(1, std::memory_order_release);
  return Status::Ok();
}

// ---- Read accessors ---------------------------------------------------------

bool GraphStore::AreFriends(const util::EpochPin& pin, schema::PersonId a,
                            schema::PersonId b) const {
  SNB_INVARIANT_ROOT("pinned_read");
  const PersonRecord* pa = FindPerson(pin, a);
  if (pa == nullptr) return false;
  auto friends = pa->friends.view();
  auto it = std::lower_bound(
      friends.begin(), friends.end(), b,
      [](const FriendEdge& e, schema::PersonId id) { return e.other < id; });
  return it != friends.end() && it->other == b;
}

std::vector<schema::PersonId> GraphStore::PersonIds(
    const util::EpochPin& /*pin*/) const {
  std::vector<schema::PersonId> ids;
  ids.reserve(NumPersons());
  uint64_t bound = persons_.bound();
  for (uint64_t id = 0; id < bound; ++id) {
    const PersonRecord* p = persons_.Slot(id);
    if (p != nullptr && p->present()) ids.push_back(id);
  }
  return ids;
}

std::vector<schema::ForumId> GraphStore::ForumIds(
    const util::EpochPin& /*pin*/) const {
  std::vector<schema::ForumId> ids;
  ids.reserve(NumForums());
  uint64_t bound = forums_.bound();
  for (uint64_t id = 0; id < bound; ++id) {
    const ForumRecord* f = forums_.Slot(id);
    if (f != nullptr && f->present()) ids.push_back(id);
  }
  return ids;
}

StorageBreakdown GraphStore::ComputeStorageBreakdown() const {
  util::WriterMutexLock lock(&mu_);
  StorageBreakdown b;
  uint64_t message_bound = messages_.bound();
  for (uint64_t id = 0; id < message_bound; ++id) {
    const MessageRecord* m = messages_.Slot(id);
    if (m == nullptr || !m->present()) continue;
    b.message_bytes += sizeof(MessageRecord) + m->data.content.capacity() +
                       m->data.tags.capacity() * sizeof(schema::TagId) +
                       m->replies.capacity_bytes();
    b.message_content_bytes += m->data.content.capacity();
    b.likes_bytes += m->likes.capacity_bytes();
  }
  uint64_t person_bound = persons_.bound();
  for (uint64_t id = 0; id < person_bound; ++id) {
    const PersonRecord* p = persons_.Slot(id);
    if (p == nullptr || !p->present()) continue;
    uint64_t attr = sizeof(PersonRecord) + p->data.first_name.capacity() +
                    p->data.last_name.capacity() +
                    p->data.browser.capacity() +
                    p->data.location_ip.capacity() +
                    p->data.interests.capacity() * sizeof(schema::TagId) +
                    p->data.languages.capacity() * sizeof(uint32_t);
    for (const std::string& e : p->data.emails) attr += e.capacity();
    b.person_bytes += attr;
    b.friends_bytes += p->friends.capacity_bytes();
    b.membership_bytes += p->forums.capacity_bytes();
    b.likes_bytes += p->likes.capacity_bytes();
    b.message_bytes += p->messages.capacity_bytes();
  }
  uint64_t forum_bound = forums_.bound();
  for (uint64_t id = 0; id < forum_bound; ++id) {
    const ForumRecord* f = forums_.Slot(id);
    if (f == nullptr || !f->present()) continue;
    b.forum_bytes += sizeof(ForumRecord) + f->data.title.capacity() +
                     f->data.tags.capacity() * sizeof(schema::TagId) +
                     f->posts.capacity_bytes();
    b.membership_bytes += f->members.capacity_bytes();
  }
  return b;
}

}  // namespace snb::store
