// Run-audit accumulators shared by the driver's execution modes: the
// bounded scheduling-lag timeline and the schedule-compliance tracker.
//
// Both are written once per operation from every worker thread, so both
// follow the obs registry's recipe: fixed-size arrays of relaxed atomics
// on the record path, a single-threaded fold at report time. Header-only
// so driver_test can exercise the downsampling and audit arithmetic
// directly.
#ifndef SNB_DRIVER_RUN_AUDIT_H_
#define SNB_DRIVER_RUN_AUDIT_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/report.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace snb::driver {

/// Folds `value` into the slot as a max (slots start at the -1 "no data"
/// sentinel, so any recorded lag — including 0 — marks the slot live).
inline void FoldMax(std::atomic<int64_t>& slot, int64_t value) {
  int64_t seen = slot.load(std::memory_order_relaxed);
  while (value > seen &&
         !slot.compare_exchange_weak(seen, value,
                                     std::memory_order_relaxed)) {
  }
}

/// Per-second max-scheduling-lag timeline with bounded memory.
///
/// A throttled run records (scheduled second, lag) once per operation; the
/// report wants the shape of lag over the whole run. A fixed array of
/// seconds would either cap the run length or smear everything past the
/// cap into one slot (what PR 2 did). Instead the timeline *downsamples*:
/// when a second lands beyond the last slot, the resolution doubles
/// (seconds per slot: 1 → 2 → 4 …) and existing slots are folded pairwise,
/// so any run length fits in `max_slots` entries with max-preserving
/// coarsening. Memory is O(max_slots) regardless of run length.
///
/// Concurrency: Record() is lock-free in the steady state (one CAS-max).
/// Rescaling takes a mutex; writers racing a rescale with a stale scale
/// can attribute a lag up to one ratio step later on the timeline, which
/// only ever *coarsens* the plot — no lag is dropped (everything folds
/// via max) and the monotone statistics (run max, per-slot max) hold.
class LagTimeline {
 public:
  explicit LagTimeline(size_t max_slots = 1024)
      : slots_(std::max<size_t>(max_slots, 2)) {
    for (auto& slot : slots_) slot.store(-1, std::memory_order_relaxed);
  }

  /// Records `lag_us` for an operation scheduled in run-second `second`
  /// (negative seconds are ignored — unthrottled runs have no timeline).
  void Record(int64_t second, int64_t lag_us) {
    if (second < 0) return;
    int64_t scale = scale_.load(std::memory_order_acquire);
    while (second / scale >= static_cast<int64_t>(slots_.size())) {
      Rescale(second);
      scale = scale_.load(std::memory_order_acquire);
    }
    FoldMax(slots_[static_cast<size_t>(second / scale)], lag_us);
  }

  /// Seconds of run time covered by one slot (power of two).
  int64_t seconds_per_slot() const {
    return scale_.load(std::memory_order_acquire);
  }

  /// (second of run, max lag ms) rows for every slot that saw an
  /// operation; the second is the slot's lower edge at the final scale.
  std::vector<std::pair<double, double>> Snapshot() const {
    std::vector<std::pair<double, double>> out;
    int64_t scale = seconds_per_slot();
    for (size_t s = 0; s < slots_.size(); ++s) {
      int64_t lag_us = slots_[s].load(std::memory_order_relaxed);
      if (lag_us < 0) continue;
      out.emplace_back(static_cast<double>(s) * static_cast<double>(scale),
                       static_cast<double>(lag_us) / 1000.0);
    }
    return out;
  }

  size_t max_slots() const { return slots_.size(); }

 private:
  void Rescale(int64_t second) SNB_EXCLUDES(rescale_mu_) {
    util::MutexLock lock(&rescale_mu_);
    int64_t scale = scale_.load(std::memory_order_relaxed);
    int64_t needed = second / static_cast<int64_t>(slots_.size()) + 1;
    if (needed <= scale) return;  // Another thread already rescaled.
    int64_t new_scale = scale;
    while (new_scale < needed) new_scale *= 2;
    int64_t ratio = new_scale / scale;
    // Publish the new scale first: concurrent writers immediately target
    // compacted positions, and any value they land in a slot we have
    // already folded survives (we only exchange each source slot once,
    // ascending, and destinations are only ever folded via max).
    scale_.store(new_scale, std::memory_order_release);
    for (size_t i = 0; i < slots_.size(); ++i) {
      int64_t v = slots_[i].exchange(-1, std::memory_order_relaxed);
      if (v < 0) continue;
      FoldMax(slots_[i / static_cast<size_t>(ratio)], v);
    }
  }

  // slots_ and scale_ are read/written lock-free by Record(); rescale_mu_
  // only serialises concurrent Rescale() calls (the fold loop), so they
  // are deliberately not SNB_GUARDED_BY.
  std::vector<std::atomic<int64_t>> slots_;
  std::atomic<int64_t> scale_{1};
  util::Mutex rescale_mu_;
};

/// Schedule-compliance accumulator: per-op-type on-time/late counts and a
/// run-wide lateness histogram, folded into an obs::ComplianceSection.
///
/// The LDBC driver certifies a run by the fraction of operations that
/// start within a fixed window of their scheduled time; this tracker
/// reproduces that audit with one relaxed fetch_add per operation (plus a
/// CAS-max for the per-type worst case). Lateness buckets reuse the obs
/// log-bucket geometry over *microseconds*, so the histogram resolves
/// sub-millisecond jitter and still covers multi-hour stalls.
class ComplianceTracker {
 public:
  explicit ComplianceTracker(double window_ms)
      : window_us_(static_cast<int64_t>(window_ms * 1000.0)) {}

  /// Records one scheduled operation of type `op` that started `lag_us`
  /// late (0 = on time).
  void Record(obs::OpType op, int64_t lag_us) {
    size_t i = static_cast<size_t>(op);
    if (i >= obs::kNumOpTypes) return;
    Cell& cell = cells_[i];
    cell.scheduled.fetch_add(1, std::memory_order_relaxed);
    if (lag_us > window_us_) {
      cell.late.fetch_add(1, std::memory_order_relaxed);
    }
    FoldMax(cell.max_late_us, lag_us);
    buckets_[obs::LogBuckets::BucketFor(
                 static_cast<uint64_t>(std::max<int64_t>(lag_us, 0)))]
        .fetch_add(1, std::memory_order_relaxed);
  }

  double window_ms() const {
    return static_cast<double>(window_us_) / 1000.0;
  }

  /// Folds the accumulated counts into a report section; `required`
  /// is the pass bar on the on-time fraction (LDBC uses 0.95).
  obs::ComplianceSection Finish(double required) const {
    obs::ComplianceSection section;
    section.window_ms = window_ms();
    section.required_on_time_fraction = required;
    uint64_t late_total = 0;
    for (size_t i = 0; i < obs::kNumOpTypes; ++i) {
      const Cell& cell = cells_[i];
      uint64_t scheduled = cell.scheduled.load(std::memory_order_relaxed);
      if (scheduled == 0) continue;
      obs::ComplianceOpEntry entry;
      entry.op = obs::OpTypeName(static_cast<obs::OpType>(i));
      entry.scheduled = scheduled;
      entry.late = cell.late.load(std::memory_order_relaxed);
      entry.max_late_ms =
          static_cast<double>(
              std::max<int64_t>(cell.max_late_us.load(), 0)) /
          1000.0;
      section.scheduled_ops += scheduled;
      late_total += entry.late;
      section.per_op.push_back(std::move(entry));
    }
    std::sort(section.per_op.begin(), section.per_op.end(),
              [](const obs::ComplianceOpEntry& a,
                 const obs::ComplianceOpEntry& b) {
                return a.max_late_ms > b.max_late_ms;
              });
    section.on_time_ops = section.scheduled_ops - late_total;
    section.on_time_fraction =
        section.scheduled_ops == 0
            ? 1.0
            : static_cast<double>(section.on_time_ops) /
                  static_cast<double>(section.scheduled_ops);
    section.passed = section.on_time_fraction >= required;
    for (size_t b = 0; b < obs::LogBuckets::kNumBuckets; ++b) {
      uint64_t count = buckets_[b].load(std::memory_order_relaxed);
      if (count == 0) continue;
      section.lateness_histogram_ms.emplace_back(
          static_cast<double>(obs::LogBuckets::BucketLow(b)) / 1000.0,
          count);
    }
    return section;
  }

 private:
  struct Cell {
    std::atomic<uint64_t> scheduled{0};
    std::atomic<uint64_t> late{0};
    std::atomic<int64_t> max_late_us{-1};
  };

  const int64_t window_us_;
  Cell cells_[obs::kNumOpTypes] = {};
  std::atomic<uint64_t> buckets_[obs::LogBuckets::kNumBuckets] = {};
};

}  // namespace snb::driver

#endif  // SNB_DRIVER_RUN_AUDIT_H_
