// DATAGEN configuration and scale factors.
#ifndef SNB_DATAGEN_CONFIG_H_
#define SNB_DATAGEN_CONFIG_H_

#include <cstdint>

#include "util/datetime.h"

namespace snb::datagen {

/// Minimum simulated-time gap DATAGEN guarantees between an operation that
/// creates a dependency (e.g. a person joining) and any dependent operation
/// (e.g. that person's first post). The driver's Windowed Execution mode
/// relies on this "Safe Time" (paper section 4.2).
inline constexpr util::TimestampMs kTSafeMs = 1 * util::kMillisPerDay;

/// Number of persons for an LDBC scale factor. The paper's SF is GB of CSV;
/// Table 3 gives 0.18M persons at SF30, i.e. roughly 6000 persons per SF
/// unit. Fractional "mini" SFs (0.1, 0.3, 1) make laptop-scale runs of the
/// full workload possible while preserving linear entity scaling.
constexpr uint64_t PersonsForScaleFactor(double scale_factor) {
  double persons = 6000.0 * scale_factor;
  return persons < 50.0 ? 50 : static_cast<uint64_t>(persons);
}

/// All knobs of one data generation run.
struct DatagenConfig {
  /// Master seed; every random decision in the run derives from it.
  uint64_t seed = 0x5eedULL;
  /// Size of the network.
  uint64_t num_persons = 1000;
  /// Worker threads for the generation pipeline. The output is identical for
  /// any value (determinism test covers this).
  uint32_t num_threads = 4;
  /// Enables event-driven post spikes (Figure 2a "event-driven" series).
  bool event_driven_posts = true;
  /// When false, everything is emitted as bulk data and the update stream is
  /// empty (useful for read-only experiments).
  bool split_update_stream = true;

  /// Convenience: configure from a (mini) scale factor.
  static DatagenConfig ForScaleFactor(double scale_factor) {
    DatagenConfig config;
    config.num_persons = PersonsForScaleFactor(scale_factor);
    return config;
  }
};

}  // namespace snb::datagen

#endif  // SNB_DATAGEN_CONFIG_H_
