// Workload operations: the unified unit the driver schedules.
#ifndef SNB_DRIVER_OPERATION_H_
#define SNB_DRIVER_OPERATION_H_

#include <cstdint>

#include "schema/ids.h"
#include "util/datetime.h"

namespace snb::driver {

/// What kind of work an operation is.
enum class OperationType : uint8_t {
  /// Complex read-only query (query_id 1..14, Table 6).
  kComplexRead,
  /// Simple read-only query (query_id 1..7, Table 7); normally spawned by
  /// the short-read random walk rather than scheduled directly.
  kShortRead,
  /// Transactional update (update_index into the pre-generated stream).
  kUpdate,
};

/// One scheduled operation. Reads carry their (curated) parameters inline;
/// updates reference the pre-generated update stream by index.
struct Operation {
  OperationType type = OperationType::kUpdate;
  /// 1..14 for complex reads, 1..7 for short reads.
  uint8_t query_id = 0;
  /// Index into the dataset's update stream (updates only).
  uint32_t update_index = 0;
  /// datagen::UpdateKind of the referenced update (updates only; 0 when
  /// unknown). Lets the driver attribute updates to their obs::OpType
  /// without dereferencing the stream.
  uint8_t update_kind = 0;

  /// Simulation time at which the operation is scheduled (T_DUE).
  util::TimestampMs due_time = 0;
  /// Latest dependency timestamp (T_DEP); 0 when independent.
  util::TimestampMs dependency_time = 0;
  /// T_DEP restricted to person-graph dependencies (see UpdateOperation).
  util::TimestampMs person_dependency_time = 0;
  /// Forum-tree partition key, or kInvalidId for person-graph ops / reads.
  schema::ForumId forum_partition = schema::kInvalidId;
  /// True when other operations may depend on this one (tracked in IT/CT).
  bool is_dependency = false;

  // Read parameters.
  schema::PersonId person_param = schema::kInvalidId;
  schema::PersonId person_param2 = schema::kInvalidId;
  uint64_t aux0 = 0;
  uint64_t aux1 = 0;
};

}  // namespace snb::driver

#endif  // SNB_DRIVER_OPERATION_H_
