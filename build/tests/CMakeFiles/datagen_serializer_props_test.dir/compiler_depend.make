# Empty compiler generated dependencies file for datagen_serializer_props_test.
# This may be replaced when dependencies are built.
