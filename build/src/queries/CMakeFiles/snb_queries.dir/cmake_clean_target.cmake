file(REMOVE_RECURSE
  "libsnb_queries.a"
)
