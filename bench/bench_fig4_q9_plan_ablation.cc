// Figure 4 reproduction: the intended execution plan of Query 9 and the
// choke point behind it — join-type choice. The paper reports that
// replacing the index-nested-loop joins of the intended plan with hash
// joins costs ~50% in HyPer/Virtuoso. We execute Q9 under all scalar plan
// variants AND the batched (block-at-a-time) plan from
// queries/batched_queries.h, and report runtime, de-facto intermediate
// cardinalities, a per-operator wall-time profile (where inside each plan
// the time goes), and the batched-vs-scalar speedup. The batched plan's
// results are cross-checked row-for-row against the scalar engine on
// every parameter — a mismatch fails the bench.
//
// Usage:
//   bench_fig4_q9_plan_ablation [--report <path>] [--params N]
//                               [--perf-counters] [--cpu-profile <path>]
// With --report the bench also writes a self-validated report.json
// carrying the intended plan's operator profile — the smoke artifact
// checked by scripts/check.sh. Exits nonzero when the emitted report
// fails validation. With --perf-counters the per-operator rows gain
// hardware-counter columns (IPC, LLC misses per kilo instruction) from
// the perf_event group each TraceSpan scopes, so the hash-vs-INL
// penalty can be located micro-architecturally — and the report's
// q9_profile rows carry the same counters for compare_reports.py to
// gate on. Degrades to wall-clock-only where perf_event_open is denied.
// With --cpu-profile the sampling profiler runs across the ablation and
// the folded stacks land at <path> (operator labels from the same
// TraceSpans), plus a report "profile" section when --report is given.
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "curation/parameter_curation.h"
#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "obs/prof.h"
#include "obs/report.h"
#include "queries/batched_queries.h"
#include "queries/query9_plans.h"
#include "util/histogram.h"
#include "util/stopwatch.h"

namespace snb::bench {
namespace {

using queries::JoinStrategy;
using queries::Q9OperatorProfile;
using queries::Q9PlanStats;

const char* Short(JoinStrategy s) {
  return s == JoinStrategy::kIndexNestedLoop ? "INL " : "HASH";
}

struct Options {
  std::string report_path;       // Empty = no report.
  std::string cpu_profile_path;  // Empty = no sampling profiler.
  size_t num_params = 20;
  bool perf_counters = false;
};

/// One per-operator profile row: wall time, rows, and — when the
/// invocations ran with live counters — IPC and LLC miss rate.
void PrintProfileRow(const std::string& op, const obs::OperatorStats& s) {
  std::printf("    %-26s %10.3f ms %12llu rows", op.c_str(), s.TimeMs(),
              (unsigned long long)s.rows);
  if (s.hw.valid() && s.hw_invocations > 0) {
    std::printf("   ipc=%.2f llc/ki=%.2f", s.hw.Ipc(),
                s.hw.LlcMissesPerKiloInstr());
  }
  std::printf("\n");
}

int Run(const Options& options) {
  PrintHeader("Figure 4 — Query 9 intended plan & join-type ablation");
  if (options.perf_counters) EnablePerfCounters();
  if (!options.cpu_profile_path.empty()) EnableCpuProfiler();
  // Every Q9 execution below runs on this thread; the lane registration
  // gives the profiler thread attribution across the whole bench (opr:
  // labels come from the TraceSpans inside the plans themselves).
  obs::prof::ScopedThreadRegistration prof_main("bench.main");
  std::unique_ptr<BenchWorld> world = MakeWorld(kMediumSf);
  curation::PcTable table =
      curation::BuildTwoHopTable(world->dataset.stats);
  std::vector<uint64_t> params =
      curation::CurateParameters(table, options.num_params);
  util::TimestampMs max_date =
      util::kNetworkStartMs + 30 * util::kMillisPerMonth;

  struct Plan {
    JoinStrategy j1, j2, j3;
    const char* note;
  };
  // The intended plan is INL-INL-HASH (Figure 4): the last join's input is
  // too large for index lookups per tuple in the paper's systems.
  std::vector<Plan> plans = {
      {JoinStrategy::kIndexNestedLoop, JoinStrategy::kIndexNestedLoop,
       JoinStrategy::kHash, "intended plan (Fig. 4)"},
      {JoinStrategy::kIndexNestedLoop, JoinStrategy::kIndexNestedLoop,
       JoinStrategy::kIndexNestedLoop, "all-INL (creator index)"},
      {JoinStrategy::kHash, JoinStrategy::kIndexNestedLoop,
       JoinStrategy::kHash, "hash join1 (paper: ~50% penalty)"},
      {JoinStrategy::kHash, JoinStrategy::kHash, JoinStrategy::kHash,
       "all-hash"},
  };

  obs::MetricsRegistry metrics;
  std::printf("  %-16s %10s %10s %10s %10s %10s  %s\n", "plan(j1,j2,j3)",
              "mean ms", "|join1|", "|join2|", "|join3|", "build",
              "note");
  double intended_ms = 0;
  Q9OperatorProfile intended_profile;
  std::string intended_name;
  double batched_ms = 0;
  {
    // The complex.Q9 op context covers only the measured executions:
    // samples taken during MakeWorld/parameter curation above (and
    // report assembly below) stay unattributed instead of skewing the
    // profile's attributed counts and top frames.
    obs::prof::ScopedOpContext prof_q9(
        static_cast<uint16_t>(obs::ComplexOp(9)));
    for (const Plan& plan : plans) {
      util::SampleStats stats;
      Q9PlanStats agg{};
      Q9OperatorProfile profile;
      for (uint64_t p : params) {
        Q9PlanStats s;
        util::Stopwatch watch;
        queries::Query9WithPlan(world->store, p, max_date, 20, plan.j1,
                                plan.j2, plan.j3, &s, &profile);
        double micros = watch.ElapsedMicros();
        stats.Add(micros / 1000.0);
        metrics.RecordLatencyMicros(obs::ComplexOp(9), micros);
        agg.join1_output += s.join1_output;
        agg.join2_output += s.join2_output;
        agg.join3_output += s.join3_output;
        agg.build_tuples += s.build_tuples;
      }
      char name[32];
      std::snprintf(name, sizeof(name), "%s-%s-%s", Short(plan.j1),
                    Short(plan.j2), Short(plan.j3));
      std::printf("  %-16s %10.3f %10llu %10llu %10llu %10llu  %s\n", name,
                  stats.Mean(),
                  (unsigned long long)(agg.join1_output / params.size()),
                  (unsigned long long)(agg.join2_output / params.size()),
                  (unsigned long long)(agg.join3_output / params.size()),
                  (unsigned long long)(agg.build_tuples / params.size()),
                  plan.note);
      for (const auto& [op, op_stats] : queries::ProfileRows(profile)) {
        PrintProfileRow(op, op_stats);
      }
      if (plan.note[0] == 'i') {
        intended_ms = stats.Mean();
        intended_profile = profile;
        intended_name = name;
      }
    }
    // The batched (block-at-a-time) plan: same circle, columnar message
    // scan with per-person top-`limit` truncation, bounded top-k heap.
    // Cross-checked against the scalar engine on every parameter.
    {
      util::SampleStats stats;
      Q9PlanStats agg{};
      Q9OperatorProfile profile;
      for (uint64_t p : params) {
        Q9PlanStats s;
        util::Stopwatch watch;
        std::vector<queries::Q9Result> rows =
            queries::Query9Batched(world->store, p, max_date, 20, &s, &profile);
        double micros = watch.ElapsedMicros();
        stats.Add(micros / 1000.0);
        metrics.RecordLatencyMicros(obs::ComplexOp(9), micros);
        agg.join1_output += s.join1_output;
        agg.join2_output += s.join2_output;
        agg.join3_output += s.join3_output;
        std::vector<queries::Q9Result> expect =
            queries::Query9Scalar(world->store, p, max_date, 20);
        bool same = rows.size() == expect.size();
        for (size_t i = 0; same && i < rows.size(); ++i) {
          same = rows[i].message_id == expect[i].message_id &&
                 rows[i].creator_id == expect[i].creator_id &&
                 rows[i].creation_date == expect[i].creation_date;
        }
        if (!same) {
          std::fprintf(stderr,
                       "batched/scalar Q9 divergence at person %llu\n",
                       (unsigned long long)p);
          return 1;
        }
      }
      batched_ms = stats.Mean();
      std::printf("  %-16s %10.3f %10llu %10llu %10llu %10s  %s\n", "batched",
                  batched_ms,
                  (unsigned long long)(agg.join1_output / params.size()),
                  (unsigned long long)(agg.join2_output / params.size()),
                  (unsigned long long)(agg.join3_output / params.size()), "-",
                  "block-at-a-time (src/exec)");
      for (const auto& [op, op_stats] : queries::ProfileRows(profile)) {
        PrintProfileRow(op, op_stats);
      }
    }
  }

  std::printf(
      "\n  Cardinality profile of the intended plan (paper: 120 friends ->\n"
      "  ~thousands of fof -> millions of messages): |join1| << |join2| <<\n"
      "  messages scanned; picking hash for join1/join2 pays a full\n"
      "  Friends-table build for a ~120-tuple input. The operator rows\n"
      "  show the penalty's location: hash plans sink their time into\n"
      "  hash_build, INL plans into the joins themselves. The batched\n"
      "  plan's |join3| is smaller by construction: the columnar scan\n"
      "  truncates each person to the newest `limit` rows, which the\n"
      "  top-k bound makes exact.\n");
  std::printf("  intended-plan mean: %.3f ms\n", intended_ms);
  std::printf("  batched-plan mean:  %.3f ms\n", batched_ms);
  std::printf("  batched vs intended scalar plan speedup: %.2fx\n\n",
              batched_ms > 0 ? intended_ms / batched_ms : 0.0);

  obs::RunReport report;
  report.title = "fig4 q9 plan ablation (" + std::to_string(params.size()) +
                 " curated params/plan)";
  StampExecMode(&report);
  StampProvenance(&report);
  if (!options.cpu_profile_path.empty()) {
    StampProfile(&report, options.cpu_profile_path);
  }
  if (options.report_path.empty()) return 0;

  report.metrics = metrics.Snapshot();
  report.has_q9_profile = true;
  report.q9_profile = queries::MakeQ9ProfileSection(
      intended_profile, intended_name + " (intended)");
  std::string json = obs::ToJson(report);
  util::Status valid = obs::ValidateReportJson(json);
  if (!valid.ok()) {
    std::fprintf(stderr, "report self-validation failed: %s\n",
                 valid.ToString().c_str());
    return 1;
  }
  util::Status wrote = obs::WriteFileReport(options.report_path, json);
  if (!wrote.ok()) {
    std::fprintf(stderr, "%s\n", wrote.ToString().c_str());
    return 1;
  }
  std::printf("  wrote validated %s\n\n", options.report_path.c_str());
  return 0;
}

}  // namespace
}  // namespace snb::bench

int main(int argc, char** argv) {
  snb::bench::Options options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--report") == 0 && i + 1 < argc) {
      options.report_path = argv[++i];
    } else if (std::strcmp(argv[i], "--params") == 0 && i + 1 < argc) {
      options.num_params = static_cast<size_t>(std::atoi(argv[++i]));
      if (options.num_params == 0) options.num_params = 1;
    } else if (std::strcmp(argv[i], "--perf-counters") == 0) {
      options.perf_counters = true;
    } else if (std::strcmp(argv[i], "--cpu-profile") == 0 && i + 1 < argc) {
      options.cpu_profile_path = argv[++i];
    } else if (std::strncmp(argv[i], "--cpu-profile=", 14) == 0) {
      options.cpu_profile_path = argv[i] + 14;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--report <path>] [--params N] "
                   "[--perf-counters] [--cpu-profile <path>]\n",
                   argv[0]);
      return 1;
    }
  }
  return snb::bench::Run(options);
}
