# Empty compiler generated dependencies file for snb_queries.
# This may be replaced when dependencies are built.
