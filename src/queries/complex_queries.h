// The 14 complex read-only queries of SNB-Interactive (paper appendix).
//
// Each function implements one query template against the GraphStore via
// handwritten intended plans (the same style as the LDBC API reference
// implementations for Neo4j/Sparksee). Every query takes its own read
// snapshot and is safe to run concurrently with updates.
//
// Q5, Q9 and Q14 — the heaviest templates — additionally have batched
// (block-at-a-time) plans; the entry points here dispatch on the
// process-wide exec::DefaultExecMode(), and queries/batched_queries.h
// exposes engine-explicit variants for tests, fuzzing and ablation.
#ifndef SNB_QUERIES_COMPLEX_QUERIES_H_
#define SNB_QUERIES_COMPLEX_QUERIES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "schema/ids.h"
#include "store/graph_store.h"
#include "util/datetime.h"

namespace snb::queries {

using store::GraphStore;
using util::TimestampMs;

// ---- Q1: friends with a given name ------------------------------------------

struct Q1Result {
  schema::PersonId person_id = schema::kInvalidId;
  uint32_t distance = 0;  // 1..3 hops from the start person.
  std::string last_name;
  schema::PlaceId city_id = schema::kInvalidId32;
  schema::OrganizationId university_id = schema::kInvalidId32;
  schema::OrganizationId company_id = schema::kInvalidId32;
};

/// Up to 20 persons named `first_name` within 3 Knows-hops of `start`,
/// sorted by (distance, last_name, id).
std::vector<Q1Result> Query1(const GraphStore& store, schema::PersonId start,
                             const std::string& first_name, int limit = 20);

// ---- Q2: recent messages of friends -------------------------------------------

struct Q2Result {
  schema::MessageId message_id = schema::kInvalidId;
  schema::PersonId creator_id = schema::kInvalidId;
  TimestampMs creation_date = 0;
};

/// Top-`limit` most recent messages by direct friends created at or before
/// `max_date`; sorted by (date desc, message id asc).
std::vector<Q2Result> Query2(const GraphStore& store, schema::PersonId start,
                             TimestampMs max_date, int limit = 20);

// ---- Q3: friends who travelled to countries X and Y ----------------------------

struct Q3Result {
  schema::PersonId person_id = schema::kInvalidId;
  uint32_t count_x = 0;
  uint32_t count_y = 0;
};

/// Friends and friends-of-friends who posted from both foreign countries
/// `country_x` and `country_y` within [start_date, start_date + days);
/// sorted by total count desc. "Foreign" excludes persons living in X or Y;
/// `city_country` maps PlaceId(city) -> PlaceId(country) (from
/// schema::Dictionaries, which the store intentionally does not know).
std::vector<Q3Result> Query3(const GraphStore& store, schema::PersonId start,
                             const std::vector<schema::PlaceId>& city_country,
                             schema::PlaceId country_x,
                             schema::PlaceId country_y,
                             TimestampMs start_date, int duration_days,
                             int limit = 20);

// ---- Q4: new topics -------------------------------------------------------------

struct Q4Result {
  schema::TagId tag = 0;
  uint32_t post_count = 0;
};

/// Tags attached to posts created by friends within the interval, excluding
/// tags those friends already used strictly before it; top 10 by count.
std::vector<Q4Result> Query4(const GraphStore& store, schema::PersonId start,
                             TimestampMs start_date, int duration_days,
                             int limit = 10);

// ---- Q5: new groups --------------------------------------------------------------

struct Q5Result {
  schema::ForumId forum_id = schema::kInvalidId;
  uint32_t post_count = 0;
};

/// Forums that friends or friends-of-friends joined after `min_date`, ranked
/// by the number of posts any of them created in the forum; top 20.
std::vector<Q5Result> Query5(const GraphStore& store, schema::PersonId start,
                             TimestampMs min_date, int limit = 20);

// ---- Q6: tag co-occurrence ----------------------------------------------------------

struct Q6Result {
  schema::TagId tag = 0;
  uint32_t post_count = 0;
};

/// Tags co-occurring with `tag` on posts created by friends or
/// friends-of-friends; top 10 by count.
std::vector<Q6Result> Query6(const GraphStore& store, schema::PersonId start,
                             schema::TagId tag, int limit = 10);

// ---- Q7: recent likes -----------------------------------------------------------------

struct Q7Result {
  schema::PersonId liker_id = schema::kInvalidId;
  schema::MessageId message_id = schema::kInvalidId;
  TimestampMs like_date = 0;
  /// Minutes between message creation and the like.
  int64_t latency_minutes = 0;
  /// True when the liker is not a direct friend of the start person.
  bool is_outside_friendship = false;
};

/// Most recent likes on any of the start person's messages; top 20 by
/// (like date desc, liker id asc).
std::vector<Q7Result> Query7(const GraphStore& store, schema::PersonId start,
                             int limit = 20);

// ---- Q8: most recent replies ------------------------------------------------------------

struct Q8Result {
  schema::MessageId comment_id = schema::kInvalidId;
  schema::PersonId replier_id = schema::kInvalidId;
  TimestampMs creation_date = 0;
};

/// The 20 most recent reply comments to any message of the start person;
/// (date desc, comment id asc).
std::vector<Q8Result> Query8(const GraphStore& store, schema::PersonId start,
                             int limit = 20);

// ---- Q9: latest messages of 2-hop circle ---------------------------------------------------

struct Q9Result {
  schema::MessageId message_id = schema::kInvalidId;
  schema::PersonId creator_id = schema::kInvalidId;
  TimestampMs creation_date = 0;
};

/// Most recent messages created before `max_date` by friends or
/// friends-of-friends; top 20 by (date desc, id asc).
std::vector<Q9Result> Query9(const GraphStore& store, schema::PersonId start,
                             TimestampMs max_date, int limit = 20);

// ---- Q10: friend recommendation ---------------------------------------------------------------

struct Q10Result {
  schema::PersonId person_id = schema::kInvalidId;
  int32_t similarity = 0;  // Common-interest posts minus others.
};

/// Friends-of-friends (not direct friends) born around the given horoscope
/// month (birthday in [month.21, month+1.22)), ranked by the difference
/// between their posts about the start person's interests and their other
/// posts; top 10.
std::vector<Q10Result> Query10(const GraphStore& store,
                               schema::PersonId start, int horoscope_month,
                               int limit = 10);

// ---- Q11: job referral ---------------------------------------------------------------------------

struct Q11Result {
  schema::PersonId person_id = schema::kInvalidId;
  schema::OrganizationId company_id = schema::kInvalidId32;
  uint16_t work_year = 0;
};

/// Friends or friends-of-friends (excluding start) who work at a company in
/// `country` since before `max_work_year`; sorted by (work year asc, person
/// id asc); top 10. `company_country` maps OrganizationId -> country.
std::vector<Q11Result> Query11(
    const GraphStore& store, schema::PersonId start,
    const std::vector<schema::PlaceId>& company_country,
    schema::PlaceId country, uint16_t max_work_year, int limit = 10);

// ---- Q12: expert search ----------------------------------------------------------------------------

struct Q12Result {
  schema::PersonId person_id = schema::kInvalidId;
  uint32_t reply_count = 0;
};

/// Friends ranked by the number of their comments that reply to posts
/// tagged with a tag of `tag_class` (tag-class membership is supplied via
/// `tag_in_class`, a predicate over TagId); top 20.
std::vector<Q12Result> Query12(
    const GraphStore& store, schema::PersonId start,
    const std::vector<bool>& tag_in_class, int limit = 20);

// ---- Q13: single shortest path -----------------------------------------------------------------------

/// Length of the shortest Knows-path between two persons; -1 when
/// unreachable, 0 when identical.
int Query13(const GraphStore& store, schema::PersonId person1,
            schema::PersonId person2);

// ---- Q14: weighted shortest paths ----------------------------------------------------------------------

struct Q14Result {
  std::vector<schema::PersonId> path;  // person1 .. person2.
  double weight = 0.0;
};

/// All shortest (by hop count) Knows-paths between two persons, each scored
/// by the message interaction weight of consecutive pairs: every comment
/// replying to the other's post adds 1.0, to the other's comment adds 0.5.
/// Sorted by weight descending.
std::vector<Q14Result> Query14(const GraphStore& store,
                               schema::PersonId person1,
                               schema::PersonId person2);

// ---- Shared helpers (exposed for tests and the plan-ablation bench) ------------

/// Direct friends of `start` (sorted by id).
std::vector<schema::PersonId> FriendIds(const GraphStore& store,
                                        schema::PersonId start);

/// Friends plus friends-of-friends, excluding `start` itself (sorted).
std::vector<schema::PersonId> TwoHopCircle(const GraphStore& store,
                                           schema::PersonId start);

}  // namespace snb::queries

#endif  // SNB_QUERIES_COMPLEX_QUERIES_H_
