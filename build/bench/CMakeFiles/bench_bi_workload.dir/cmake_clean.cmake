file(REMOVE_RECURSE
  "CMakeFiles/bench_bi_workload.dir/bench_bi_workload.cc.o"
  "CMakeFiles/bench_bi_workload.dir/bench_bi_workload.cc.o.d"
  "bench_bi_workload"
  "bench_bi_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bi_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
