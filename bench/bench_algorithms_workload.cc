// SNB-Algorithms workload preview (paper section 1): PageRank, BFS,
// Community Detection, Clustering and Connected Components on the same
// generated dataset used by SNB-Interactive, plus the structure validation
// the generator claims (correlated graph vs degree-matched random graph).
#include <cstdio>
#include <map>

#include "algorithms/graph_algorithms.h"
#include "bench/bench_util.h"
#include "util/stopwatch.h"

namespace snb::bench {
namespace {

using algorithms::CsrGraph;

void RunAt(double sf) {
  datagen::DatagenConfig config =
      datagen::DatagenConfig::ForScaleFactor(sf);
  config.split_update_stream = false;
  datagen::Dataset ds = datagen::Generate(config);
  CsrGraph graph =
      CsrGraph::FromKnows(config.num_persons, ds.bulk.knows);
  std::printf("\n  mini SF %.2f: %u vertices, %llu edges\n", sf,
              graph.num_vertices(), (unsigned long long)graph.num_edges());

  util::Stopwatch watch;
  std::vector<double> pr = algorithms::PageRank(graph);
  double pr_ms = watch.ElapsedMicros() / 1000.0;

  watch.Reset();
  uint64_t reached = 0;
  algorithms::BreadthFirstSearch(graph, 0, &reached);
  double bfs_ms = watch.ElapsedMicros() / 1000.0;

  watch.Reset();
  uint64_t components = 0;
  algorithms::ConnectedComponents(graph, &components);
  double cc_ms = watch.ElapsedMicros() / 1000.0;

  watch.Reset();
  std::vector<uint32_t> communities = algorithms::Louvain(graph);
  double louvain_ms = watch.ElapsedMicros() / 1000.0;
  double q = algorithms::Modularity(graph, communities);
  std::map<uint32_t, int> sizes;
  for (uint32_t c : communities) ++sizes[c];

  watch.Reset();
  double clustering = algorithms::AverageClusteringCoefficient(graph);
  double clus_ms = watch.ElapsedMicros() / 1000.0;
  uint64_t triangles = algorithms::CountTriangles(graph);

  std::printf("  %-28s %10s %s\n", "algorithm", "ms", "result");
  std::printf("  %-28s %10.2f top-degree vertex rank corr.\n", "PageRank(30 iter)",
              pr_ms);
  std::printf("  %-28s %10.2f reached %llu\n", "BFS (from person 0)",
              bfs_ms, (unsigned long long)reached);
  std::printf("  %-28s %10.2f %llu components\n", "ConnectedComponents",
              cc_ms, (unsigned long long)components);
  std::printf("  %-28s %10.2f %zu communities, modularity %.3f\n",
              "Community detection (Louvain)", louvain_ms, sizes.size(), q);
  std::printf("  %-28s %10.2f avg CC %.3f, %llu triangles\n",
              "Clustering coefficient", clus_ms, clustering,
              (unsigned long long)triangles);
  (void)pr;

  // Structure validation: correlated vs degree-matched random graph.
  util::Rng rng(13, 1, util::RandomPurpose::kFriendPick);
  CsrGraph random = graph.DegreeMatchedRandom(rng);
  double random_cc = algorithms::AverageClusteringCoefficient(random);
  double random_q =
      algorithms::Modularity(random, algorithms::Louvain(random));
  std::printf("  structure vs degree-matched random rewiring:\n");
  std::printf("    clustering  %.3f vs %.3f (%.1fx)\n", clustering,
              random_cc, random_cc > 0 ? clustering / random_cc : 0.0);
  std::printf("    modularity  %.3f vs %.3f\n", q, random_q);
}

void Run() {
  PrintHeader("SNB-Algorithms workload (paper sec. 1) + structure validation");
  RunAt(kSmallSf);
  RunAt(kLargeSf);
  std::printf(
      "\n  Shape to check: one giant component; clustering coefficient and\n"
      "  modularity well above the degree-matched random graph — the\n"
      "  community-like structure the correlated generator claims [13].\n\n");
}

}  // namespace
}  // namespace snb::bench

int main() {
  snb::bench::Run();
  return 0;
}
