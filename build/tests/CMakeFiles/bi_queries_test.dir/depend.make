# Empty dependencies file for bi_queries_test.
# This may be replaced when dependencies are built.
