// Negative-compilation case (ctest WILL_FAIL): a snapshot read without an
// EpochPin must not compile. FindPerson's only overload takes the pin as
// its first parameter — there is no unpinned entry point to regress to.
#include "store/graph_store.h"

const snb::store::PersonRecord* Lookup(const snb::store::GraphStore& store,
                                       snb::schema::PersonId id) {
  return store.FindPerson(id);  // error: no matching member function
}
