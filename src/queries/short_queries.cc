#include "queries/short_queries.h"

#include <algorithm>

namespace snb::queries {

using store::DatedEdge;
using store::FriendEdge;
using store::MessageRecord;
using store::PersonRecord;

S1Result ShortQuery1PersonProfile(const GraphStore& store,
                                  schema::PersonId person) {
  auto pin = store.ReadLock();
  S1Result r;
  const PersonRecord* p = store.FindPerson(pin, person);
  if (p == nullptr) return r;
  r.found = true;
  r.first_name = p->data.first_name;
  r.last_name = p->data.last_name;
  r.birthday = p->data.birthday;
  r.city_id = p->data.city_id;
  r.browser = p->data.browser;
  r.location_ip = p->data.location_ip;
  r.gender = p->data.gender;
  r.creation_date = p->data.creation_date;
  return r;
}

std::vector<S2Result> ShortQuery2RecentMessages(const GraphStore& store,
                                                schema::PersonId person,
                                                int limit) {
  auto pin = store.ReadLock();
  std::vector<S2Result> results;
  const PersonRecord* p = store.FindPerson(pin, person);
  if (p == nullptr) return results;
  auto messages = p->messages.view();
  size_t n = messages.size();
  size_t take = std::min<size_t>(n, static_cast<size_t>(limit));
  for (size_t i = 0; i < take; ++i) {
    const DatedEdge& edge = messages[n - 1 - i];  // Newest first.
    const MessageRecord* m = store.FindMessage(pin, edge.id);
    if (m == nullptr) continue;
    S2Result r;
    r.message_id = edge.id;
    r.creation_date = edge.date;
    r.root_post_id = m->data.root_post_id;
    const MessageRecord* root = store.FindMessage(pin, m->data.root_post_id);
    r.root_author_id =
        root == nullptr ? schema::kInvalidId : root->data.creator_id;
    results.push_back(std::move(r));
  }
  return results;
}

std::vector<S3Result> ShortQuery3Friends(const GraphStore& store,
                                         schema::PersonId person) {
  auto pin = store.ReadLock();
  std::vector<S3Result> results;
  const PersonRecord* p = store.FindPerson(pin, person);
  if (p == nullptr) return results;
  auto friends = p->friends.view();
  results.reserve(friends.size());
  for (const FriendEdge& e : friends) {
    results.push_back({e.other, e.since});
  }
  std::sort(results.begin(), results.end(),
            [](const S3Result& a, const S3Result& b) {
              if (a.since != b.since) return a.since > b.since;
              return a.friend_id < b.friend_id;
            });
  return results;
}

S4Result ShortQuery4MessageContent(const GraphStore& store,
                                   schema::MessageId message) {
  auto pin = store.ReadLock();
  S4Result r;
  const MessageRecord* m = store.FindMessage(pin, message);
  if (m == nullptr) return r;
  r.found = true;
  r.creation_date = m->data.creation_date;
  r.content = m->data.content;
  return r;
}

S5Result ShortQuery5MessageCreator(const GraphStore& store,
                                   schema::MessageId message) {
  auto pin = store.ReadLock();
  S5Result r;
  const MessageRecord* m = store.FindMessage(pin, message);
  if (m == nullptr) return r;
  const PersonRecord* p = store.FindPerson(pin, m->data.creator_id);
  if (p == nullptr) return r;
  r.found = true;
  r.creator_id = m->data.creator_id;
  r.first_name = p->data.first_name;
  r.last_name = p->data.last_name;
  return r;
}

S6Result ShortQuery6MessageForum(const GraphStore& store,
                                 schema::MessageId message) {
  auto pin = store.ReadLock();
  S6Result r;
  const MessageRecord* m = store.FindMessage(pin, message);
  if (m == nullptr) return r;
  const MessageRecord* root = store.FindMessage(pin, m->data.root_post_id);
  if (root == nullptr) return r;
  const store::ForumRecord* forum = store.FindForum(pin, root->data.forum_id);
  if (forum == nullptr) return r;
  r.found = true;
  r.forum_id = root->data.forum_id;
  r.forum_title = forum->data.title;
  r.moderator_id = forum->data.moderator_id;
  return r;
}

std::vector<S7Result> ShortQuery7MessageReplies(const GraphStore& store,
                                                schema::MessageId message) {
  auto pin = store.ReadLock();
  std::vector<S7Result> results;
  const MessageRecord* m = store.FindMessage(pin, message);
  if (m == nullptr) return results;
  schema::PersonId author = m->data.creator_id;
  auto replies = m->replies.view();
  results.reserve(replies.size());
  for (schema::MessageId rid : replies) {
    const MessageRecord* reply = store.FindMessage(pin, rid);
    if (reply == nullptr) continue;
    S7Result r;
    r.comment_id = rid;
    r.replier_id = reply->data.creator_id;
    r.creation_date = reply->data.creation_date;
    r.replier_knows_author = store.AreFriends(pin, author, reply->data.creator_id);
    results.push_back(r);
  }
  std::sort(results.begin(), results.end(),
            [](const S7Result& a, const S7Result& b) {
              if (a.creation_date != b.creation_date) {
                return a.creation_date > b.creation_date;
              }
              return a.comment_id < b.comment_id;
            });
  return results;
}

}  // namespace snb::queries
