# Empty compiler generated dependencies file for benchmark_run.
# This may be replaced when dependencies are built.
