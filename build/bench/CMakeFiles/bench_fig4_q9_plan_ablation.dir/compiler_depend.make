# Empty compiler generated dependencies file for bench_fig4_q9_plan_ablation.
# This may be replaced when dependencies are built.
