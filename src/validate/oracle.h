// Naive reference oracle for the 21 SNB-Interactive read queries.
//
// Third, independent implementation used by the differential fuzzer: every
// query is evaluated by brute-force scans over the plain schema structs
// (O(V*E) style — no adjacency lists, no sorted indexes, no binary
// searches), so a bug in the store's or the relational engine's physical
// plan cannot be replicated here by construction. Semantics (filters,
// windows, tie-breaks, truncation points) intentionally mirror
// snb::queries — see each query's comment there for the contract.
//
// The oracle reads a SocialNetwork snapshot; it knows nothing about
// concurrency. Dictionaries-derived inputs (city -> country, company ->
// country, tag-class membership) are passed in, exactly like the
// corresponding snb::queries signatures.
#ifndef SNB_VALIDATE_ORACLE_H_
#define SNB_VALIDATE_ORACLE_H_

#include <string>
#include <vector>

#include "queries/complex_queries.h"
#include "queries/short_queries.h"
#include "schema/entities.h"

namespace snb::validate {

/// Brute-force evaluator over one immutable SocialNetwork snapshot.
class Oracle {
 public:
  /// Keeps a reference; `network` must outlive the oracle.
  explicit Oracle(const schema::SocialNetwork& network) : net_(network) {}

  std::vector<queries::Q1Result> Query1(schema::PersonId start,
                                        const std::string& first_name,
                                        int limit = 20) const;
  std::vector<queries::Q2Result> Query2(schema::PersonId start,
                                        util::TimestampMs max_date,
                                        int limit = 20) const;
  std::vector<queries::Q3Result> Query3(
      schema::PersonId start, const std::vector<schema::PlaceId>& city_country,
      schema::PlaceId country_x, schema::PlaceId country_y,
      util::TimestampMs start_date, int duration_days, int limit = 20) const;
  std::vector<queries::Q4Result> Query4(schema::PersonId start,
                                        util::TimestampMs start_date,
                                        int duration_days,
                                        int limit = 10) const;
  std::vector<queries::Q5Result> Query5(schema::PersonId start,
                                        util::TimestampMs min_date,
                                        int limit = 20) const;
  std::vector<queries::Q6Result> Query6(schema::PersonId start,
                                        schema::TagId tag,
                                        int limit = 10) const;
  std::vector<queries::Q7Result> Query7(schema::PersonId start,
                                        int limit = 20) const;
  std::vector<queries::Q8Result> Query8(schema::PersonId start,
                                        int limit = 20) const;
  std::vector<queries::Q9Result> Query9(schema::PersonId start,
                                        util::TimestampMs max_date,
                                        int limit = 20) const;
  std::vector<queries::Q10Result> Query10(schema::PersonId start,
                                          int horoscope_month,
                                          int limit = 10) const;
  std::vector<queries::Q11Result> Query11(
      schema::PersonId start,
      const std::vector<schema::PlaceId>& company_country,
      schema::PlaceId country, uint16_t max_work_year, int limit = 10) const;
  std::vector<queries::Q12Result> Query12(
      schema::PersonId start, const std::vector<bool>& tag_in_class,
      int limit = 20) const;
  int Query13(schema::PersonId person1, schema::PersonId person2) const;
  std::vector<queries::Q14Result> Query14(schema::PersonId person1,
                                          schema::PersonId person2) const;

  queries::S1Result ShortQuery1PersonProfile(schema::PersonId person) const;
  std::vector<queries::S2Result> ShortQuery2RecentMessages(
      schema::PersonId person, int limit = 10) const;
  std::vector<queries::S3Result> ShortQuery3Friends(
      schema::PersonId person) const;
  queries::S4Result ShortQuery4MessageContent(schema::MessageId message) const;
  queries::S5Result ShortQuery5MessageCreator(schema::MessageId message) const;
  queries::S6Result ShortQuery6MessageForum(schema::MessageId message) const;
  std::vector<queries::S7Result> ShortQuery7MessageReplies(
      schema::MessageId message) const;

  // Exposed scan helpers (shared by the queries above and by tests).

  /// nullptr when absent; O(|persons|).
  const schema::Person* FindPerson(schema::PersonId id) const;
  const schema::Message* FindMessage(schema::MessageId id) const;
  const schema::Forum* FindForum(schema::ForumId id) const;
  /// Direct friend ids, sorted ascending; O(|knows|).
  std::vector<schema::PersonId> FriendIds(schema::PersonId person) const;
  /// Friends plus friends-of-friends, excluding `person`, sorted.
  std::vector<schema::PersonId> TwoHopCircle(schema::PersonId person) const;
  bool AreFriends(schema::PersonId a, schema::PersonId b) const;
  /// Messages created by `person`, sorted by (creation date, id).
  std::vector<const schema::Message*> MessagesOf(
      schema::PersonId person) const;

 private:
  const schema::SocialNetwork& net_;
};

}  // namespace snb::validate

#endif  // SNB_VALIDATE_ORACLE_H_
