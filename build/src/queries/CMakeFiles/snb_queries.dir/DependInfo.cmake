
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/queries/bi_queries.cc" "src/queries/CMakeFiles/snb_queries.dir/bi_queries.cc.o" "gcc" "src/queries/CMakeFiles/snb_queries.dir/bi_queries.cc.o.d"
  "/root/repo/src/queries/complex_queries.cc" "src/queries/CMakeFiles/snb_queries.dir/complex_queries.cc.o" "gcc" "src/queries/CMakeFiles/snb_queries.dir/complex_queries.cc.o.d"
  "/root/repo/src/queries/query9_plans.cc" "src/queries/CMakeFiles/snb_queries.dir/query9_plans.cc.o" "gcc" "src/queries/CMakeFiles/snb_queries.dir/query9_plans.cc.o.d"
  "/root/repo/src/queries/recycler.cc" "src/queries/CMakeFiles/snb_queries.dir/recycler.cc.o" "gcc" "src/queries/CMakeFiles/snb_queries.dir/recycler.cc.o.d"
  "/root/repo/src/queries/short_queries.cc" "src/queries/CMakeFiles/snb_queries.dir/short_queries.cc.o" "gcc" "src/queries/CMakeFiles/snb_queries.dir/short_queries.cc.o.d"
  "/root/repo/src/queries/update_queries.cc" "src/queries/CMakeFiles/snb_queries.dir/update_queries.cc.o" "gcc" "src/queries/CMakeFiles/snb_queries.dir/update_queries.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/store/CMakeFiles/snb_store.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/snb_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/schema/CMakeFiles/snb_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/snb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
