// Clang thread-safety-analysis attribute macros (the `snb::check` layer).
//
// PRs 1-3 moved the store's read path onto a hand-rolled epoch/RCU
// protocol and the observability layer onto lock-free registries; the
// correctness of both now rests on locking discipline that runtime TSan
// can only spot-check on the interleavings the stress tests happen to
// hit. These macros move that discipline into the type system: every
// mutex-protected member is declared `SNB_GUARDED_BY(mu_)`, every
// "caller must hold the lock" internal is declared `SNB_REQUIRES(mu_)`,
// and a Clang build (`-Wthread-safety -Werror=thread-safety`, turned on
// automatically by the top-level CMakeLists) rejects any access that
// cannot prove it holds the right capability. GCC builds compile the
// annotations away.
//
// The annotated lock types (`snb::util::Mutex`, `snb::util::SharedMutex`
// and their RAII scopes) live in util/mutex.h; raw `std::mutex` is banned
// outside that header by scripts/lint.sh. The capability inventory — which
// mutex protects what, and in which order locks nest — is DESIGN.md's
// "Lock table"; lint.sh cross-checks that every declared capability is
// documented there.
#ifndef SNB_UTIL_THREAD_ANNOTATIONS_H_
#define SNB_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && !defined(SNB_NO_THREAD_SAFETY_ANALYSIS_MACROS)
#define SNB_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SNB_THREAD_ANNOTATION(x)  // no-op
#endif

/// Declares a type as a capability (a lock). The string names the
/// capability in diagnostics: "reading variable 'x' requires holding
/// mutex 'mu_'".
#define SNB_CAPABILITY(x) SNB_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type whose constructor acquires and destructor
/// releases a capability.
#define SNB_SCOPED_CAPABILITY SNB_THREAD_ANNOTATION(scoped_lockable)

/// Data members: accessible only while holding the named capability
/// (exclusively for writes, at least shared for reads).
#define SNB_GUARDED_BY(x) SNB_THREAD_ANNOTATION(guarded_by(x))

/// Pointer members: the *pointee* is protected by the capability (the
/// pointer itself is not).
#define SNB_PT_GUARDED_BY(x) SNB_THREAD_ANNOTATION(pt_guarded_by(x))

/// Functions: caller must hold the capability exclusively / shared.
#define SNB_REQUIRES(...) \
  SNB_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define SNB_REQUIRES_SHARED(...) \
  SNB_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Functions: acquire / release the capability (exclusive or shared).
#define SNB_ACQUIRE(...) \
  SNB_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SNB_ACQUIRE_SHARED(...) \
  SNB_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define SNB_RELEASE(...) \
  SNB_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define SNB_RELEASE_SHARED(...) \
  SNB_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define SNB_RELEASE_GENERIC(...) \
  SNB_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))

/// Try-lock functions; `b` is the success return value.
#define SNB_TRY_ACQUIRE(...) \
  SNB_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define SNB_TRY_ACQUIRE_SHARED(...) \
  SNB_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (deadlock prevention; catches
/// re-entrant acquisition of non-recursive mutexes).
#define SNB_EXCLUDES(...) SNB_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Lock-ordering edge: this capability must be acquired after `x`.
#define SNB_ACQUIRED_AFTER(...) \
  SNB_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define SNB_ACQUIRED_BEFORE(...) \
  SNB_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

/// Returns a reference to the capability protecting the returned data
/// (lets `SNB_GUARDED_BY(other.mu())` style declarations resolve).
#define SNB_RETURN_CAPABILITY(x) SNB_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for code whose safety argument the analysis cannot see
/// (registration-phase-only writes, membarrier-based asymmetric fences).
/// Every use must carry a comment with the manual proof.
#define SNB_NO_THREAD_SAFETY_ANALYSIS \
  SNB_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // SNB_UTIL_THREAD_ANNOTATIONS_H_
