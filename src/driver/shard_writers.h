// ShardWriterPool: per-shard asynchronous update application.
//
// The sharded GraphStore (store/graph_store.h) decomposes every update
// into per-shard halves, each atomic under its owning shard's writer
// mutex. This pool gives each shard a dedicated writer thread and an SPSC
// ring (util/spsc_queue.h): a single producer calls Submit(op), which
// splits the operation into its halves and routes each to the owning
// shard's queue; that shard's thread is the only consumer and the only
// writer of the shard's structures, so shard mutexes stay uncontended and
// update throughput scales with shards instead of serializing behind one
// lock (bench_table9_updates measures exactly this).
//
// Ordering contract (why readers never see a torn cross-shard edge):
//   * Within one lane (shard queue) halves apply in submission order —
//     a single producer pushing to an SPSC ring is FIFO.
//   * A half whose correctness depends on a record owned by *another*
//     shard (the cross-shard endpoint of a friendship or like, a
//     message's record before its creator/container links) spin-waits on
//     that record's publication via the store's lock-free presence
//     probes before applying. Presence is monotone, so the wait is
//     race-free.
//   * Those waits cannot deadlock: a half only waits on creates from
//     strictly earlier stream operations (dependency times precede due
//     times — datagen's split guarantees it) or on its own operation's
//     create half, and every lane is FIFO from one producer. Any wait
//     cycle would therefore need an operation to wait on its own create
//     through a chain of same-position queue entries, which the
//     create-before-link submission order forbids. An unsatisfiable wait
//     (invalid stream) times out and poisons the pool instead of
//     hanging.
//
// Because each adjacency list is appended by exactly one lane in
// submission order and the sorted lists are order-insensitive by
// construction, the final store state is byte-identical to applying the
// same stream serially through GraphStore::Add*.
//
// The pool also publishes the cross-shard creation watermark dependency
// services consume: CompletedThrough() is the T_GC analogue "every update
// with due_time <= t has fully applied on every shard it touches", and
// the pool implements DependencyWatermark so it can be composed into a
// GlobalDependencyService tree. Dependency-aware callers (the sequential
// replay connector path) call WaitCompletedThrough(dependency_time)
// before executing an operation that reads its dependencies.
#ifndef SNB_DRIVER_SHARD_WRITERS_H_
#define SNB_DRIVER_SHARD_WRITERS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "datagen/update_stream.h"
#include "driver/dependency_services.h"
#include "store/graph_store.h"
#include "util/mutex.h"
#include "util/spsc_queue.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace snb::driver {

class ShardWriterPool : public DependencyWatermark {
 public:
  struct Options {
    /// Per-lane ring capacity (rounded up to a power of two). Submit
    /// blocks (spin + yield) while the target lane is full.
    size_t queue_capacity = 4096;
    /// Bound on a cross-shard publication wait before the pool declares
    /// the stream invalid and poisons itself.
    int64_t wait_timeout_ms = 20000;
  };

  explicit ShardWriterPool(store::GraphStore* store)
      : ShardWriterPool(store, Options()) {}
  ShardWriterPool(store::GraphStore* store, Options options);
  ShardWriterPool(const ShardWriterPool&) = delete;
  ShardWriterPool& operator=(const ShardWriterPool&) = delete;
  /// Drains outstanding work (best effort), then stops and joins.
  ~ShardWriterPool() override;

  /// Copies `op`, splits it into per-shard halves and enqueues each on
  /// its owning shard's lane. Callable from multiple driver threads —
  /// submissions serialize on an internal mutex (the rings stay
  /// single-producer); the serialized order is the apply order per lane.
  /// Errors surface on Drain(). With the due-time-sorted sequential
  /// producer, CompletedThrough() is continuously exact; under windowed
  /// concurrent submission it is exact at window barriers (correctness of
  /// application never depends on it — the workers' own presence waits
  /// enforce record-creation order).
  util::Status Submit(const datagen::UpdateOperation& op);

  /// Blocks until every submitted half has applied (or the pool is
  /// poisoned). Returns the first application error, Ok otherwise.
  util::Status Drain();

  /// Cross-shard creation watermark: every update with
  /// due_time <= CompletedThrough() has fully applied on every shard it
  /// touches. Monotone.
  util::TimestampMs CompletedThrough() const;

  /// Blocks until CompletedThrough() >= t or the pool is poisoned.
  void WaitCompletedThrough(util::TimestampMs t) const;

  /// Applied-half count per shard, in shard order — the vector watermark
  /// the history checker records alongside reader observations.
  std::vector<uint64_t> WatermarkVector() const;

  bool poisoned() const {
    return poisoned_.load(std::memory_order_acquire);
  }
  uint32_t num_shards() const { return num_shards_; }

  // DependencyWatermark: the pool acts as one aggregate stream whose
  // T_LI is the submission frontier and T_LC the applied frontier.
  util::TimestampMs WatermarkTLI() const override {
    return submitted_through_.load(std::memory_order_acquire);
  }
  util::TimestampMs WatermarkTLC() const override {
    return CompletedThrough();
  }

 private:
  enum class HalfKind : uint8_t {
    kPersonCreate,
    kFriendHalf1,       // owner = person1, bump_counters
    kFriendHalf2,       // owner = person2
    kForumCreate,
    kMemberPersonSide,
    kMemberForumSide,   // bump_counters
    kMessageCreate,     // bump_counters (inside ApplyMessageCreate)
    kMessageCreatorLink,
    kMessageContainerLink,
    kLikePersonSide,
    kLikeMessageSide,   // bump_counters
  };

  struct SubOp {
    HalfKind kind = HalfKind::kPersonCreate;
    const datagen::UpdateOperation* op = nullptr;
  };

  struct Lane {
    std::unique_ptr<util::SpscQueue<SubOp>> queue;
    std::thread worker;
    alignas(64) std::atomic<uint64_t> enqueued{0};
    alignas(64) std::atomic<uint64_t> applied{0};
    /// Every half owned by this lane whose parent due_time <= due_floor
    /// has been applied.
    alignas(64) std::atomic<util::TimestampMs> due_floor{0};
  };

  void Enqueue(uint32_t shard, HalfKind kind,
               const datagen::UpdateOperation* op);
  static void AdvanceFloor(Lane& lane, util::TimestampMs t);
  void WorkerLoop(uint32_t shard);
  /// Applies one half; non-Ok return already poisoned the pool.
  void ApplyHalf(const SubOp& sub);
  /// Spin-waits for `pred` (a monotone presence probe). False when the
  /// pool poisoned or the wait timed out (which poisons it).
  template <typename Pred>
  bool WaitPresent(const Pred& pred, const char* what);
  void Poison(const util::Status& status);

  store::GraphStore* const store_;
  const Options options_;
  const uint32_t num_shards_;
  std::vector<std::unique_ptr<Lane>> lanes_;

  /// Serializes Submit callers so each ring keeps exactly one producer
  /// (documented in DESIGN.md's lock table).
  util::Mutex submit_mu_;
  /// Producer-owned stable storage for submitted operations; lanes hold
  /// pointers into it.
  std::deque<datagen::UpdateOperation> owned_ SNB_GUARDED_BY(submit_mu_);

  /// Due time through which the producer has finished enqueuing every
  /// half (release-stored after the op's last push; acquire-loaded by
  /// idle workers before the emptiness check, so an empty lane may
  /// publish it as its floor).
  std::atomic<util::TimestampMs> submitted_through_{0};

  std::atomic<bool> stop_{false};
  std::atomic<bool> poisoned_{false};
  /// First application/wait error; set once under pool_error_mu_
  /// (documented in DESIGN.md's lock table).
  mutable util::Mutex pool_error_mu_;
  util::Status first_error_ SNB_GUARDED_BY(pool_error_mu_) =
      util::Status::Ok();
};

}  // namespace snb::driver

#endif  // SNB_DRIVER_SHARD_WRITERS_H_
