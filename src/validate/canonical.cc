#include "validate/canonical.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace snb::validate {
namespace {

/// Joins pre-rendered fields with '|'.
std::string Join(std::initializer_list<std::string> fields) {
  std::string out;
  bool first = true;
  for (const std::string& f : fields) {
    if (!first) out.push_back('|');
    out += f;
    first = false;
  }
  return out;
}

std::string FormatBool(bool b) { return b ? "1" : "0"; }

}  // namespace

std::string FormatDouble(double value) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value < 0.0 ? "-inf" : "inf";
  char buf[64];
  // %.17g round-trips every finite double. snprintf honours the global C
  // locale's decimal separator, so normalize it back to '.' byte-wise.
  int n = std::snprintf(buf, sizeof(buf), "%.17g", value);
  std::string out(buf, static_cast<size_t>(n < 0 ? 0 : n));
  for (char& c : out) {
    if (c == ',') c = '.';
  }
  if (out == "-0") out = "0";
  return out;
}

std::string FormatU64(uint64_t value) {
  char buf[32];
  int n = std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  return std::string(buf, static_cast<size_t>(n < 0 ? 0 : n));
}

std::string FormatI64(int64_t value) {
  char buf[32];
  int n = std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  return std::string(buf, static_cast<size_t>(n < 0 ? 0 : n));
}

std::string CanonicalRow(const queries::Q1Result& r) {
  return Join({FormatU64(r.person_id), FormatU64(r.distance), r.last_name,
               FormatU64(r.city_id), FormatU64(r.university_id),
               FormatU64(r.company_id)});
}

std::string CanonicalRow(const queries::Q2Result& r) {
  return Join({FormatU64(r.message_id), FormatU64(r.creator_id),
               FormatI64(r.creation_date)});
}

std::string CanonicalRow(const queries::Q3Result& r) {
  return Join({FormatU64(r.person_id), FormatU64(r.count_x),
               FormatU64(r.count_y)});
}

std::string CanonicalRow(const queries::Q4Result& r) {
  return Join({FormatU64(r.tag), FormatU64(r.post_count)});
}

std::string CanonicalRow(const queries::Q5Result& r) {
  return Join({FormatU64(r.forum_id), FormatU64(r.post_count)});
}

std::string CanonicalRow(const queries::Q6Result& r) {
  return Join({FormatU64(r.tag), FormatU64(r.post_count)});
}

std::string CanonicalRow(const queries::Q7Result& r) {
  return Join({FormatU64(r.liker_id), FormatU64(r.message_id),
               FormatI64(r.like_date), FormatI64(r.latency_minutes),
               FormatBool(r.is_outside_friendship)});
}

std::string CanonicalRow(const queries::Q8Result& r) {
  return Join({FormatU64(r.comment_id), FormatU64(r.replier_id),
               FormatI64(r.creation_date)});
}

std::string CanonicalRow(const queries::Q9Result& r) {
  return Join({FormatU64(r.message_id), FormatU64(r.creator_id),
               FormatI64(r.creation_date)});
}

std::string CanonicalRow(const queries::Q10Result& r) {
  return Join({FormatU64(r.person_id), FormatI64(r.similarity)});
}

std::string CanonicalRow(const queries::Q11Result& r) {
  return Join({FormatU64(r.person_id), FormatU64(r.company_id),
               FormatU64(r.work_year)});
}

std::string CanonicalRow(const queries::Q12Result& r) {
  return Join({FormatU64(r.person_id), FormatU64(r.reply_count)});
}

std::string CanonicalRow(const queries::Q14Result& r) {
  std::string path;
  for (schema::PersonId p : r.path) {
    if (!path.empty()) path.push_back(',');
    path += FormatU64(p);
  }
  return Join({path, FormatDouble(r.weight)});
}

std::string CanonicalRow(const queries::S1Result& r) {
  return Join({FormatBool(r.found), r.first_name, r.last_name,
               FormatI64(r.birthday), FormatU64(r.city_id), r.browser,
               r.location_ip, FormatU64(r.gender),
               FormatI64(r.creation_date)});
}

std::string CanonicalRow(const queries::S2Result& r) {
  return Join({FormatU64(r.message_id), FormatI64(r.creation_date),
               FormatU64(r.root_post_id), FormatU64(r.root_author_id)});
}

std::string CanonicalRow(const queries::S3Result& r) {
  return Join({FormatU64(r.friend_id), FormatI64(r.since)});
}

std::string CanonicalRow(const queries::S4Result& r) {
  return Join({FormatBool(r.found), FormatI64(r.creation_date), r.content});
}

std::string CanonicalRow(const queries::S5Result& r) {
  return Join({FormatBool(r.found), FormatU64(r.creator_id), r.first_name,
               r.last_name});
}

std::string CanonicalRow(const queries::S6Result& r) {
  return Join({FormatBool(r.found), FormatU64(r.forum_id), r.forum_title,
               FormatU64(r.moderator_id)});
}

std::string CanonicalRow(const queries::S7Result& r) {
  return Join({FormatU64(r.comment_id), FormatU64(r.replier_id),
               FormatI64(r.creation_date),
               FormatBool(r.replier_knows_author)});
}

std::vector<std::string> CanonicalScalar(int value) {
  return {FormatI64(value)};
}

}  // namespace snb::validate
