// Microbenchmark of the sorted-set intersection kernels (src/exec):
// branch-free scalar merge vs galloping vs SIMD vs the adaptive
// Intersect() entry point, swept across list-length ratios from 1:1 to
// 1:1000 — the shapes friend-of-friend expansion and mutual-friend
// counting actually produce (comparable lists for two average persons,
// extreme ratios when a hub's list meets a small circle).
//
// Every (ratio, kernel) cell is cross-checked against
// std::set_intersection before timing; any divergence exits nonzero, so
// the bench doubles as a correctness gate (scripts/check.sh runs it with
// --smoke: small lists, one reported rep, full cross-check).
//
// Usage: bench_micro_intersect [--smoke]
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "exec/intersect.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace snb::bench {
namespace {

using Kernel = size_t (*)(const uint64_t*, size_t, const uint64_t*, size_t,
                          uint64_t*);

/// Strictly ascending list of `n` ids with mean gap `gap` (controls how
/// interleaved the two lists are; gap 2 gives ~50% overlap density).
std::vector<uint64_t> MakeSortedList(uint64_t seed, size_t n, uint64_t gap) {
  util::Rng rng(seed);
  std::vector<uint64_t> out(n);
  uint64_t v = 0;
  for (size_t i = 0; i < n; ++i) {
    v += 1 + rng.Next() % (2 * gap - 1);
    out[i] = v;
  }
  return out;
}

struct Cell {
  const char* name;
  Kernel kernel;
};

int RunSweep(bool smoke) {
  PrintHeader("micro: sorted-set intersection kernels (scalar/gallop/SIMD)");
  std::printf("  simd available: %s\n",
              exec::SimdAvailable() ? "yes (AVX2)" : "no (scalar fallback)");

  const size_t base = smoke ? 512 : 4096;
  const size_t reps = smoke ? 3 : 200;
  const size_t ratios[] = {1, 4, 16, 64, 256, 1000};
  const Cell cells[] = {
      {"scalar", exec::IntersectScalar},
      {"gallop", exec::IntersectGalloping},
      {"simd", exec::IntersectSimd},
      {"adaptive", exec::Intersect},
  };

  std::printf("  %-8s %8s %9s", "ratio", "|a|", "|b|");
  for (const Cell& c : cells) std::printf(" %10s", c.name);
  std::printf("   (ns/output row; lower is better)\n");

  for (size_t ratio : ratios) {
    size_t na = base;
    size_t nb = base * ratio;
    // Match value ranges so the lists actually interleave at every ratio.
    std::vector<uint64_t> a = MakeSortedList(0x5eed + ratio, na, 2 * ratio);
    std::vector<uint64_t> b = MakeSortedList(0xcafe + ratio, nb, 2);
    std::vector<uint64_t> expect(std::min(na, nb));
    expect.resize(static_cast<size_t>(
        std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                              expect.begin()) -
        expect.begin()));

    std::printf("  1:%-6zu %8zu %9zu", ratio, na, nb);
    for (const Cell& c : cells) {
      std::vector<uint64_t> out(std::min(na, nb));
      size_t n = c.kernel(a.data(), na, b.data(), nb, out.data());
      if (n != expect.size() ||
          !std::equal(expect.begin(), expect.end(), out.begin())) {
        std::fprintf(stderr,
                     "\nkernel %s disagrees with std::set_intersection at "
                     "ratio 1:%zu (%zu vs %zu rows)\n",
                     c.name, ratio, n, expect.size());
        return 1;
      }
      // IntersectCount must agree with the materializing kernels too.
      if (exec::IntersectCount(a.data(), na, b.data(), nb) != expect.size()) {
        std::fprintf(stderr, "\nIntersectCount disagrees at ratio 1:%zu\n",
                     ratio);
        return 1;
      }
      util::Stopwatch watch;
      size_t sink = 0;
      for (size_t r = 0; r < reps; ++r) {
        sink += c.kernel(a.data(), na, b.data(), nb, out.data());
      }
      uint64_t nanos = watch.ElapsedNanos();
      double per_row = sink == 0 ? 0.0
                                 : static_cast<double>(nanos) /
                                       static_cast<double>(sink);
      std::printf(" %10.2f", per_row);
    }
    std::printf("   |a∩b|=%zu\n", expect.size());
  }
  std::printf(
      "\n  Expected shape: scalar wins near 1:1 (branch-free merge is\n"
      "  O(na+nb) but with tiny constants), galloping takes over past\n"
      "  ~1:%zu (O(na log nb)); SIMD tracks scalar with a constant-factor\n"
      "  win where supported. `adaptive` should ride the envelope.\n\n",
      exec::kGallopRatio);
  return 0;
}

}  // namespace
}  // namespace snb::bench

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
      return 1;
    }
  }
  return snb::bench::RunSweep(smoke);
}
