#include "datagen/person_generator.h"

#include <cctype>
#include <cmath>
#include <string>

#include "util/rng.h"

namespace snb::datagen {
namespace {

using schema::Dictionaries;
using schema::kInvalidId32;
using schema::Person;
using util::Rng;
using util::RandomPurpose;
using util::TimestampMs;

// Number of interest tags per person: 3 + geometric tail.
constexpr int kMinInterests = 3;
constexpr int kMaxInterests = 12;

TimestampMs SampleBirthday(uint64_t seed, schema::PersonId id) {
  Rng rng(seed, id, RandomPurpose::kBirthday);
  // Born 1980-1997; members are adults when the network starts in 2010.
  int64_t span_days = 18 * 365;
  return util::TimestampFromDate(1980, 1, 1) +
         rng.NextInRange(0, span_days - 1) * util::kMillisPerDay;
}

TimestampMs SampleCreationDate(uint64_t seed, schema::PersonId id) {
  Rng rng(seed, id, RandomPurpose::kCreatedDate);
  // Members join throughout the 36-month timeline. A quadratic transform
  // skews joins toward the early months so that most people exist long
  // enough to accumulate activity (and the bulk-load contains most
  // persons), while the final 4 months still receive new members for the
  // update stream.
  double u = rng.NextDouble();
  double skewed = u * u;
  auto offset = static_cast<int64_t>(
      skewed * static_cast<double>(util::kSimulationMonths *
                                   util::kMillisPerMonth - kTSafeMs * 4));
  return util::kNetworkStartMs + offset;
}

Person GeneratePerson(const DatagenConfig& config,
                      const Dictionaries& dict, schema::PersonId id) {
  const uint64_t seed = config.seed;
  Person person;
  person.id = id;

  Rng loc_rng(seed, id, RandomPurpose::kLocation);
  schema::PlaceId country = dict.SampleCountry(loc_rng);
  person.city_id = dict.SampleCityInCountry(country, loc_rng);

  Rng gender_rng(seed, id, RandomPurpose::kGender);
  person.gender = static_cast<uint8_t>(gender_rng.NextBounded(2));

  Rng first_rng(seed, id, RandomPurpose::kFirstName);
  person.first_name =
      dict.FirstName(dict.SampleFirstNameIndex(country, person.gender,
                                               first_rng));
  Rng last_rng(seed, id, RandomPurpose::kLastName);
  person.last_name = dict.LastName(dict.SampleLastNameIndex(country,
                                                            last_rng));

  person.birthday = SampleBirthday(seed, id);
  person.creation_date = SampleCreationDate(seed, id);

  Rng uni_rng(seed, id, RandomPurpose::kUniversity);
  person.university_id = dict.SampleUniversity(country, uni_rng);
  if (person.university_id != kInvalidId32) {
    Rng year_rng(seed, id, RandomPurpose::kStudyYear);
    // Enrolled around age 18.
    int birth_year = 1980 + static_cast<int>((person.birthday -
                                              util::TimestampFromDate(
                                                  1980, 1, 1)) /
                                             (365 * util::kMillisPerDay));
    person.study_year =
        static_cast<uint16_t>(birth_year + 18 + year_rng.NextBounded(3));
  }

  Rng company_rng(seed, id, RandomPurpose::kCompany);
  person.company_id = dict.SampleCompany(country, company_rng);
  if (person.company_id != kInvalidId32) {
    Rng year_rng(seed, id, RandomPurpose::kWorkYear);
    person.work_year = static_cast<uint16_t>(2000 + year_rng.NextBounded(13));
  }

  Rng lang_rng(seed, id, RandomPurpose::kLanguages);
  person.languages = dict.SampleLanguages(country, lang_rng);

  // Interests: skewed towards tags popular in the person's country.
  Rng interest_rng(seed, id, RandomPurpose::kInterests);
  int num_interests = static_cast<int>(
      interest_rng.NextInRange(kMinInterests, kMaxInterests));
  person.interests.reserve(num_interests);
  for (int i = 0; i < num_interests; ++i) {
    schema::TagId tag = dict.SampleInterestTag(country, interest_rng);
    bool duplicate = false;
    for (schema::TagId existing : person.interests) {
      if (existing == tag) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) person.interests.push_back(tag);
  }

  // Emails: Table 1 "person.employer -> person.email".
  Rng email_rng(seed, id, RandomPurpose::kEmail);
  std::string user = person.first_name + "." + person.last_name;
  for (char& c : user) c = static_cast<char>(std::tolower(c));
  person.emails.push_back(user + "@snb.org");
  if (person.company_id != kInvalidId32 && email_rng.NextBool(0.7)) {
    person.emails.push_back(
        user + "@" + dict.companies()[person.company_id].name);
  }
  if (person.university_id != kInvalidId32 && email_rng.NextBool(0.4)) {
    person.emails.push_back(
        user + "@" + dict.universities()[person.university_id].name);
  }

  Rng browser_rng(seed, id, RandomPurpose::kBrowser);
  person.browser = dict.SampleBrowser(browser_rng);

  // IP address correlates with country (first octet = country id + 10).
  Rng ip_rng(seed, id, RandomPurpose::kIp);
  person.location_ip = std::to_string(10 + country) + "." +
                       std::to_string(ip_rng.NextBounded(256)) + "." +
                       std::to_string(ip_rng.NextBounded(256)) + "." +
                       std::to_string(1 + ip_rng.NextBounded(254));
  return person;
}

}  // namespace

std::vector<schema::Person> GeneratePersons(
    const DatagenConfig& config, const schema::Dictionaries& dictionaries,
    util::ThreadPool& pool) {
  std::vector<schema::Person> persons(config.num_persons);
  pool.ParallelForRanges(
      config.num_persons,
      [&](size_t begin, size_t end, size_t /*worker*/) {
        for (size_t i = begin; i < end; ++i) {
          persons[i] = GeneratePerson(config, dictionaries,
                                      static_cast<schema::PersonId>(i));
        }
      });
  return persons;
}

}  // namespace snb::datagen
