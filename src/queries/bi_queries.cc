#include "queries/bi_queries.h"

#include <algorithm>
#include <ctime>
#include <map>
#include <unordered_map>

namespace snb::queries {
namespace {

int YearOf(util::TimestampMs ts) {
  std::time_t secs = static_cast<std::time_t>(ts / util::kMillisPerSecond);
  std::tm tm_utc{};
  gmtime_r(&secs, &tm_utc);
  return tm_utc.tm_year + 1900;
}

}  // namespace

std::vector<Bi1Result> BiQuery1PostingSummary(const GraphStore& store) {
  auto pin = store.ReadLock();
  struct Acc {
    uint64_t count = 0;
    uint64_t length = 0;
  };
  std::map<std::tuple<int, int, uint32_t>, Acc> groups;
  for (schema::MessageId id = 0; id < store.MessageIdBound(); ++id) {
    const store::MessageRecord* m = store.FindMessage(pin, id);
    if (m == nullptr) continue;
    Acc& acc = groups[{YearOf(m->data.creation_date),
                       static_cast<int>(m->data.kind), m->data.language}];
    ++acc.count;
    acc.length += m->data.content.size();
  }
  std::vector<Bi1Result> results;
  results.reserve(groups.size());
  for (const auto& [key, acc] : groups) {
    Bi1Result r;
    r.year = std::get<0>(key);
    r.kind = static_cast<schema::MessageKind>(std::get<1>(key));
    r.language = std::get<2>(key);
    r.message_count = acc.count;
    r.avg_length = acc.count > 0
                       ? static_cast<double>(acc.length) /
                             static_cast<double>(acc.count)
                       : 0.0;
    results.push_back(r);
  }
  std::sort(results.begin(), results.end(),
            [](const Bi1Result& a, const Bi1Result& b) {
              return a.message_count > b.message_count;
            });
  return results;
}

std::vector<Bi2Result> BiQuery2TagEvolution(const GraphStore& store,
                                            util::TimestampMs window_start,
                                            int window_days, int limit) {
  auto pin = store.ReadLock();
  util::TimestampMs mid =
      window_start + window_days * util::kMillisPerDay;
  util::TimestampMs end = mid + window_days * util::kMillisPerDay;
  std::unordered_map<schema::TagId, Bi2Result> by_tag;
  for (schema::MessageId id = 0; id < store.MessageIdBound(); ++id) {
    const store::MessageRecord* m = store.FindMessage(pin, id);
    if (m == nullptr || m->data.kind == schema::MessageKind::kComment) {
      continue;
    }
    util::TimestampMs ts = m->data.creation_date;
    if (ts < window_start) continue;
    if (ts >= end) break;  // Messages are date-ordered by id.
    for (schema::TagId t : m->data.tags) {
      Bi2Result& r = by_tag[t];
      r.tag = t;
      if (ts < mid) {
        ++r.count_window1;
      } else {
        ++r.count_window2;
      }
    }
  }
  std::vector<Bi2Result> results;
  results.reserve(by_tag.size());
  for (auto& [_, r] : by_tag) {
    r.delta = r.count_window2 > r.count_window1
                  ? r.count_window2 - r.count_window1
                  : r.count_window1 - r.count_window2;
    results.push_back(r);
  }
  std::sort(results.begin(), results.end(),
            [](const Bi2Result& a, const Bi2Result& b) {
              if (a.delta != b.delta) return a.delta > b.delta;
              return a.tag < b.tag;
            });
  if (static_cast<int>(results.size()) > limit) results.resize(limit);
  return results;
}

std::vector<Bi3Result> BiQuery3CountryInfluencers(
    const GraphStore& store,
    const std::vector<schema::PlaceId>& city_country, int per_country) {
  auto pin = store.ReadLock();
  struct Acc {
    uint64_t likes = 0;
    uint64_t messages = 0;
  };
  std::unordered_map<schema::PersonId, Acc> per_person;
  for (schema::PersonId pid : store.PersonIds(pin)) {
    const store::PersonRecord* p = store.FindPerson(pin, pid);
    if (p == nullptr) continue;
    auto messages = p->messages.view();
    Acc& acc = per_person[pid];
    acc.messages = messages.size();
    for (const store::DatedEdge& e : messages) {
      const store::MessageRecord* m = store.FindMessage(pin, e.id);
      if (m != nullptr) acc.likes += m->likes.size();
    }
  }
  // Group by country, keep top-k.
  std::map<schema::PlaceId, std::vector<Bi3Result>> per_country_rows;
  for (const auto& [pid, acc] : per_person) {
    const store::PersonRecord* p = store.FindPerson(pin, pid);
    if (p == nullptr || p->data.city_id >= city_country.size()) continue;
    schema::PlaceId country = city_country[p->data.city_id];
    per_country_rows[country].push_back(
        {country, pid, acc.likes, acc.messages});
  }
  std::vector<Bi3Result> results;
  for (auto& [country, rows] : per_country_rows) {
    std::sort(rows.begin(), rows.end(),
              [](const Bi3Result& a, const Bi3Result& b) {
                if (a.likes_received != b.likes_received) {
                  return a.likes_received > b.likes_received;
                }
                return a.person < b.person;
              });
    if (static_cast<int>(rows.size()) > per_country) {
      rows.resize(per_country);
    }
    results.insert(results.end(), rows.begin(), rows.end());
  }
  return results;
}

}  // namespace snb::queries
