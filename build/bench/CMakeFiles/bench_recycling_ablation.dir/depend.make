# Empty dependencies file for bench_recycling_ablation.
# This may be replaced when dependencies are built.
