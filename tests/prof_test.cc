// Tests of the sampling CPU profiler (obs/prof.h).
//
// The central contracts under test mirror the perf-counter suite:
// graceful degradation (forced timer_create failure, SNB_PROF_FORCE_NOOP
// — the seccomp/CI reality) must install the no-op backend and keep
// every Collect() valid-but-empty; and the conserved-accounting
// invariant captured == attributed + unattributed + dropped must hold
// on live captures. The live-sampling tests run only where the probe
// actually succeeds (sanitizer builds auto-install the no-op backend)
// and skip elsewhere, so the suite is green on every machine.
#include <cerrno>
#include <cstdlib>
#include <ctime>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/trace.h"

namespace snb::obs {
namespace {

using prof::Backend;
using prof::FoldedProfile;
using prof::FoldedStack;

/// Restores the subsystem to kDisabled and clears test hooks, whatever a
/// test did to it.
struct ProfReset {
  ~ProfReset() {
    prof::SetTimerCreateErrnoForTest(0);
    ::unsetenv("SNB_PROF_FORCE_NOOP");
    ::unsetenv("SNB_PROF_INTERVAL_US");
    prof::ResetForTest();
  }
};

/// Burns roughly `ms` of this thread's CPU time (not wall time) so the
/// per-thread CPU-clock timer has something to sample.
void BurnCpuMs(long ms) {
  timespec begin{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &begin);
  volatile uint64_t sink = 0;
  for (;;) {
    for (int i = 0; i < 50'000; ++i) sink = sink + static_cast<uint64_t>(i);
    timespec now{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &now);
    long elapsed_ms = (now.tv_sec - begin.tv_sec) * 1000 +
                      (now.tv_nsec - begin.tv_nsec) / 1'000'000;
    if (elapsed_ms >= ms) return;
  }
}

// ---- Backend state machine ------------------------------------------------

TEST(ProfBackendTest, DisabledUntilEnabledAndCollectIsEmpty) {
  ProfReset reset;
  prof::ResetForTest();
  EXPECT_EQ(prof::ActiveBackend(), Backend::kDisabled);
  EXPECT_FALSE(prof::SamplingLive());
  FoldedProfile p = prof::Collect();
  EXPECT_EQ(p.backend, Backend::kDisabled);
  EXPECT_EQ(p.accounting.captured, 0u);
  EXPECT_TRUE(p.stacks.empty());
}

TEST(ProfBackendTest, ForceNoopOptionSkipsTheProbe) {
  ProfReset reset;
  prof::EnableOptions options;
  options.force_noop = true;
  EXPECT_EQ(prof::Enable(options), Backend::kNoop);
  EXPECT_EQ(prof::ActiveBackend(), Backend::kNoop);
  EXPECT_FALSE(prof::SamplingLive());
  FoldedProfile p = prof::Collect();
  EXPECT_EQ(p.backend, Backend::kNoop);
  EXPECT_FALSE(p.message.empty());
  EXPECT_EQ(p.accounting.captured, 0u);
}

TEST(ProfBackendTest, ForceNoopEnvSkipsTheProbe) {
  ProfReset reset;
  ::setenv("SNB_PROF_FORCE_NOOP", "1", 1);
  EXPECT_EQ(prof::Enable(), Backend::kNoop);
  EXPECT_FALSE(prof::SamplingLive());

  // "0" means not forced: the probe runs (outcome is machine-dependent,
  // but it must settle on a decided backend, never stay kDisabled).
  prof::ResetForTest();
  ::setenv("SNB_PROF_FORCE_NOOP", "0", 1);
  EXPECT_NE(prof::Enable(), Backend::kDisabled);
}

TEST(ProfBackendTest, InjectedEpermFallsBackToNoop) {
  ProfReset reset;
  prof::SetTimerCreateErrnoForTest(EPERM);
  EXPECT_EQ(prof::Enable(), Backend::kNoop);
  EXPECT_FALSE(prof::SamplingLive());
  // Sanitizer builds short-circuit before the probe with their own
  // message; elsewhere the message must name the failed syscall.
  if (prof::BackendMessage().find("sanitizer") == std::string::npos) {
    EXPECT_NE(prof::BackendMessage().find("timer_create"),
              std::string::npos)
        << prof::BackendMessage();
  }
}

TEST(ProfBackendTest, RegistrationIsSafeOnEveryBackend) {
  ProfReset reset;
  // Never enabled: registration and scopes must be inert, not crash.
  {
    prof::ScopedThreadRegistration reg("test.lane");
    prof::ScopedOpContext op(static_cast<uint16_t>(ComplexOp(2)));
    prof::ScopedOperatorLabel label("noop_label");
  }
  // No-op backend: same.
  prof::EnableOptions options;
  options.force_noop = true;
  prof::Enable(options);
  {
    prof::ScopedThreadRegistration reg("test.lane");
    prof::ScopedOpContext op(static_cast<uint16_t>(ComplexOp(2)));
    BurnCpuMs(5);
  }
  EXPECT_EQ(prof::Collect().accounting.captured, 0u);
}

TEST(ProfBackendTest, LazyRegistrationUnregistersAtThreadExit) {
  ProfReset reset;
  // The driver.pool path: RegisterCurrentThread with no explicit
  // unregister scope. The TLS owner's destructor must fire at thread
  // exit (it only does if registration odr-uses it), or the registry
  // would keep a dead thread whose pthread_t Collect() then probes.
  std::thread worker([] {
    prof::RegisterCurrentThread("test.pool");
    BurnCpuMs(2);
    EXPECT_EQ(prof::LiveRegisteredThreadsForTest(), 1u);
  });
  worker.join();
  EXPECT_EQ(prof::LiveRegisteredThreadsForTest(), 0u);
  // Collect() after the thread died must see only retired accounting,
  // never touch the dead thread's CPU clock.
  FoldedProfile p = prof::Collect();
  EXPECT_EQ(p.accounting.threads, 1u);
}

TEST(ProfBackendTest, ResetReturnsToDisabled) {
  ProfReset reset;
  prof::Enable();
  prof::ResetForTest();
  EXPECT_EQ(prof::ActiveBackend(), Backend::kDisabled);
  EXPECT_TRUE(prof::BackendMessage().empty());
  EXPECT_EQ(prof::Collect().accounting.captured, 0u);
}

// ---- Live sampling (skips where the probe fails) --------------------------

TEST(ProfSamplingTest, CapturesAttributedSamplesWithConservedAccounting) {
  ProfReset reset;
  if (prof::Enable() != Backend::kTimer) {
    GTEST_SKIP() << "sampling unavailable here: " << prof::BackendMessage();
  }
  {
    prof::ScopedThreadRegistration reg("test.main");
    prof::ScopedOpContext op(static_cast<uint16_t>(ComplexOp(9)));
    prof::ScopedOperatorLabel label("test_region");
    // Kernel CPU-clock timers tick at multi-ms granularity regardless of
    // the requested interval; 200 ms of CPU guarantees a handful of
    // samples without making the suite slow.
    BurnCpuMs(200);
  }
  FoldedProfile p = prof::Collect();
  EXPECT_EQ(p.backend, Backend::kTimer);
  EXPECT_GE(p.accounting.captured, 5u);
  EXPECT_GE(p.accounting.attributed, 1u);
  EXPECT_EQ(p.accounting.captured, p.accounting.attributed +
                                       p.accounting.unattributed +
                                       p.accounting.dropped);
  EXPECT_GE(p.accounting.threads, 1u);
  EXPECT_GE(p.accounting.task_clock_ns, 100'000'000u);
  ASSERT_FALSE(p.stacks.empty());

  std::string folded = prof::ToFoldedText(p);
  EXPECT_NE(folded.find("thread:test.main"), std::string::npos) << folded;
  EXPECT_NE(folded.find("op:" + std::string(OpTypeName(ComplexOp(9)))),
            std::string::npos)
      << folded;
  EXPECT_NE(folded.find("opr:test_region"), std::string::npos) << folded;
}

TEST(ProfSamplingTest, SelfOverheadStaysUnderTheGate) {
  ProfReset reset;
  if (prof::Enable() != Backend::kTimer) {
    GTEST_SKIP() << "sampling unavailable here: " << prof::BackendMessage();
  }
  {
    prof::ScopedThreadRegistration reg("test.main");
    BurnCpuMs(150);
  }
  prof::SampleAccounting a = prof::Collect().accounting;
  ASSERT_GT(a.task_clock_ns, 0u);
  // The compare_reports.py gate is 2% of task-clock; the handler should
  // be far below even that.
  EXPECT_LT(static_cast<double>(a.self_overhead_ns),
            0.02 * static_cast<double>(a.task_clock_ns))
      << a.self_overhead_ns << " ns over " << a.task_clock_ns << " ns";
}

TEST(ProfSamplingTest, DeltaSinceIsolatesAWindow) {
  ProfReset reset;
  if (prof::Enable() != Backend::kTimer) {
    GTEST_SKIP() << "sampling unavailable here: " << prof::BackendMessage();
  }
  prof::ScopedThreadRegistration reg("test.window");
  BurnCpuMs(60);
  FoldedProfile before = prof::Collect();
  BurnCpuMs(120);
  FoldedProfile after = prof::Collect();
  FoldedProfile delta = prof::DeltaSince(before, after);
  EXPECT_EQ(delta.accounting.captured,
            after.accounting.captured - before.accounting.captured);
  EXPECT_EQ(delta.accounting.captured, delta.accounting.attributed +
                                           delta.accounting.unattributed +
                                           delta.accounting.dropped);
  // The window burned CPU, so it must have gained samples.
  EXPECT_GE(delta.accounting.captured, 1u);
  uint64_t delta_total = 0;
  for (const FoldedStack& s : delta.stacks) delta_total += s.count;
  EXPECT_EQ(delta_total, delta.accounting.captured);
}

TEST(ProfSamplingTest, TraceSpanLabelFlowsIntoFoldedStacks) {
  ProfReset reset;
  if (prof::Enable() != Backend::kTimer) {
    GTEST_SKIP() << "sampling unavailable here: " << prof::BackendMessage();
  }
  prof::ScopedThreadRegistration reg("test.span");
  OperatorStats stats;
  {
    // The TraceSpan label hook is the integration surface the query
    // plans use — no direct prof:: calls in their code.
    TraceSpan span(&stats, "span_label");
    BurnCpuMs(200);
  }
  std::string folded = prof::ToFoldedText(prof::Collect());
  EXPECT_NE(folded.find("opr:span_label"), std::string::npos) << folded;
  EXPECT_GT(stats.invocations, 0u);
}

// ---- Pure folded-data helpers (deterministic, no timers) ------------------

FoldedStack MakeStack(const std::string& lane, const std::string& op,
                      const std::string& label,
                      std::vector<std::string> frames, uint64_t count) {
  FoldedStack s;
  s.lane = lane;
  s.op = op;
  s.op_label = label;
  s.frames = std::move(frames);
  s.count = count;
  return s;
}

TEST(ProfFoldedTextTest, RendersContextSegmentsAndOmitsEmptyOnes) {
  FoldedProfile p;
  p.stacks.push_back(
      MakeStack("driver.0", "complex.Q9", "join2", {"main", "Q9"}, 7));
  p.stacks.push_back(MakeStack("driver.1", "", "", {"main", "Idle"}, 3));
  std::string text = prof::ToFoldedText(p);
  // Sorted by key: driver.0 line first; unattributed line has no op:/opr:.
  EXPECT_EQ(text,
            "thread:driver.0;op:complex.Q9;opr:join2;main;Q9 7\n"
            "thread:driver.1;main;Idle 3\n");
}

TEST(ProfDeltaTest, SubtractsPerStackAndSaturates) {
  FoldedProfile earlier;
  earlier.stacks.push_back(MakeStack("a", "", "", {"f"}, 10));
  earlier.stacks.push_back(MakeStack("b", "", "", {"g"}, 4));
  earlier.accounting.captured = 14;
  earlier.accounting.unattributed = 14;

  FoldedProfile later;
  later.backend = Backend::kTimer;
  later.stacks.push_back(MakeStack("a", "", "", {"f"}, 25));  // +15.
  later.stacks.push_back(MakeStack("b", "", "", {"g"}, 4));   // Unchanged.
  later.stacks.push_back(MakeStack("c", "", "", {"h"}, 2));   // New.
  later.accounting.captured = 31;
  later.accounting.unattributed = 31;

  FoldedProfile delta = prof::DeltaSince(earlier, later);
  EXPECT_EQ(delta.backend, Backend::kTimer);
  EXPECT_EQ(delta.accounting.captured, 17u);
  ASSERT_EQ(delta.stacks.size(), 2u);  // Unchanged stack omitted.
  EXPECT_EQ(delta.stacks[0].lane, "a");
  EXPECT_EQ(delta.stacks[0].count, 15u);
  EXPECT_EQ(delta.stacks[1].lane, "c");
  EXPECT_EQ(delta.stacks[1].count, 2u);

  // Swapped operands: counts would go negative; everything saturates.
  FoldedProfile swapped = prof::DeltaSince(later, earlier);
  EXPECT_EQ(swapped.accounting.captured, 0u);
  EXPECT_TRUE(swapped.stacks.empty());
}

}  // namespace
}  // namespace snb::obs
