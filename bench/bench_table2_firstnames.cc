// Table 2 reproduction: top-10 person.firstNames for persons located in
// Germany vs China. The paper's point: both follow the same skewed shape
// but the value order is permuted per country (typical names on top).
//
// Name assignment only needs the person-generation stage, so this bench
// runs a persons-only generation at a larger scale for a solid sample.
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "datagen/person_generator.h"
#include "util/thread_pool.h"

namespace snb::bench {
namespace {

void Run() {
  PrintHeader("Table 2 — top-10 first names, Germany vs China");
  datagen::DatagenConfig config;
  config.num_persons = 60000;
  schema::Dictionaries dict(config.seed);
  util::ThreadPool pool(4);
  std::vector<schema::Person> persons =
      datagen::GeneratePersons(config, dict, pool);

  schema::PlaceId germany = 0, china = 0;
  for (size_t c = 0; c < dict.countries().size(); ++c) {
    if (dict.countries()[c].name == "Germany") {
      germany = static_cast<schema::PlaceId>(c);
    }
    if (dict.countries()[c].name == "China") {
      china = static_cast<schema::PlaceId>(c);
    }
  }

  auto top10 = [&](schema::PlaceId country) {
    std::map<std::string, int> counts;
    for (const schema::Person& p : persons) {
      if (dict.CountryOfCity(p.city_id) == country) ++counts[p.first_name];
    }
    std::vector<std::pair<int, std::string>> ranked;
    for (auto& [name, n] : counts) ranked.push_back({n, name});
    std::sort(ranked.rbegin(), ranked.rend());
    if (ranked.size() > 10) ranked.resize(10);
    return ranked;
  };

  auto german = top10(germany);
  auto chinese = top10(china);
  std::printf("  %-22s %-8s | %-22s %-8s\n", "Name (Germany)", "Number",
              "Name (China)", "Number");
  std::printf("  ------------------------------- | -------------------------------\n");
  size_t rows = std::max(german.size(), chinese.size());
  for (size_t i = 0; i < rows; ++i) {
    std::printf("  %-22s %-8d | %-22s %-8d\n",
                i < german.size() ? german[i].second.c_str() : "",
                i < german.size() ? german[i].first : 0,
                i < chinese.size() ? chinese[i].second.c_str() : "",
                i < chinese.size() ? chinese[i].first : 0);
  }
  std::printf("\n  Paper (SF=10): Karl 215 / Hans 190 / Wolfgang 174 ... vs\n"
              "                 Yang 961 / Chen 929 / Wei 887 ...\n");
  std::printf("  Shape to check: disjoint, country-typical top-10 lists with\n"
              "  heavily skewed counts (same distribution shape, permuted order).\n\n");
}

}  // namespace
}  // namespace snb::bench

int main() {
  snb::bench::Run();
  return 0;
}
