// Multi-stage sliding-window friendship generation (paper section 2.3).
//
// The Homophily Principle is realized by three edge-generation stages, each
// re-sorting the persons along one correlation dimension and picking friends
// from a bounded window with geometrically decaying probability:
//   stage 0: studied location — key packs city Z-order (bits 31-24),
//            university id (23-12) and study year (11-0);
//   stage 1: interests — key packs the person's two top interest tags;
//   stage 2: random — reproduces the inhomogeneities of real data.
// Degree budget per stage: 45% / 45% / 10% of the person's target degree
// (which follows the discretized Facebook distribution, see DegreeModel).
//
// Workers process disjoint contiguous ranges of the sorted order; each
// person's picks are pure functions of (seed, person id, stage), so the edge
// set is independent of the worker count.
#ifndef SNB_DATAGEN_FRIENDSHIP_GENERATOR_H_
#define SNB_DATAGEN_FRIENDSHIP_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "datagen/config.h"
#include "datagen/degree_model.h"
#include "schema/dictionaries.h"
#include "schema/entities.h"
#include "util/thread_pool.h"

namespace snb::datagen {

/// Size of the sliding window (in persons) a stage may pick friends from.
inline constexpr uint32_t kFriendWindow = 200;
/// Per-stage shares of the target degree.
inline constexpr double kStageShare[3] = {0.45, 0.45, 0.10};

/// Sort key of a person along a correlation dimension.
/// Stage 0 keys are the paper's studied-location packing (zorder/univ/year).
uint64_t CorrelationKey(const schema::Person& person,
                        const schema::Dictionaries& dictionaries, int stage,
                        uint64_t seed);

/// Generates the friendship (Knows) edges for `persons`. Edges are
/// normalized (person1_id < person2_id), deduplicated, and carry creation
/// dates after both endpoints joined (+ T_SAFE).
std::vector<schema::Knows> GenerateFriendships(
    const DatagenConfig& config, const schema::Dictionaries& dictionaries,
    const DegreeModel& degree_model,
    const std::vector<schema::Person>& persons, util::ThreadPool& pool);

}  // namespace snb::datagen

#endif  // SNB_DATAGEN_FRIENDSHIP_GENERATOR_H_
