file(REMOVE_RECURSE
  "libsnb_datagen.a"
)
