file(REMOVE_RECURSE
  "CMakeFiles/queries_edge_test.dir/queries_edge_test.cc.o"
  "CMakeFiles/queries_edge_test.dir/queries_edge_test.cc.o.d"
  "queries_edge_test"
  "queries_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queries_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
