// Unit tests for the batched engine's physical operators: the flat hash
// tables (HashSet64/HashMap64) against std::unordered_set/map, the bounded
// TopK sink against full-sort-then-truncate, and the store-backed
// operators (ExpandTwoHopSorted, MessageScanOperator) against brute-force
// references over a generated dataset.
#include <algorithm>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "exec/batch.h"
#include "exec/hash_join.h"
#include "exec/operators.h"
#include "store/graph_store.h"
#include "util/rng.h"

namespace snb::exec {
namespace {

// ---- Hash tables ---------------------------------------------------------

TEST(HashSet64Test, InsertContainsGrow) {
  HashSet64 set;  // Default capacity: growth path must engage.
  std::unordered_set<uint64_t> ref;
  util::Rng rng(0x4a55);
  for (int i = 0; i < 2000; ++i) {
    uint64_t key = rng.Next() % 3000;
    set.Insert(key);
    ref.insert(key);
  }
  EXPECT_EQ(set.size(), ref.size());
  for (uint64_t key = 0; key < 3000; ++key) {
    EXPECT_EQ(set.Contains(key), ref.count(key) != 0) << key;
  }
}

TEST(HashSet64Test, ProbeBatchSelectionVector) {
  HashSet64 set(8);
  for (uint64_t key : {5ULL, 10ULL, 15ULL, 20ULL}) set.Insert(key);
  uint64_t keys[] = {1, 5, 6, 10, 15, 16, 20, 21};
  uint32_t sel[8];
  size_t hits = set.ProbeBatch(keys, 8, sel);
  ASSERT_EQ(hits, 4u);
  EXPECT_EQ(sel[0], 1u);
  EXPECT_EQ(sel[1], 3u);
  EXPECT_EQ(sel[2], 4u);
  EXPECT_EQ(sel[3], 6u);
}

TEST(HashSet64Test, EmptyProbe) {
  HashSet64 set;
  uint32_t sel[4];
  EXPECT_EQ(set.ProbeBatch(nullptr, 0, sel), 0u);
  EXPECT_FALSE(set.Contains(42));
}

TEST(HashMap64Test, PutFindOverwriteGrow) {
  HashMap64 map;
  std::unordered_map<uint64_t, uint64_t> ref;
  util::Rng rng(0xd00d);
  for (int i = 0; i < 2000; ++i) {
    uint64_t key = rng.Next() % 500;  // Forces overwrites.
    uint64_t value = rng.Next();
    map.Put(key, value);
    ref[key] = value;
  }
  EXPECT_EQ(map.size(), ref.size());
  for (uint64_t key = 0; key < 500; ++key) {
    const uint64_t* found = map.Find(key);
    auto it = ref.find(key);
    if (it == ref.end()) {
      EXPECT_EQ(found, nullptr) << key;
    } else {
      ASSERT_NE(found, nullptr) << key;
      EXPECT_EQ(*found, it->second) << key;
    }
  }
}

// ---- TopK ----------------------------------------------------------------

struct ScoredRow {
  uint64_t score;
  uint64_t id;
};

struct ScoredLess {
  bool operator()(const ScoredRow& a, const ScoredRow& b) const {
    if (a.score != b.score) return a.score > b.score;
    return a.id < b.id;  // Unique id: total order.
  }
};

TEST(TopKTest, MatchesFullSortTruncate) {
  util::Rng rng(0x70bc);
  for (size_t k : {0, 1, 5, 64, 10000}) {
    std::vector<ScoredRow> rows;
    for (uint64_t i = 0; i < 500; ++i) {
      rows.push_back({rng.Next() % 50, i});  // Many score ties.
    }
    TopK<ScoredRow, ScoredLess> top(k);
    for (const ScoredRow& row : rows) top.Push(row);

    std::vector<ScoredRow> expect = rows;
    std::sort(expect.begin(), expect.end(), ScoredLess());
    if (expect.size() > k) expect.resize(k);

    std::vector<ScoredRow> got = top.Drain();
    ASSERT_EQ(got.size(), expect.size()) << "k=" << k;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].score, expect[i].score) << "k=" << k << " i=" << i;
      EXPECT_EQ(got[i].id, expect[i].id) << "k=" << k << " i=" << i;
    }
  }
}

// ---- Store-backed operators ----------------------------------------------

class ExecOperatorsTest : public ::testing::Test {
 protected:
  struct World {
    datagen::Dataset dataset;
    store::GraphStore store;
    std::unordered_map<uint64_t, std::vector<uint64_t>> adjacency;
  };

  static World& world() {
    static World* w = [] {
      auto* world = new World();
      datagen::DatagenConfig config;
      config.num_persons = 200;
      config.split_update_stream = false;
      world->dataset = datagen::Generate(config);
      EXPECT_TRUE(world->store.BulkLoad(world->dataset.bulk).ok());
      for (const schema::Knows& k : world->dataset.bulk.knows) {
        world->adjacency[k.person1_id].push_back(k.person2_id);
        world->adjacency[k.person2_id].push_back(k.person1_id);
      }
      for (auto& [pid, friends] : world->adjacency) {
        std::sort(friends.begin(), friends.end());
      }
      return world;
    }();
    return *w;
  }

  /// Brute-force two-hop circle: friends plus friends-of-friends, start
  /// excluded, sorted.
  static std::vector<uint64_t> ReferenceCircle(uint64_t start) {
    std::unordered_set<uint64_t> members;
    auto it = world().adjacency.find(start);
    if (it == world().adjacency.end()) return {};
    for (uint64_t f : it->second) {
      members.insert(f);
      auto fit = world().adjacency.find(f);
      if (fit == world().adjacency.end()) continue;
      for (uint64_t ff : fit->second) members.insert(ff);
    }
    members.erase(start);
    std::vector<uint64_t> out(members.begin(), members.end());
    std::sort(out.begin(), out.end());
    return out;
  }
};

TEST_F(ExecOperatorsTest, ExpandTwoHopSortedMatchesBruteForce) {
  auto pin = world().store.ReadLock();
  int checked = 0;
  for (const schema::Person& p : world().dataset.bulk.persons) {
    if (checked++ >= 40) break;
    std::vector<uint64_t> circle;
    TwoHopStats stats =
        ExpandTwoHopSorted(world().store, pin, p.id, &circle);
    std::vector<uint64_t> expect = ReferenceCircle(p.id);
    EXPECT_EQ(circle, expect) << "person " << p.id;
    auto it = world().adjacency.find(p.id);
    uint64_t direct = it == world().adjacency.end() ? 0 : it->second.size();
    EXPECT_EQ(stats.direct, direct) << "person " << p.id;
    // join2's Cout: one tuple per (friend, friend-of-friend) edge scanned.
    uint64_t fof_tuples = 0;
    if (it != world().adjacency.end()) {
      for (uint64_t f : it->second) {
        auto fit = world().adjacency.find(f);
        if (fit != world().adjacency.end()) fof_tuples += fit->second.size();
      }
    }
    EXPECT_EQ(stats.fof_tuples, fof_tuples) << "person " << p.id;
  }
}

TEST_F(ExecOperatorsTest, ExpandTwoHopSortedMissingPerson) {
  auto pin = world().store.ReadLock();
  std::vector<uint64_t> circle = {123};
  TwoHopStats stats = ExpandTwoHopSorted(world().store, pin,
                                         /*start=*/99999999, &circle);
  EXPECT_TRUE(circle.empty());
  EXPECT_EQ(stats.direct, 0u);
  EXPECT_EQ(stats.fof_tuples, 0u);
}

TEST_F(ExecOperatorsTest, MessageScanMatchesBruteForce) {
  // Per person: messages with date < max_date, date-ascending; only the
  // newest min(count, limit) emitted, persons in list order.
  auto pin = world().store.ReadLock();
  std::vector<uint64_t> persons;
  for (const schema::Person& p : world().dataset.bulk.persons) {
    persons.push_back(p.id);
  }
  persons.push_back(99999999);  // Missing person: skipped, not fatal.
  std::sort(persons.begin(), persons.end());

  int64_t mid_date = world()
                         .dataset.bulk
                         .messages[world().dataset.bulk.messages.size() / 2]
                         .creation_date;
  for (size_t limit : {size_t{3}, size_t{20}, SIZE_MAX}) {
    struct Row {
      uint64_t id, person;
      int64_t date;
    };
    std::vector<Row> expect;
    for (uint64_t pid : persons) {
      std::vector<Row> mine;
      for (const schema::Message& m : world().dataset.bulk.messages) {
        if (m.creator_id == pid && m.creation_date < mid_date) {
          mine.push_back({m.id, pid, m.creation_date});
        }
      }
      // Bulk messages are date-ascending, so `mine` already is; keep the
      // newest `limit`.
      size_t take = std::min(mine.size(), limit);
      expect.insert(expect.end(), mine.end() - take, mine.end());
    }

    MessageScanOperator scan(world().store, pin, persons, mid_date, limit);
    std::vector<Row> got;
    Batch batch;
    while (scan.Next(&batch)) {
      ASSERT_LE(batch.size, kBatchCapacity);
      for (size_t r = 0; r < batch.size; ++r) {
        got.push_back({batch.a[r], batch.b[r], batch.date[r]});
      }
    }
    EXPECT_EQ(scan.rows_emitted(), got.size());
    ASSERT_EQ(got.size(), expect.size()) << "limit=" << limit;
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, expect[i].id) << i;
      EXPECT_EQ(got[i].person, expect[i].person) << i;
      EXPECT_EQ(got[i].date, expect[i].date) << i;
    }
    // Exhausted operator stays exhausted.
    EXPECT_FALSE(scan.Next(&batch));
    EXPECT_EQ(batch.size, 0u);
  }
}

TEST_F(ExecOperatorsTest, MessageScanEmptyCases) {
  auto pin = world().store.ReadLock();
  Batch batch;
  std::vector<uint64_t> nobody;
  MessageScanOperator empty_list(world().store, pin, nobody, 1 << 30, 10);
  EXPECT_FALSE(empty_list.Next(&batch));

  std::vector<uint64_t> persons = {world().dataset.bulk.persons[0].id};
  MessageScanOperator no_dates(world().store, pin, persons,
                               /*max_date_exclusive=*/0, 10);
  EXPECT_FALSE(no_dates.Next(&batch));

  MessageScanOperator zero_limit(world().store, pin, persons, 1LL << 60, 0);
  EXPECT_FALSE(zero_limit.Next(&batch));
}

}  // namespace
}  // namespace snb::exec
