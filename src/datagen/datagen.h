// DATAGEN entry point: the three-step generation pipeline of section 2.4
// (person generation -> friendship generation -> person activity
// generation), followed by statistics collection and the bulk/update split.
//
// Generation is deterministic: for a fixed seed the dataset is identical
// regardless of `num_threads` (the substitute for Hadoop's
// configuration-independence property).
#ifndef SNB_DATAGEN_DATAGEN_H_
#define SNB_DATAGEN_DATAGEN_H_

#include <vector>

#include "datagen/config.h"
#include "datagen/statistics.h"
#include "datagen/update_stream.h"
#include "schema/dictionaries.h"
#include "schema/entities.h"

namespace snb::datagen {

/// A complete generated benchmark dataset.
struct Dataset {
  DatagenConfig config;
  /// The bulk-load portion (first 32 simulated months when splitting).
  schema::SocialNetwork bulk;
  /// The update stream (final 4 months), sorted by due time.
  std::vector<UpdateOperation> updates;
  /// Statistics over the *full* generated network (bulk + updates), used by
  /// parameter curation and the dataset-statistics benches.
  GenerationStats stats;
};

/// Runs the full pipeline with a private dictionary instance.
Dataset Generate(const DatagenConfig& config);

/// Runs the full pipeline reusing `dictionaries` (must have been built with
/// the same seed for cross-run determinism).
Dataset Generate(const DatagenConfig& config,
                 const schema::Dictionaries& dictionaries);

}  // namespace snb::datagen

#endif  // SNB_DATAGEN_DATAGEN_H_
