file(REMOVE_RECURSE
  "CMakeFiles/datagen_serializer_props_test.dir/datagen_serializer_props_test.cc.o"
  "CMakeFiles/datagen_serializer_props_test.dir/datagen_serializer_props_test.cc.o.d"
  "datagen_serializer_props_test"
  "datagen_serializer_props_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datagen_serializer_props_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
