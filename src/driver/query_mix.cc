#include "driver/query_mix.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/rng.h"

namespace snb::driver {
namespace {

using curation::PcTable;
using util::RandomPurpose;
using util::Rng;

// Picks a curated parameter for instance number `n` of a query, cycling.
schema::PersonId Cycle(const std::vector<uint64_t>& params, uint64_t n) {
  if (params.empty()) return schema::kInvalidId;
  return params[n % params.size()];
}

}  // namespace

MixCalibration CalibrateMix(const std::array<double, 14>& complex_cost_us,
                            uint64_t num_updates,
                            double mean_update_cost_us,
                            double mean_short_cost_us, double update_share,
                            double complex_share) {
  MixCalibration out;
  double short_share = 1.0 - update_share - complex_share;
  double update_total_us =
      static_cast<double>(num_updates) * std::max(mean_update_cost_us, 1e-3);
  double complex_total_us = update_total_us * complex_share / update_share;
  double short_total_us = update_total_us * short_share / update_share;

  // Equal CPU time per complex query type ("queries that touch more data
  // run less frequently").
  double per_query_us = complex_total_us / 14.0;
  double total_instances = 0.0;
  for (int q = 0; q < 14; ++q) {
    double cost = std::max(complex_cost_us[q], 1e-3);
    double instances = per_query_us / cost;
    uint64_t freq = instances >= 1.0
                        ? static_cast<uint64_t>(
                              static_cast<double>(num_updates) / instances)
                        : num_updates;
    out.frequencies[q] =
        static_cast<uint32_t>(std::clamp<uint64_t>(freq, 1, num_updates));
    total_instances += static_cast<double>(num_updates) / out.frequencies[q];
  }

  // Short reads are spawned by the random walk after every complex read;
  // choose the expected walk length to fill the remaining share. With
  // p starting at P=1 and decreasing by `decay` per step, the expected
  // number of steps is ~sqrt(pi / (2 * decay)).
  double walk_length = short_total_us /
                       std::max(mean_short_cost_us, 1e-3) /
                       std::max(total_instances, 1.0);
  walk_length = std::clamp(walk_length, 0.1, 10000.0);
  out.expected_walk_length = walk_length;
  if (walk_length <= 1.0) {
    out.short_read_initial_probability = walk_length;
    out.short_read_decay = 1.0;  // At most one step.
  } else {
    out.short_read_initial_probability = 1.0;
    out.short_read_decay =
        std::numbers::pi / (2.0 * walk_length * walk_length);
  }
  return out;
}

double FrequencyLogScale(uint64_t num_persons) {
  double base = std::log10(static_cast<double>(
      datagen::PersonsForScaleFactor(1.0)));
  double now = std::log10(static_cast<double>(std::max<uint64_t>(
      num_persons, 10)));
  return std::max(now / base, 0.1);
}

Workload BuildWorkload(const datagen::Dataset& dataset,
                       const schema::Dictionaries& dictionaries,
                       const QueryMixConfig& config) {
  Workload workload;

  // Curate person parameters once per parameter profile (section 4.1).
  PcTable q2_table = curation::BuildQuery2Table(dataset.stats);
  PcTable two_hop_table = curation::BuildTwoHopTable(dataset.stats);
  std::vector<uint64_t> one_hop_params =
      curation::CurateParameters(q2_table, config.params_per_query);
  std::vector<uint64_t> two_hop_params =
      curation::CurateParameters(two_hop_table, config.params_per_query);

  // Per-query choice of parameter profile: queries over the 1-hop circle
  // use the Q2 table, 2..3-hop queries the two-hop table.
  auto params_for_query = [&](int q) -> const std::vector<uint64_t>& {
    switch (q) {
      case 2:
      case 4:
      case 7:
      case 8:
      case 12:
        return one_hop_params;
      default:
        return two_hop_params;
    }
  };

  // Scaled frequencies.
  std::array<uint64_t, 14> freq;
  for (int q = 0; q < 14; ++q) {
    freq[q] = std::max<uint64_t>(
        1, static_cast<uint64_t>(config.frequencies[q] *
                                 config.frequency_scale));
  }

  Rng aux_rng(config.seed, 0x417, RandomPurpose::kQueryMix);
  std::array<uint64_t, 14> instance_count{};

  auto make_read = [&](int q, util::TimestampMs due) {
    Operation op;
    op.type = OperationType::kComplexRead;
    op.query_id = static_cast<uint8_t>(q);
    op.due_time = due;
    uint64_t n = instance_count[q - 1]++;
    op.person_param = Cycle(params_for_query(q), n);
    switch (q) {
      case 1:
        // A skewed-popular first name.
        op.aux0 = aux_rng.NextBounded(40);
        break;
      case 2:
      case 9:
        // "Created before": just before the operation's own simulation time.
        op.aux0 = static_cast<uint64_t>(due - util::kMillisPerDay);
        break;
      case 3: {
        op.aux0 = aux_rng.NextBounded(dictionaries.countries().size()) |
                  (aux_rng.NextBounded(dictionaries.countries().size())
                   << 8);
        op.aux1 = static_cast<uint64_t>(due - 90 * util::kMillisPerDay);
        break;
      }
      case 4:
        op.aux0 = static_cast<uint64_t>(due - 30 * util::kMillisPerDay);
        op.aux1 = 30;  // Duration days.
        break;
      case 5:
        op.aux0 = static_cast<uint64_t>(due - 60 * util::kMillisPerDay);
        break;
      case 6:
        op.aux0 = aux_rng.NextBounded(dictionaries.tags().size());
        break;
      case 10:
        op.aux0 = 1 + aux_rng.NextBounded(12);  // Horoscope month.
        break;
      case 11:
        op.aux0 = aux_rng.NextBounded(dictionaries.countries().size());
        op.aux1 = 2013;
        break;
      case 12:
        op.aux0 = aux_rng.NextBounded(dictionaries.tag_classes().size());
        break;
      case 13:
      case 14:
        op.person_param2 = Cycle(params_for_query(q), n + 7);
        break;
      default:
        break;
    }
    workload.operations.push_back(op);
    ++workload.num_complex_reads;
  };

  if (config.include_updates) {
    for (size_t i = 0; i < dataset.updates.size(); ++i) {
      const datagen::UpdateOperation& u = dataset.updates[i];
      Operation op;
      op.type = OperationType::kUpdate;
      op.update_index = static_cast<uint32_t>(i);
      op.update_kind = static_cast<uint8_t>(u.kind);
      op.due_time = u.due_time;
      op.dependency_time = u.dependency_time;
      op.person_dependency_time = u.person_dependency_time;
      op.forum_partition = u.forum_partition;
      // Person-graph operations are what other operations depend on across
      // streams; forum-tree dependencies are captured by sequential
      // per-forum execution.
      op.is_dependency = u.kind == datagen::UpdateKind::kAddPerson ||
                         u.kind == datagen::UpdateKind::kAddFriendship;
      workload.operations.push_back(op);
      ++workload.num_updates;

      if (config.include_complex_reads) {
        for (int q = 1; q <= 14; ++q) {
          if ((i + 1) % freq[q - 1] == 0) {
            make_read(q, u.due_time + 1);
          }
        }
      }
    }
  } else if (config.include_complex_reads) {
    // Read-only workload: schedule each query at its frequency over the
    // update-stream window even without executing updates.
    util::TimestampMs start = util::UpdateStreamStartMs();
    uint64_t virtual_updates = 20000;
    for (uint64_t i = 0; i < virtual_updates; ++i) {
      util::TimestampMs due =
          start + static_cast<util::TimestampMs>(i) * 1000;
      for (int q = 1; q <= 14; ++q) {
        if ((i + 1) % freq[q - 1] == 0) make_read(q, due);
      }
    }
  }

  std::stable_sort(workload.operations.begin(), workload.operations.end(),
                   [](const Operation& a, const Operation& b) {
                     return a.due_time < b.due_time;
                   });
  return workload;
}

}  // namespace snb::driver
