// Canonical result serialization for cross-SUT validation.
//
// The golden-set differ and the differential fuzzer compare query results
// produced by different engines (graph store, relational baseline, naive
// oracle) and by different runs (serial emit vs threaded replay). A
// comparison is only meaningful over a representation that is
//   * byte-stable across platforms and locales (no locale-dependent float
//     or integer formatting),
//   * total-ordered (every query's ORDER BY is extended with the remaining
//     row fields so equal-key rows cannot flip between runs), and
//   * human-readable enough that a diff report points at the failing field.
// CanonicalRow serializes one result row as a '|'-separated field list;
// CanonicalRows serializes a whole result set in its returned order, which
// every query defines totally (each comparator ends in a unique id or, for
// Q14, the full path).
#ifndef SNB_VALIDATE_CANONICAL_H_
#define SNB_VALIDATE_CANONICAL_H_

#include <string>
#include <vector>

#include "queries/complex_queries.h"
#include "queries/short_queries.h"

namespace snb::validate {

/// Locale-independent, platform-stable rendering of a double: shortest
/// round-trip form via %.17g with the decimal separator forced to '.',
/// "-0" normalized to "0" and NaN/inf spelled out ("nan", "inf", "-inf").
std::string FormatDouble(double value);

/// Locale-independent unsigned/signed integer rendering (no grouping).
std::string FormatU64(uint64_t value);
std::string FormatI64(int64_t value);

// One pipe-separated line per result row. Strings are included verbatim
// (query result strings never contain '|' in generated data; the diff is
// still sound if they do, since both sides serialize identically).
std::string CanonicalRow(const queries::Q1Result& r);
std::string CanonicalRow(const queries::Q2Result& r);
std::string CanonicalRow(const queries::Q3Result& r);
std::string CanonicalRow(const queries::Q4Result& r);
std::string CanonicalRow(const queries::Q5Result& r);
std::string CanonicalRow(const queries::Q6Result& r);
std::string CanonicalRow(const queries::Q7Result& r);
std::string CanonicalRow(const queries::Q8Result& r);
std::string CanonicalRow(const queries::Q9Result& r);
std::string CanonicalRow(const queries::Q10Result& r);
std::string CanonicalRow(const queries::Q11Result& r);
std::string CanonicalRow(const queries::Q12Result& r);
std::string CanonicalRow(const queries::Q14Result& r);
std::string CanonicalRow(const queries::S1Result& r);
std::string CanonicalRow(const queries::S2Result& r);
std::string CanonicalRow(const queries::S3Result& r);
std::string CanonicalRow(const queries::S4Result& r);
std::string CanonicalRow(const queries::S5Result& r);
std::string CanonicalRow(const queries::S6Result& r);
std::string CanonicalRow(const queries::S7Result& r);

/// Serializes a whole result set, preserving the query's returned order
/// (which is part of the query contract being validated).
template <typename Row>
std::vector<std::string> CanonicalRows(const std::vector<Row>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Row& r : rows) out.push_back(CanonicalRow(r));
  return out;
}

/// Scalar results (Q13) become a single-row result set.
std::vector<std::string> CanonicalScalar(int value);

}  // namespace snb::validate

#endif  // SNB_VALIDATE_CANONICAL_H_
