# Empty dependencies file for bench_fig2b_degree_percentiles.
# This may be replaced when dependencies are built.
