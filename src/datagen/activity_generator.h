// Person-activity generation (paper section 2.4, "person activity
// generation"): forums, memberships, discussion trees of posts/comments,
// photos, and likes.
//
// Activity is tree-structured and parallelized by the person who owns the
// forum: a worker needs the owner's attributes (interests drive post topics)
// and the owner's friend list with friendship creation dates (only friends
// post comments and likes, and only after the friendship was created) —
// otherwise workers operate independently.
//
// Time correlations (Table 1, bottom rows) are enforced here:
//   person.createdDate < forum.createdDate < membership.joinedDate
//   < post.createdDate < comment.createdDate, likes after the liked message.
// Post volume over time is either uniform or event-driven ("spiking
// trends", Figure 2a): posts cluster after simulated real-world events whose
// topic matches the creator's interests, with exponentially decaying
// intensity (Leskovec et al. meme dynamics).
#ifndef SNB_DATAGEN_ACTIVITY_GENERATOR_H_
#define SNB_DATAGEN_ACTIVITY_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "datagen/config.h"
#include "schema/dictionaries.h"
#include "schema/entities.h"
#include "util/thread_pool.h"

namespace snb::datagen {

/// A simulated trending event: posts about `tag` spike after `time`.
struct TrendEvent {
  util::TimestampMs time = 0;
  schema::TagId tag = 0;
  /// Relative importance; pick probability is proportional to it.
  double magnitude = 1.0;
};

/// Activity of the whole network: appended into `network` (which must
/// already contain persons and knows edges). Message ids are assigned in
/// creation-time order across the whole network (the paper's RDF
/// URI-locality property).
void GenerateActivity(const DatagenConfig& config,
                      const schema::Dictionaries& dictionaries,
                      schema::SocialNetwork& network,
                      util::ThreadPool& pool);

/// The deterministic event list used for event-driven post generation
/// (exposed for tests and the Figure 2a bench).
std::vector<TrendEvent> MakeTrendEvents(uint64_t seed);

}  // namespace snb::datagen

#endif  // SNB_DATAGEN_ACTIVITY_GENERATOR_H_
