// Bounded single-producer / single-consumer ring queue.
//
// Built for the sharded store's update fan-out (driver/shard_writers.h):
// one producer thread splits each update into per-shard sub-operations and
// pushes them onto the owning shard's queue; that shard's writer thread is
// the only consumer. With exactly one thread on each end, a head/tail
// index pair with acquire/release ordering is a complete protocol — no
// CAS, no locks, and the slots themselves need no atomicity because the
// index handoff publishes them.
//
// head_ is written only by the consumer, tail_ only by the producer; both
// live on their own cache line so the producer's stores never invalidate
// the consumer's hot line (and vice versa) except through the indices
// themselves.
#ifndef SNB_UTIL_SPSC_QUEUE_H_
#define SNB_UTIL_SPSC_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace snb::util {

template <typename T>
class SpscQueue {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2) so wrapping
  /// is a mask, not a division.
  explicit SpscQueue(size_t capacity) {
    size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    ring_ = std::make_unique<T[]>(cap);
  }
  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Producer side. False when the ring is full.
  bool TryPush(const T& value) {
    uint64_t tail = tail_.load(std::memory_order_relaxed);
    uint64_t head = head_.load(std::memory_order_acquire);
    if (tail - head > mask_) return false;
    ring_[tail & mask_] = value;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. False when the ring is empty.
  bool TryPop(T* out) {
    uint64_t head = head_.load(std::memory_order_relaxed);
    uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return false;
    *out = ring_[head & mask_];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Approximate occupancy (exact on either owning thread).
  size_t size() const {
    uint64_t tail = tail_.load(std::memory_order_acquire);
    uint64_t head = head_.load(std::memory_order_acquire);
    return static_cast<size_t>(tail - head);
  }

  bool empty() const { return size() == 0; }

  size_t capacity() const { return mask_ + 1; }

 private:
  size_t mask_ = 0;
  std::unique_ptr<T[]> ring_;
  alignas(64) std::atomic<uint64_t> head_{0};  // Consumer cursor.
  alignas(64) std::atomic<uint64_t> tail_{0};  // Producer cursor.
};

}  // namespace snb::util

#endif  // SNB_UTIL_SPSC_QUEUE_H_
