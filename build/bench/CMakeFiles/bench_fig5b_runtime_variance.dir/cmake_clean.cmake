file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5b_runtime_variance.dir/bench_fig5b_runtime_variance.cc.o"
  "CMakeFiles/bench_fig5b_runtime_variance.dir/bench_fig5b_runtime_variance.cc.o.d"
  "bench_fig5b_runtime_variance"
  "bench_fig5b_runtime_variance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5b_runtime_variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
