// Whole-program direct-call graph reconstructed from binutils output.
//
// objtool-style: the analyzed artifact is the *linked binary*, not the
// source — what the compiler actually emitted is what runs, inlining,
// clones and all. Two text inputs, both produced by tools the GCC-only
// container already ships:
//
//   * `objdump -d --no-show-raw-insn -w <bin>`  — disassembly, parsed
//     into function nodes (keyed by address — local symbol names are NOT
//     unique: anonymous-namespace functions in different TUs share a
//     mangled name) with direct-call/tail-jump edges and flagged
//     indirect transfers;
//   * `objdump -t <bin>` — the symbol table, used to read back the
//     SNB_INVARIANT_ROOT tags (symbols in sections named
//     "snb_invariants.<domain>.<line>").
//
// Conservative treatment of control transfers (x86-64; the parser is
// syntax-driven, so AArch64 `bl` support would slot in the same way):
//
//   * `call <addr>`            — direct edge to the function containing
//                                 <addr> (mid-function targets resolve to
//                                 their containing function);
//   * `j*  <addr>` outside the current function — tail-call edge
//                                 (conditional or not);
//   * `call *<anything>`       — indirect call: recorded and, by default,
//                                 a rule violation unless the containing
//                                 function is allowlisted for indirect
//                                 calls;
//   * `jmp *<reg>` / `jmp *<rip-mem>` — indirect tail transfer, treated
//                                 like an indirect call (except inside
//                                 @plt stubs, whose GOT jump is the
//                                 trampoline mechanism itself);
//   * `jmp *<indexed-mem>` (e.g. `jmp *0x40(,%rax,8)`) — compiler jump
//                                 table for a switch: intra-function by
//                                 construction for compiler-generated
//                                 code, so it is counted but not flagged.
//                                 This is the documented soundness gap
//                                 for hand-written assembly, which the
//                                 repo does not contain.
//
// Functions named `<sym>@plt` are external trampolines: they become leaf
// nodes whose match name is `<sym>` demangled (so a manifest can write
// "operator new*" instead of "_Znwm*"), and their bodies are not
// analyzed.
#ifndef SNB_TOOLS_INVARIANTS_CALLGRAPH_H_
#define SNB_TOOLS_INVARIANTS_CALLGRAPH_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace snb::inv {

/// One flagged indirect control transfer inside a function.
struct IndirectSite {
  uint64_t addr = 0;     // Instruction address.
  std::string text;      // Mnemonic + operand, for reporting.
};

/// One disassembled function.
struct FuncNode {
  uint64_t addr = 0;
  std::string raw;         // objdump label, e.g. "_ZN3snb..." or "free@plt".
  std::string display;     // Demangled, clone suffix rendered: "f() [.cold]".
  std::string match_name;  // Demangled base used for pattern matching.
  bool plt = false;        // External trampoline; body not analyzed.
  std::vector<uint64_t> callees;       // Unique callee function addresses.
  std::vector<IndirectSite> indirect;  // Flagged indirect transfers.
  uint64_t jump_table_jmps = 0;        // Ignored indexed indirect jumps.
};

class CallGraph {
 public:
  /// Builds the graph from `objdump -d --no-show-raw-insn` text. Never
  /// fails hard: unparseable instruction lines are skipped (objdump emits
  /// plenty of noise — section banners, ellipses, alignment padding).
  static CallGraph FromDisassembly(const std::string& text);

  /// Function whose [start, next_start) range covers `addr`; nullptr when
  /// addr precedes every function.
  const FuncNode* Containing(uint64_t addr) const;

  /// All functions whose match_name equals `name` (local aliasing and
  /// clones make this one-to-many).
  std::vector<const FuncNode*> ByMatchName(const std::string& name) const;

  const std::map<uint64_t, FuncNode>& funcs() const { return funcs_; }

 private:
  std::map<uint64_t, FuncNode> funcs_;  // Keyed by start address.
  std::multimap<std::string, uint64_t> by_match_;
};

/// One `objdump -t` row.
struct SymbolEntry {
  uint64_t addr = 0;
  std::string section;
  uint64_t size = 0;
  std::string name;
};

/// Parses `objdump -t` output; unrecognized lines are skipped.
std::vector<SymbolEntry> ParseSymbolTable(const std::string& text);

/// One SNB_INVARIANT_ROOT tag read back from the binary.
struct RootTag {
  std::string domain;    // From the section name.
  std::string function;  // Demangled enclosing function.
  std::string symbol;    // The tag symbol itself (diagnostics).
};

/// Extracts tags from symbols in "snb_invariants.<domain>.<line>"
/// sections. Tags whose enclosing function cannot be recovered (C-linkage
/// functions, malformed symbols) are reported into `errors`.
std::vector<RootTag> ExtractRootTags(const std::vector<SymbolEntry>& symbols,
                                     std::vector<std::string>* errors);

/// abi::__cxa_demangle wrapper; returns `mangled` unchanged on failure
/// (plain C symbols pass through).
std::string Demangle(const std::string& mangled);

/// Strips GCC clone suffixes (".cold", ".part.N", ".constprop.N",
/// ".isra.N", ".lto_priv.N"), repeatedly, returning the base symbol.
/// The removed suffix text lands in *suffix (empty when none).
std::string StripCloneSuffix(const std::string& raw, std::string* suffix);

/// Glob match with '*' (any run) and '?' (any one char); everything else
/// literal. Matches the whole string.
bool GlobMatch(const std::string& pattern, const std::string& text);

}  // namespace snb::inv

#endif  // SNB_TOOLS_INVARIANTS_CALLGRAPH_H_
