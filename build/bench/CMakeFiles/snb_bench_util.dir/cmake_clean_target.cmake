file(REMOVE_RECURSE
  "libsnb_bench_util.a"
)
