// Table 3 reproduction: SNB dataset statistics at different (mini) scale
// factors — nodes, edges, persons, friendships, messages, forums, and the
// measured CSV gigabytes that define the LDBC scale factor.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

namespace snb::bench {
namespace {

void Run() {
  PrintHeader("Table 3 — dataset statistics per (mini) scale factor");
  std::printf("  %-7s %10s %10s %9s %10s %10s %8s %9s\n", "SF", "Nodes",
              "Edges", "Persons", "Friends", "Messages", "Forums",
              "CSV-GB");
  std::printf("  (counts in thousands, CSV-GB measured uncompressed)\n");

  std::vector<double> sfs = {0.05, 0.1, 0.2, 0.4};
  for (double sf : sfs) {
    datagen::DatagenConfig config =
        datagen::DatagenConfig::ForScaleFactor(sf);
    config.split_update_stream = false;
    datagen::Dataset ds = datagen::Generate(config);
    const datagen::GenerationStats& s = ds.stats;
    std::printf("  %-7.2f %10.1f %10.1f %9.2f %10.1f %10.1f %8.1f %9.4f\n",
                sf, s.NumNodes() / 1000.0, s.NumEdges() / 1000.0,
                s.num_persons / 1000.0, s.num_knows / 1000.0,
                s.NumMessages() / 1000.0, s.num_forums / 1000.0,
                s.csv_bytes / 1e9);
  }
  std::printf(
      "\n  Paper Table 3 anchors (SF -> persons/messages in millions):\n"
      "    SF30: 0.18 / 97.4   SF100: 0.50 / 312.1   SF300: 1.25 / 893.7\n"
      "  Shape to check: all entity families scale ~linearly with SF, and\n"
      "  messages dominate node count by ~2 orders of magnitude over persons.\n\n");
}

}  // namespace
}  // namespace snb::bench

int main() {
  snb::bench::Run();
  return 0;
}
