#include "queries/update_queries.h"

namespace snb::queries {

using datagen::UpdateKind;
using datagen::UpdateOperation;

util::Status ApplyUpdate(store::GraphStore& store, const UpdateOperation& op) {
  switch (op.kind) {
    case UpdateKind::kAddPerson:
      return store.AddPerson(std::get<schema::Person>(op.payload));
    case UpdateKind::kAddFriendship:
      return store.AddFriendship(std::get<schema::Knows>(op.payload));
    case UpdateKind::kAddForum:
      return store.AddForum(std::get<schema::Forum>(op.payload));
    case UpdateKind::kAddForumMembership:
      return store.AddForumMembership(
          std::get<schema::ForumMembership>(op.payload));
    case UpdateKind::kAddPost:
    case UpdateKind::kAddComment:
      return store.AddMessage(std::get<schema::Message>(op.payload));
    case UpdateKind::kAddLikePost:
    case UpdateKind::kAddLikeComment:
      return store.AddLike(std::get<schema::Like>(op.payload));
  }
  return util::Status::InvalidArgument("unknown update kind");
}

}  // namespace snb::queries
