// Figure 3a reproduction: friendship degree distribution of the generated
// graph (log-binned histogram; power-law-shaped with a long tail).
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "util/histogram.h"

namespace snb::bench {
namespace {

void Run() {
  PrintHeader("Figure 3a — friendship degree distribution");
  std::unique_ptr<BenchWorld> world = MakeWorld(kLargeSf, false, false);
  const datagen::GenerationStats& stats = world->dataset.stats;

  uint32_t max_degree = 0;
  double sum = 0;
  for (uint32_t d : stats.friend_count) {
    max_degree = std::max(max_degree, d);
    sum += d;
  }
  double avg = sum / stats.friend_count.size();

  // Geometric bins.
  std::vector<uint64_t> bins;
  std::vector<uint32_t> edges = {0};
  uint32_t edge = 1;
  while (edge <= max_degree) {
    edges.push_back(edge);
    edge *= 2;
  }
  edges.push_back(max_degree + 1);
  bins.assign(edges.size() - 1, 0);
  for (uint32_t d : stats.friend_count) {
    for (size_t b = 0; b + 1 < edges.size(); ++b) {
      if (d >= edges[b] && d < edges[b + 1]) {
        ++bins[b];
        break;
      }
    }
  }
  uint64_t max_bin = 1;
  for (uint64_t b : bins) max_bin = std::max(max_bin, b);
  std::printf("  %-14s %-8s\n", "degree range", "count");
  for (size_t b = 0; b + 1 < edges.size(); ++b) {
    char range[32];
    std::snprintf(range, sizeof(range), "[%u,%u)", edges[b], edges[b + 1]);
    std::printf("  %-14s %-8llu %s\n", range,
                (unsigned long long)bins[b],
                Bar(static_cast<double>(bins[b]), static_cast<double>(max_bin), 40)
                    .c_str());
  }
  std::printf("\n  persons %zu, avg degree %.1f, max degree %u\n",
              stats.friend_count.size(), avg, max_degree);
  std::printf(
      "  Shape to check: unimodal bulk with a heavy right tail (max degree\n"
      "  several times the mean), as in the paper's SF10 plot.\n\n");
}

}  // namespace
}  // namespace snb::bench

int main() {
  snb::bench::Run();
  return 0;
}
