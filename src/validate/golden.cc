#include "validate/golden.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <utility>

#include "driver/connectors.h"
#include "driver/operation.h"
#include "obs/report.h"
#include "queries/complex_queries.h"
#include "queries/short_queries.h"
#include "queries/update_queries.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "validate/canonical.h"
#include "validate/json_io.h"

namespace snb::validate {
namespace {

constexpr char kSchemaTag[] = "snb-validation-v1";

// Probe ids guaranteed absent from any generated dataset (far above every
// allocated id, below the store's kMaxEntityId bound).
constexpr schema::PersonId kMissingPersonId = (1ULL << 39) + 7;
constexpr schema::MessageId kMissingMessageId = (1ULL << 39) + 13;

// ---- Battery --------------------------------------------------------------

/// Dataset- and dictionary-derived inputs the read battery needs; identical
/// at emit and replay by construction (pure function of seed).
struct BatteryContext {
  const datagen::Dataset* dataset = nullptr;
  std::vector<schema::PlaceId> city_country;
  std::vector<schema::PlaceId> company_country;
  /// tag_in_class[c][t]: tag t belongs to tag class c.
  std::vector<std::vector<bool>> tag_in_class;
  size_t num_countries = 1;
  size_t num_tags = 1;
  uint64_t seed = 0;
};

BatteryContext MakeBatteryContext(const datagen::Dataset& dataset,
                                  const schema::Dictionaries& dict,
                                  uint64_t seed) {
  BatteryContext ctx;
  ctx.dataset = &dataset;
  ctx.seed = seed;
  ctx.city_country.reserve(dict.cities().size());
  for (const schema::City& city : dict.cities()) {
    ctx.city_country.push_back(city.country_id);
  }
  ctx.company_country.reserve(dict.companies().size());
  for (const schema::Company& company : dict.companies()) {
    ctx.company_country.push_back(company.country_id);
  }
  ctx.tag_in_class.assign(dict.tag_classes().size(),
                          std::vector<bool>(dict.tags().size(), false));
  for (size_t t = 0; t < dict.tags().size(); ++t) {
    schema::TagClassId c = dict.tags()[t].tag_class_id;
    if (c < ctx.tag_in_class.size()) ctx.tag_in_class[c][t] = true;
  }
  if (!dict.countries().empty()) ctx.num_countries = dict.countries().size();
  if (!dict.tags().empty()) ctx.num_tags = dict.tags().size();
  return ctx;
}

/// One battery operation: name, parameter rendering, and a runner producing
/// the canonical rows. Runners only read the store, so they are safe to
/// execute concurrently during replay.
struct BatteryTask {
  std::string op;
  std::string params;
  std::function<std::vector<std::string>()> run;
};

std::string P(const char* name, uint64_t v) {
  return std::string(name) + "=" + FormatU64(v);
}

/// Builds the deterministic read battery for one segment. All parameter
/// randomness derives from (seed, segment), never from store state, so emit
/// and replay choose identical bindings even if the stores diverge.
std::vector<BatteryTask> BuildBattery(const store::GraphStore& store,
                                      const BatteryContext& ctx,
                                      int segment_index, uint64_t updates_end) {
  const datagen::Dataset& ds = *ctx.dataset;
  const store::GraphStore* st = &store;
  util::Rng rng(ctx.seed, 0xBA77E500ULL + static_cast<uint64_t>(segment_index),
                util::RandomPurpose::kParameterPick);

  // Probe persons: bulk samples, the most recent update-added person (when
  // the segment has one), and a guaranteed-absent id.
  std::vector<schema::PersonId> persons;
  for (int i = 0; i < 4; ++i) {
    persons.push_back(
        ds.bulk.persons[rng.NextBounded(ds.bulk.persons.size())].id);
  }
  schema::PersonId update_person = schema::kInvalidId;
  schema::MessageId update_message = schema::kInvalidId;
  for (uint64_t i = 0; i < updates_end; ++i) {
    const datagen::UpdateOperation& u = ds.updates[i];
    if (u.kind == datagen::UpdateKind::kAddPerson) {
      if (const auto* p = std::get_if<schema::Person>(&u.payload)) {
        update_person = p->id;
      }
    } else if (u.kind == datagen::UpdateKind::kAddPost ||
               u.kind == datagen::UpdateKind::kAddComment) {
      if (const auto* m = std::get_if<schema::Message>(&u.payload)) {
        update_message = m->id;
      }
    }
  }
  if (update_person != schema::kInvalidId) persons.push_back(update_person);
  persons.push_back(kMissingPersonId);

  // Probe messages: bulk samples, the most recent update-added message, and
  // a guaranteed-absent id.
  std::vector<schema::MessageId> messages;
  if (!ds.bulk.messages.empty()) {
    for (int i = 0; i < 3; ++i) {
      messages.push_back(
          ds.bulk.messages[rng.NextBounded(ds.bulk.messages.size())].id);
    }
  }
  if (update_message != schema::kInvalidId) messages.push_back(update_message);
  messages.push_back(kMissingMessageId);

  const size_t num_countries = ctx.num_countries;

  std::vector<BatteryTask> tasks;
  for (schema::PersonId person : persons) {
    {
      std::string name =
          ds.bulk.persons[rng.NextBounded(ds.bulk.persons.size())].first_name;
      tasks.push_back({"complex.Q1", P("person", person) + " name=" + name,
                       [st, person, name] {
                         return CanonicalRows(queries::Query1(*st, person,
                                                              name));
                       }});
    }
    {
      util::TimestampMs max_date =
          util::kNetworkStartMs +
          rng.NextInRange(12 * 30, 36 * 30) * util::kMillisPerDay;
      tasks.push_back({"complex.Q2",
                       P("person", person) + " " +
                           P("max_date", static_cast<uint64_t>(max_date)),
                       [st, person, max_date] {
                         return CanonicalRows(
                             queries::Query2(*st, person, max_date));
                       }});
    }
    {
      auto cx = static_cast<schema::PlaceId>(rng.NextBounded(num_countries));
      auto cy = static_cast<schema::PlaceId>(
          (cx + 1 + rng.NextBounded(num_countries > 1 ? num_countries - 1
                                                      : 1)) %
          num_countries);
      util::TimestampMs start = util::kNetworkStartMs +
                                rng.NextBounded(30 * 30) * util::kMillisPerDay;
      int days = 30 + static_cast<int>(rng.NextBounded(60));
      tasks.push_back(
          {"complex.Q3",
           P("person", person) + " " + P("x", cx) + " " + P("y", cy) + " " +
               P("start", static_cast<uint64_t>(start)) + " " +
               P("days", static_cast<uint64_t>(days)),
           [st, &ctx, person, cx, cy, start, days] {
             return CanonicalRows(queries::Query3(*st, person,
                                                  ctx.city_country, cx, cy,
                                                  start, days));
           }});
    }
    {
      util::TimestampMs start = util::kNetworkStartMs +
                                rng.NextBounded(34 * 30) * util::kMillisPerDay;
      tasks.push_back({"complex.Q4",
                       P("person", person) + " " +
                           P("start", static_cast<uint64_t>(start)),
                       [st, person, start] {
                         return CanonicalRows(
                             queries::Query4(*st, person, start, 30));
                       }});
    }
    {
      util::TimestampMs min_date = util::kNetworkStartMs +
                                   rng.NextBounded(36 * 30) *
                                       util::kMillisPerDay;
      tasks.push_back({"complex.Q5",
                       P("person", person) + " " +
                           P("min_date", static_cast<uint64_t>(min_date)),
                       [st, person, min_date] {
                         return CanonicalRows(
                             queries::Query5(*st, person, min_date));
                       }});
    }
    {
      auto tag = static_cast<schema::TagId>(rng.NextBounded(ctx.num_tags));
      tasks.push_back({"complex.Q6", P("person", person) + " " + P("tag", tag),
                       [st, person, tag] {
                         return CanonicalRows(queries::Query6(*st, person,
                                                              tag));
                       }});
    }
    tasks.push_back({"complex.Q7", P("person", person), [st, person] {
                       return CanonicalRows(queries::Query7(*st, person));
                     }});
    tasks.push_back({"complex.Q8", P("person", person), [st, person] {
                       return CanonicalRows(queries::Query8(*st, person));
                     }});
    {
      util::TimestampMs max_date =
          util::kNetworkStartMs +
          rng.NextInRange(12 * 30, 36 * 30) * util::kMillisPerDay;
      tasks.push_back({"complex.Q9",
                       P("person", person) + " " +
                           P("max_date", static_cast<uint64_t>(max_date)),
                       [st, person, max_date] {
                         return CanonicalRows(
                             queries::Query9(*st, person, max_date));
                       }});
    }
    {
      int month = 1 + static_cast<int>(rng.NextBounded(12));
      tasks.push_back({"complex.Q10",
                       P("person", person) + " " +
                           P("month", static_cast<uint64_t>(month)),
                       [st, person, month] {
                         return CanonicalRows(
                             queries::Query10(*st, person, month));
                       }});
    }
    {
      auto country =
          static_cast<schema::PlaceId>(rng.NextBounded(num_countries));
      auto year = static_cast<uint16_t>(2005 + rng.NextBounded(10));
      tasks.push_back(
          {"complex.Q11",
           P("person", person) + " " + P("country", country) + " " +
               P("year", year),
           [st, &ctx, person, country, year] {
             return CanonicalRows(queries::Query11(
                 *st, person, ctx.company_country, country, year));
           }});
    }
    {
      size_t cls = ctx.tag_in_class.empty()
                       ? 0
                       : rng.NextBounded(ctx.tag_in_class.size());
      tasks.push_back(
          {"complex.Q12", P("person", person) + " " + P("class", cls),
           [st, &ctx, person, cls] {
             static const std::vector<bool> kEmpty;
             const std::vector<bool>& in_class =
                 cls < ctx.tag_in_class.size() ? ctx.tag_in_class[cls]
                                               : kEmpty;
             return CanonicalRows(queries::Query12(*st, person, in_class));
           }});
    }
    tasks.push_back({"short.S1", P("person", person), [st, person] {
                       return std::vector<std::string>{CanonicalRow(
                           queries::ShortQuery1PersonProfile(*st, person))};
                     }});
    tasks.push_back({"short.S2", P("person", person), [st, person] {
                       return CanonicalRows(
                           queries::ShortQuery2RecentMessages(*st, person));
                     }});
    tasks.push_back({"short.S3", P("person", person), [st, person] {
                       return CanonicalRows(
                           queries::ShortQuery3Friends(*st, person));
                     }});
  }

  // Path queries over probe pairs (including an absent endpoint).
  const std::vector<std::pair<schema::PersonId, schema::PersonId>> pairs = {
      {persons[0], persons[1]},
      {persons[2], persons[3]},
      {persons[0], kMissingPersonId},
  };
  for (auto [p1, p2] : pairs) {
    tasks.push_back({"complex.Q13", P("p1", p1) + " " + P("p2", p2),
                     [st, p1 = p1, p2 = p2] {
                       return CanonicalScalar(queries::Query13(*st, p1, p2));
                     }});
    tasks.push_back({"complex.Q14", P("p1", p1) + " " + P("p2", p2),
                     [st, p1 = p1, p2 = p2] {
                       return CanonicalRows(queries::Query14(*st, p1, p2));
                     }});
  }

  for (schema::MessageId message : messages) {
    tasks.push_back({"short.S4", P("message", message), [st, message] {
                       return std::vector<std::string>{CanonicalRow(
                           queries::ShortQuery4MessageContent(*st, message))};
                     }});
    tasks.push_back({"short.S5", P("message", message), [st, message] {
                       return std::vector<std::string>{CanonicalRow(
                           queries::ShortQuery5MessageCreator(*st, message))};
                     }});
    tasks.push_back({"short.S6", P("message", message), [st, message] {
                       return std::vector<std::string>{CanonicalRow(
                           queries::ShortQuery6MessageForum(*st, message))};
                     }});
    tasks.push_back({"short.S7", P("message", message), [st, message] {
                       return CanonicalRows(
                           queries::ShortQuery7MessageReplies(*st, message));
                     }});
  }
  return tasks;
}

/// Executes the battery; with a pool, tasks run concurrently and land in
/// their slot (replay's thread-count stress), otherwise strictly in order.
std::vector<GoldenOp> RunBattery(const std::vector<BatteryTask>& tasks,
                                 util::ThreadPool* pool) {
  std::vector<GoldenOp> out(tasks.size());
  if (pool == nullptr) {
    for (size_t i = 0; i < tasks.size(); ++i) {
      out[i] = {tasks[i].op, tasks[i].params, tasks[i].run()};
    }
    return out;
  }
  for (size_t i = 0; i < tasks.size(); ++i) {
    pool->Submit([&tasks, &out, i] {
      out[i] = {tasks[i].op, tasks[i].params, tasks[i].run()};
    });
  }
  pool->Wait();
  return out;
}

void FillCounts(const store::GraphStore& store, GoldenSegment* segment) {
  segment->num_persons = store.NumPersons();
  segment->num_knows = store.NumKnowsEdges();
  segment->num_forums = store.NumForums();
  segment->num_memberships = store.NumMemberships();
  segment->num_messages = store.NumMessages();
  segment->num_likes = store.NumLikes();
}

// ---- JSON helpers ---------------------------------------------------------

using jsonio::AppendEscaped;
using jsonio::AppendKey;
using jsonio::AppendU64Field;

constexpr char kWhat[] = "validation set";

util::Status ParseFail(const std::string& what) {
  return util::Status::InvalidArgument(std::string(kWhat) + ": " + what);
}

util::Status GetU64(const obs::JsonValue& obj, const char* key,
                    uint64_t* out) {
  return jsonio::GetU64(obj, key, out, kWhat);
}

util::Status GetString(const obs::JsonValue& obj, const char* key,
                       std::string* out) {
  return jsonio::GetString(obj, key, out, kWhat);
}

// ---- Replay helpers -------------------------------------------------------

/// Builds driver operations for the update-stream slice [begin, end) using
/// the same recipe as the benchmark workload builder (query_mix.cc), so the
/// replay exercises the exact driver scheduling paths the benchmark uses.
std::vector<driver::Operation> BuildUpdateOps(
    const std::vector<datagen::UpdateOperation>& updates, uint64_t begin,
    uint64_t end) {
  std::vector<driver::Operation> ops;
  ops.reserve(end - begin);
  for (uint64_t i = begin; i < end; ++i) {
    const datagen::UpdateOperation& u = updates[i];
    driver::Operation op;
    op.type = driver::OperationType::kUpdate;
    op.update_index = static_cast<uint32_t>(i);
    op.update_kind = static_cast<uint8_t>(u.kind);
    op.due_time = u.due_time;
    op.dependency_time = u.dependency_time;
    op.person_dependency_time = u.person_dependency_time;
    op.forum_partition = u.forum_partition;
    op.is_dependency = u.kind == datagen::UpdateKind::kAddPerson ||
                       u.kind == datagen::UpdateKind::kAddFriendship;
    ops.push_back(op);
  }
  return ops;
}

void RecordDiff(ReplayOutcome* out, int segment, uint64_t op_index,
                const GoldenOp& golden_op, uint64_t row,
                const std::string& expected, const std::string& actual) {
  if (out->diffs == 0) {
    out->first.segment = segment;
    out->first.op_index = op_index;
    out->first.op = golden_op.op;
    out->first.params = golden_op.params;
    out->first.row = row;
    out->first.expected = expected;
    out->first.actual = actual;
  }
  ++out->diffs;
}

std::string CountsRow(uint64_t persons, uint64_t knows, uint64_t forums,
                      uint64_t memberships, uint64_t msgs, uint64_t likes) {
  return "persons=" + FormatU64(persons) + " knows=" + FormatU64(knows) +
         " forums=" + FormatU64(forums) +
         " memberships=" + FormatU64(memberships) +
         " messages=" + FormatU64(msgs) + " likes=" + FormatU64(likes);
}

}  // namespace

// ---- Emission -------------------------------------------------------------

util::Status EmitGoldenSet(const GoldenEmitOptions& options, GoldenSet* out) {
  if (options.num_segments < 1) {
    return util::Status::InvalidArgument("num_segments must be >= 1");
  }
  if (options.num_persons < 50) {
    return util::Status::InvalidArgument(
        "num_persons must be >= 50 (datagen floor)");
  }
  datagen::DatagenConfig config;
  config.seed = options.seed;
  config.num_persons = options.num_persons;
  schema::Dictionaries dict(options.seed);
  datagen::Dataset dataset = datagen::Generate(config, dict);
  BatteryContext ctx = MakeBatteryContext(dataset, dict, options.seed);

  store::GraphStore store;
  SNB_RETURN_IF_ERROR(store.BulkLoad(dataset.bulk));

  out->seed = options.seed;
  out->num_persons = options.num_persons;
  out->segments.clear();

  uint64_t applied = 0;
  for (int seg = 0; seg <= options.num_segments; ++seg) {
    uint64_t end = seg == 0 ? 0
                            : dataset.updates.size() *
                                  static_cast<uint64_t>(seg) /
                                  static_cast<uint64_t>(options.num_segments);
    for (; applied < end; ++applied) {
      util::Status status =
          queries::ApplyUpdate(store, dataset.updates[applied]);
      if (!status.ok()) {
        return util::Status::Internal(
            "serial reference run failed at update " + FormatU64(applied) +
            ": " + status.ToString());
      }
    }
    GoldenSegment segment;
    segment.updates_end = end;
    FillCounts(store, &segment);
    segment.operations = RunBattery(BuildBattery(store, ctx, seg, end),
                                    /*pool=*/nullptr);
    out->segments.push_back(std::move(segment));
  }
  return util::Status::Ok();
}

// ---- Serialization --------------------------------------------------------

std::string GoldenSetToJson(const GoldenSet& golden) {
  std::string out = "{";
  AppendKey(&out, "schema");
  AppendEscaped(&out, kSchemaTag);
  out += ",";
  AppendKey(&out, "seed");
  AppendEscaped(&out, FormatU64(golden.seed));
  out += ",";
  AppendU64Field(&out, "num_persons", golden.num_persons);
  out += ",";
  AppendKey(&out, "segments");
  out += "[";
  for (size_t s = 0; s < golden.segments.size(); ++s) {
    const GoldenSegment& seg = golden.segments[s];
    if (s != 0) out += ",";
    out += "\n{";
    AppendU64Field(&out, "updates_end", seg.updates_end);
    out += ",";
    AppendKey(&out, "counts");
    out += "{";
    AppendU64Field(&out, "persons", seg.num_persons);
    out += ",";
    AppendU64Field(&out, "knows", seg.num_knows);
    out += ",";
    AppendU64Field(&out, "forums", seg.num_forums);
    out += ",";
    AppendU64Field(&out, "memberships", seg.num_memberships);
    out += ",";
    AppendU64Field(&out, "messages", seg.num_messages);
    out += ",";
    AppendU64Field(&out, "likes", seg.num_likes);
    out += "},";
    AppendKey(&out, "operations");
    out += "[";
    for (size_t i = 0; i < seg.operations.size(); ++i) {
      const GoldenOp& op = seg.operations[i];
      if (i != 0) out += ",";
      out += "\n{";
      AppendKey(&out, "op");
      AppendEscaped(&out, op.op);
      out += ",";
      AppendKey(&out, "params");
      AppendEscaped(&out, op.params);
      out += ",";
      AppendKey(&out, "rows");
      out += "[";
      for (size_t r = 0; r < op.rows.size(); ++r) {
        if (r != 0) out += ",";
        AppendEscaped(&out, op.rows[r]);
      }
      out += "]}";
    }
    out += "]}";
  }
  out += "]}\n";
  return out;
}

util::Status GoldenSetFromJson(const std::string& json, GoldenSet* out) {
  obs::JsonValue root;
  std::string error;
  if (!obs::ParseJson(json, &root, &error)) {
    return ParseFail("JSON parse error: " + error);
  }
  std::string schema;
  SNB_RETURN_IF_ERROR(GetString(root, "schema", &schema));
  if (schema != kSchemaTag) {
    return ParseFail("unsupported schema \"" + schema + "\" (want " +
                     kSchemaTag + ")");
  }
  SNB_RETURN_IF_ERROR(GetU64(root, "seed", &out->seed));
  SNB_RETURN_IF_ERROR(GetU64(root, "num_persons", &out->num_persons));
  const obs::JsonValue* segments = root.Find("segments");
  if (segments == nullptr ||
      segments->kind != obs::JsonValue::Kind::kArray) {
    return ParseFail("missing \"segments\" array");
  }
  out->segments.clear();
  for (const obs::JsonValue& seg_value : segments->array) {
    if (seg_value.kind != obs::JsonValue::Kind::kObject) {
      return ParseFail("segment is not an object");
    }
    GoldenSegment segment;
    SNB_RETURN_IF_ERROR(
        GetU64(seg_value, "updates_end", &segment.updates_end));
    const obs::JsonValue* counts = seg_value.Find("counts");
    if (counts == nullptr) return ParseFail("missing \"counts\"");
    SNB_RETURN_IF_ERROR(GetU64(*counts, "persons", &segment.num_persons));
    SNB_RETURN_IF_ERROR(GetU64(*counts, "knows", &segment.num_knows));
    SNB_RETURN_IF_ERROR(GetU64(*counts, "forums", &segment.num_forums));
    SNB_RETURN_IF_ERROR(
        GetU64(*counts, "memberships", &segment.num_memberships));
    SNB_RETURN_IF_ERROR(GetU64(*counts, "messages", &segment.num_messages));
    SNB_RETURN_IF_ERROR(GetU64(*counts, "likes", &segment.num_likes));
    const obs::JsonValue* operations = seg_value.Find("operations");
    if (operations == nullptr ||
        operations->kind != obs::JsonValue::Kind::kArray) {
      return ParseFail("missing \"operations\" array");
    }
    for (const obs::JsonValue& op_value : operations->array) {
      GoldenOp op;
      SNB_RETURN_IF_ERROR(GetString(op_value, "op", &op.op));
      SNB_RETURN_IF_ERROR(GetString(op_value, "params", &op.params));
      const obs::JsonValue* rows = op_value.Find("rows");
      if (rows == nullptr || rows->kind != obs::JsonValue::Kind::kArray) {
        return ParseFail("missing \"rows\" array in " + op.op);
      }
      for (const obs::JsonValue& row : rows->array) {
        if (row.kind != obs::JsonValue::Kind::kString) {
          return ParseFail("non-string row in " + op.op);
        }
        op.rows.push_back(row.string);
      }
      segment.operations.push_back(std::move(op));
    }
    out->segments.push_back(std::move(segment));
  }
  if (out->segments.empty()) return ParseFail("no segments");
  return util::Status::Ok();
}

util::Status WriteGoldenSet(const GoldenSet& golden, const std::string& path) {
  return obs::WriteFileReport(path, GoldenSetToJson(golden));
}

util::Status ReadGoldenSet(const std::string& path, GoldenSet* out) {
  std::string text;
  SNB_RETURN_IF_ERROR(jsonio::ReadWholeFile(path, &text));
  return GoldenSetFromJson(text, out);
}

// ---- Replay ---------------------------------------------------------------

util::Status ReplayGoldenSetWith(const GoldenSet& golden,
                                 const datagen::Dataset& dataset,
                                 const schema::Dictionaries& dictionaries,
                                 const ReplayOptions& options,
                                 ReplayOutcome* out) {
  *out = ReplayOutcome();
  if (options.threads < 1) {
    return util::Status::InvalidArgument("threads must be >= 1");
  }
  if (options.shards < 1 || options.shards > store::kMaxShards) {
    return util::Status::InvalidArgument("shards must be in [1, 8]");
  }
  if (dataset.config.seed != golden.seed ||
      dataset.config.num_persons != golden.num_persons) {
    return util::Status::InvalidArgument(
        "dataset was generated with different parameters than the golden "
        "set");
  }
  BatteryContext ctx = MakeBatteryContext(dataset, dictionaries, golden.seed);

  store::GraphStore store(store::ReadConcurrency::kEpoch, options.shards);
  SNB_RETURN_IF_ERROR(store.BulkLoad(dataset.bulk));

  std::unique_ptr<util::ThreadPool> pool;
  if (options.threads > 1) {
    pool = std::make_unique<util::ThreadPool>(options.threads);
  }

  uint64_t applied = 0;
  for (size_t seg = 0; seg < golden.segments.size(); ++seg) {
    const GoldenSegment& segment = golden.segments[seg];
    if (segment.updates_end > dataset.updates.size() ||
        segment.updates_end < applied) {
      return util::Status::InvalidArgument(
          "golden segment update boundaries do not match the regenerated "
          "stream");
    }
    if (segment.updates_end > applied) {
      std::vector<driver::Operation> ops =
          BuildUpdateOps(dataset.updates, applied, segment.updates_end);
      driver::ShortReadWalkConfig walk;
      walk.initial_probability = 0.0;  // Updates only: no spawned reads.
      driver::StoreConnector connector(&store, &dataset.updates,
                                       &dictionaries, options.metrics, walk);
      driver::DriverConfig config;
      config.num_partitions = options.threads;
      config.mode = options.mode;
      config.store_shards = options.shards > 1 ? options.shards : 0;
      driver::DriverReport report =
          driver::RunWorkload(ops, connector, config);
      if (report.operations_failed != 0) {
        out->error = "driver failed " + FormatU64(report.operations_failed) +
                     " updates in segment " + FormatU64(seg) + ": " +
                     report.first_error;
        return util::Status::Internal(out->error);
      }
      applied = segment.updates_end;
    }

    // Structural digest: catches lost/duplicated updates battery probes
    // might miss.
    std::string expected_counts = CountsRow(
        segment.num_persons, segment.num_knows, segment.num_forums,
        segment.num_memberships, segment.num_messages, segment.num_likes);
    std::string actual_counts = CountsRow(
        store.NumPersons(), store.NumKnowsEdges(), store.NumForums(),
        store.NumMemberships(), store.NumMessages(), store.NumLikes());
    ++out->ops_compared;
    ++out->rows_compared;
    if (expected_counts != actual_counts) {
      GoldenOp digest_op;
      digest_op.op = "store.counts";
      digest_op.params = "segment=" + FormatU64(seg);
      RecordDiff(out, static_cast<int>(seg), 0, digest_op, 0, expected_counts,
                 actual_counts);
    }

    std::vector<BatteryTask> tasks = BuildBattery(
        store, ctx, static_cast<int>(seg), segment.updates_end);
    if (tasks.size() != segment.operations.size()) {
      return util::Status::InvalidArgument(
          "battery shape mismatch (golden emitted by a different battery "
          "version?): segment " +
          FormatU64(seg) + " has " + FormatU64(segment.operations.size()) +
          " recorded ops, replay built " + FormatU64(tasks.size()));
    }
    std::vector<GoldenOp> results = RunBattery(tasks, pool.get());
    for (size_t i = 0; i < results.size(); ++i) {
      GoldenOp& actual = results[i];
      const GoldenOp& expected = segment.operations[i];
      if (actual.op != expected.op || actual.params != expected.params) {
        return util::Status::InvalidArgument(
            "battery binding mismatch at segment " + FormatU64(seg) +
            " op " + FormatU64(i) + ": recorded " + expected.op + "(" +
            expected.params + "), replay ran " + actual.op + "(" +
            actual.params + ")");
      }
      if (!options.mutate_op.empty() && actual.op == options.mutate_op) {
        // Injected bug for the mutation test: corrupt the replayed rows.
        if (actual.rows.empty()) {
          actual.rows.push_back("<mutated>");
        } else {
          actual.rows.pop_back();
        }
      }
      ++out->ops_compared;
      size_t common = std::min(expected.rows.size(), actual.rows.size());
      out->rows_compared +=
          std::max(expected.rows.size(), actual.rows.size());
      for (size_t r = 0; r < common; ++r) {
        if (expected.rows[r] != actual.rows[r]) {
          RecordDiff(out, static_cast<int>(seg), i, expected, r,
                     expected.rows[r], actual.rows[r]);
        }
      }
      for (size_t r = common; r < expected.rows.size(); ++r) {
        RecordDiff(out, static_cast<int>(seg), i, expected, r,
                   expected.rows[r], "<absent>");
      }
      for (size_t r = common; r < actual.rows.size(); ++r) {
        RecordDiff(out, static_cast<int>(seg), i, expected, r, "<absent>",
                   actual.rows[r]);
      }
    }
    ++out->segments_compared;
  }
  out->passed = out->diffs == 0 && out->error.empty();
  return util::Status::Ok();
}

util::Status ReplayGoldenSet(const GoldenSet& golden,
                             const ReplayOptions& options,
                             ReplayOutcome* out) {
  datagen::DatagenConfig config;
  config.seed = golden.seed;
  config.num_persons = golden.num_persons;
  schema::Dictionaries dict(golden.seed);
  datagen::Dataset dataset = datagen::Generate(config, dict);
  return ReplayGoldenSetWith(golden, dataset, dict, options, out);
}

}  // namespace snb::validate
