#!/usr/bin/env bash
# Local gate: tier-1 build + full test suite, then the concurrency-labelled
# tests (epoch/RCU read path) rebuilt under AddressSanitizer and
# ThreadSanitizer. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc)"

echo "== tier-1: default build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j"${jobs}"
(cd build && ctest --output-on-failure -j"${jobs}")

echo "== obs: registry/report tests + bench smoke with profiling =="
(cd build && ctest -L obs --output-on-failure)
# One complex-read bench with operator profiling on, emitting report.json.
# The binary self-validates the report (schema tag, non-empty op table,
# monotone percentiles, populated q9_profile) and exits nonzero otherwise;
# here we only re-check that the artifact landed non-empty.
smoke_report="$(mktemp -t snb-smoke-report.XXXXXX.json)"
trap 'rm -f "${smoke_report}"' EXIT
./build/bench/bench_fig4_q9_plan_ablation --params 4 --report "${smoke_report}"
test -s "${smoke_report}" || {
  echo "bench smoke produced an empty ${smoke_report}" >&2
  exit 1
}

# Only the concurrency test targets are built under the sanitizers; a
# whole-tree sanitizer build adds minutes without adding coverage.
for san in address thread; do
  dir="build-${san}-san"
  echo "== ${san} sanitizer: concurrency-labelled tests =="
  cmake -B "${dir}" -S . -DSNB_SANITIZE="${san}" >/dev/null
  cmake --build "${dir}" -j"${jobs}" \
    --target epoch_test concurrency_stress_test graph_store_test obs_test
  (cd "${dir}" && ctest -L concurrency --output-on-failure)
done

echo "== all checks passed =="
