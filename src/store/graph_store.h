// In-memory transactional property-graph store — the System Under Test.
//
// The paper benchmarks Sparksee and Virtuoso; this store is the
// from-scratch substitute (see DESIGN.md). It keeps the whole SNB graph in
// adjacency-indexed form:
//   * persons with friend lists (sorted), created messages (in time order,
//     creation dates inline), joined forums and given likes;
//   * forums with member lists and contained root posts;
//   * messages (dense, id-indexed; ids increase with creation time, so the
//     message table is a clustered creation-date index — the locality
//     property discussed in section 3 of the paper);
//   * secondary structures mirroring Virtuoso's foreign-key indices.
//
// Sharding: the store is partitioned into `num_shards` (1..kMaxShards)
// shards by a salted hash of the entity id (store/shard_router.h). Each
// shard owns its own writer mutex, its own epoch domain
// (util::EpochManager::Domain(shard)) and its own DenseTable arenas, so
// writers on different shards never contend and one shard's grace periods
// are never stalled by another shard's readers. A cross-shard edge (a
// friendship or like whose endpoints hash to different shards) is two
// half-writes, each atomic under its owning shard's lock and applied in
// publication order: the referenced record is always `ready`-published
// before any adjacency list links its id (see "Concurrency" below), so
// readers resolve every id they can see regardless of which shard it
// lives on. num_shards == 1 (the default) reproduces the pre-sharding
// store exactly: one lock, the Global() epoch domain, identical lock and
// publication sequence per update.
//
// Concurrency: multi-writer (one logical writer per shard) /
// multi-reader. Writers serialize behind the owning shard's exclusive
// mutex; concurrent writers to *different* shards proceed in parallel,
// and even two sync writers hitting the same shard are safe (the shard
// lock serializes them). The read path depends on the store's
// ReadConcurrency mode:
//
//   * kEpoch (default): readers never touch writer mutexes. ReadLock()
//     returns a ShardSnapshot pinning every shard's epoch domain in
//     ascending shard order (two uncontended atomic ops per shard on a
//     thread-private cache line — see util/epoch.h) and every shared
//     structure is published RCU-style: entity records live at stable
//     addresses in chunked DenseTables, adjacency lists are RcuVectors
//     whose buffers embed their element count, and a record becomes
//     visible only after its `ready` flag is release-stored — *before*
//     the record's id is linked into any adjacency list, so a reader can
//     always resolve every id it can see, including across shards.
//     Updates are insert-only single statements, which is why these
//     per-object snapshots preserve the paper's observation that "systems
//     providing snapshot isolation behave identically to serializable"
//     for this workload (section 4); DESIGN.md spells out the argument.
//   * kGlobalLock: the pre-epoch behaviour — ReadLock() additionally
//     takes every shard's writer mutex shared, in ascending shard order.
//     Retained as the ablation baseline for
//     bench_table5_driver_scalability and for tests that want a frozen
//     whole-store snapshot.
//
// Writers validate referential integrity and fail with NotFound when a
// dependency is missing; the workload driver's dependency tracking is what
// makes such failures impossible, and the driver tests assert exactly that.
#ifndef SNB_STORE_GRAPH_STORE_H_
#define SNB_STORE_GRAPH_STORE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <optional>
#include <shared_mutex>
#include <vector>

#include "schema/entities.h"
#include "store/dense_table.h"
#include "store/shard_router.h"
#include "util/epoch.h"
#include "util/invariant_root.h"
#include "util/mutex.h"
#include "util/rcu_vector.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace snb::store {

/// A friendship adjacency entry.
struct FriendEdge {
  schema::PersonId other = schema::kInvalidId;
  util::TimestampMs since = 0;
};

/// A generic (id, date) adjacency entry (membership, like, created
/// message).
struct DatedEdge {
  uint64_t id = schema::kInvalidId;
  util::TimestampMs date = 0;
};

/// Per-person storage: attributes plus adjacency indexes. `data` is
/// immutable once `ready` is published; adjacency lists keep growing.
struct PersonRecord {
  schema::Person data;
  /// Sorted by `other` (binary-search friend test).
  util::RcuVector<FriendEdge> friends;
  /// Messages created, sorted by (creation date, id) — maintained by
  /// insertion, so the order holds even when the driver applies two of a
  /// creator's messages out of due-time order (different forum
  /// partitions). The date rides inline so date-bounded scans (Q2/Q9)
  /// never touch the message table for candidates they discard.
  util::RcuVector<DatedEdge> messages;
  /// Forums joined, with join dates.
  util::RcuVector<DatedEdge> forums;
  /// Likes given: liked message + like date.
  util::RcuVector<DatedEdge> likes;
  /// Release-published after `data` is filled.
  std::atomic<uint32_t> ready{0};

  bool present() const { return ready.load(std::memory_order_acquire) != 0; }
};

/// Per-forum storage.
struct ForumRecord {
  schema::Forum data;
  /// Members with join dates (insertion order).
  util::RcuVector<DatedEdge> members;
  /// Root posts/photos contained, ascending id.
  util::RcuVector<schema::MessageId> posts;
  std::atomic<uint32_t> ready{0};

  bool present() const { return ready.load(std::memory_order_acquire) != 0; }
};

/// Per-message storage.
struct MessageRecord {
  schema::Message data;
  /// Direct reply comments, ascending id.
  util::RcuVector<schema::MessageId> replies;
  /// Likes received: liker + like date.
  util::RcuVector<DatedEdge> likes;
  std::atomic<uint32_t> ready{0};

  bool present() const { return ready.load(std::memory_order_acquire) != 0; }
};

/// Byte sizes of the store's main structures (Table 8 equivalent).
struct StorageBreakdown {
  uint64_t message_bytes = 0;      // Message table incl. content.
  uint64_t message_content_bytes = 0;
  uint64_t likes_bytes = 0;        // Like edges (both directions).
  uint64_t membership_bytes = 0;   // forum_person edges (both directions).
  uint64_t friends_bytes = 0;      // Knows edges (both directions).
  uint64_t person_bytes = 0;       // Person attributes.
  uint64_t forum_bytes = 0;        // Forum attributes.

  uint64_t Total() const {
    return message_bytes + likes_bytes + membership_bytes + friends_bytes +
           person_bytes + forum_bytes;
  }
};

/// How ReadLock() provides snapshot semantics.
enum class ReadConcurrency {
  /// Lock-free epoch pins; readers scale with threads. Default.
  kEpoch,
  /// Shared mutexes; the pre-epoch baseline, kept for ablation and for
  /// callers that need a frozen whole-store snapshot.
  kGlobalLock,
};

/// RAII multi-shard read snapshot: one `EpochPin` per shard — acquired in
/// ascending shard order, the store's pin-ordering rule (see DESIGN.md) —
/// plus, in kGlobalLock mode, every shard's writer mutex held shared (same
/// order). Record pointers and adjacency Views obtained from the store are
/// valid while the snapshot lives, whichever shard they came from; that is
/// what makes a cross-shard edge walk (friend list on shard A, friend
/// record on shard B) safe from a single snapshot.
///
/// The snapshot is the capability token every store read accessor demands:
///
///   store::ReadGuard pin = store.ReadLock();
///   const PersonRecord* p = store.FindPerson(pin, id);
///
/// Snapshots are obtainable only from GraphStore::ReadLock() /
/// GraphStore::PinShards(), and the per-shard pins only from
/// EpochManager::pin(); there is no default-constructed disengaged state
/// (a moved-from snapshot is disengaged, but passing the moved-to snapshot
/// is what the move sites do). "Read without a snapshot" is a compile
/// error — see tests/negative/. Storage is inline (std::array), so taking
/// a snapshot never allocates.
class ShardSnapshot {
 public:
  ShardSnapshot(ShardSnapshot&&) noexcept = default;
  ShardSnapshot& operator=(ShardSnapshot&&) noexcept = default;

  /// Shards this snapshot covers (== the store's shard count).
  uint32_t num_shards() const { return num_shards_; }

  /// The epoch-pin capability for one shard (shard < num_shards()).
  const util::EpochPin& shard_pin(uint32_t shard) const {
    return *pins_[shard];
  }

 private:
  friend class GraphStore;
  explicit ShardSnapshot(uint32_t num_shards) : num_shards_(num_shards) {}

  uint32_t num_shards_;
  std::array<std::optional<util::EpochPin>, kMaxShards> pins_;
  // Engaged only in kGlobalLock mode; default-constructed (unlocked)
  // otherwise, so kEpoch snapshots pay nothing for them.
  std::array<std::shared_lock<std::shared_mutex>, kMaxShards> locks_;
};

/// Pre-sharding name for the store's read snapshot; the alias keeps the
/// ~40 existing `store::ReadGuard pin = store.ReadLock();` sites exact.
using ReadGuard = ShardSnapshot;

/// The store. All read accessors require the caller to hold a snapshot
/// obtained from ReadLock() for snapshot-consistent reads; the Add*
/// methods are self-contained transactions. The Apply*Half methods are the
/// per-shard halves those transactions decompose into — they exist so the
/// driver's ShardWriterPool can apply each half on its owning shard's
/// writer thread (see driver/shard_writers.h for the ordering contract).
class GraphStore {
 public:
  explicit GraphStore(ReadConcurrency mode = ReadConcurrency::kEpoch,
                      uint32_t num_shards = 1);
  /// Convenience: kEpoch mode with `num_shards` shards.
  explicit GraphStore(uint32_t num_shards)
      : GraphStore(ReadConcurrency::kEpoch, num_shards) {}
  GraphStore(const GraphStore&) = delete;
  GraphStore& operator=(const GraphStore&) = delete;

  ReadConcurrency read_concurrency() const { return mode_; }
  uint32_t num_shards() const { return num_shards_; }

  // ---- Shard routing (pure, allocation-free) --------------------------

  uint32_t ShardOfPersonId(schema::PersonId id) const {
    return ShardOfPerson(id, num_shards_);
  }
  uint32_t ShardOfForumId(schema::ForumId id) const {
    return ShardOfForum(id, num_shards_);
  }
  uint32_t ShardOfMessageId(schema::MessageId id) const {
    return ShardOfMessage(id, num_shards_);
  }

  // ---- Loading & updates (each call is one ACID transaction) ----------

  /// Loads a full bulk dataset. Must be called on an empty store.
  util::Status BulkLoad(const schema::SocialNetwork& network);

  util::Status AddPerson(const schema::Person& person);
  util::Status AddFriendship(const schema::Knows& knows);
  util::Status AddForum(const schema::Forum& forum);
  util::Status AddForumMembership(const schema::ForumMembership& membership);
  /// Posts, photos and comments.
  util::Status AddMessage(const schema::Message& message);
  util::Status AddLike(const schema::Like& like);

  // ---- Per-shard transaction halves -----------------------------------
  //
  // Each Apply* call mutates exactly one shard, under that shard's writer
  // mutex, and is the unit the ShardWriterPool routes to a shard's SPSC
  // queue. The cross-shard preconditions (the *other* endpoint's record
  // being present) are the caller's contract: the sync Add* transactions
  // establish them with presence probes up front, the writer pool by
  // waiting on the owning shard's publication. Each half checks the
  // records on its *own* shard and fails NotFound when they are missing.
  // Counter bumps are assigned to exactly one half per logical update so
  // the Num* totals stay exact under any interleaving.

  /// Whole-person create on shard(person.id). Publishes `ready` last.
  util::Status ApplyPersonCreate(const schema::Person& person);
  /// Inserts `other` into `owner`'s sorted friend list, on shard(owner).
  util::Status ApplyFriendshipHalf(schema::PersonId owner,
                                   schema::PersonId other,
                                   util::TimestampMs since,
                                   bool bump_counters);
  /// Whole-forum create on shard(forum.id). Moderator presence is the
  /// caller's precondition (checked by AddForum / the writer pool).
  util::Status ApplyForumCreate(const schema::Forum& forum);
  /// person.forums append, on shard(person_id).
  util::Status ApplyMembershipPersonHalf(
      const schema::ForumMembership& membership);
  /// forum.members append, on shard(forum_id).
  util::Status ApplyMembershipForumHalf(
      const schema::ForumMembership& membership, bool bump_counters);
  /// Message record create + `ready` publish, on shard(message.id). Must
  /// complete before either link half (publication order).
  util::Status ApplyMessageCreate(const schema::Message& message);
  /// creator.messages insert (sorted by date, id), on shard(creator_id).
  util::Status ApplyMessageCreatorLink(const schema::Message& message);
  /// forum.posts / parent.replies append, on shard(forum_id/reply_to_id).
  util::Status ApplyMessageContainerLink(const schema::Message& message);
  /// person.likes append, on shard(person_id).
  util::Status ApplyLikePersonHalf(const schema::Like& like);
  /// message.likes append, on shard(message_id).
  util::Status ApplyLikeMessageHalf(const schema::Like& like,
                                    bool bump_counters);

  // ---- Presence probes -------------------------------------------------
  //
  // Lock-free monotone probes (presence never reverts): they pin only the
  // owning shard's epoch domain for the duration of the slot load. Used
  // by the sync transactions for referential checks and by the writer
  // pool to wait out cross-shard publication.

  bool PersonPresent(schema::PersonId id) const;
  bool ForumPresent(schema::ForumId id) const;
  bool MessagePresent(schema::MessageId id) const;

  // ---- Read snapshot --------------------------------------------------

  /// Snapshot for a consistent multi-accessor read; hold it for the
  /// duration of a query. Pins every shard in ascending shard order (and
  /// takes every shard's mutex shared, same order, in kGlobalLock mode).
  ReadGuard ReadLock() const {
    ShardSnapshot snap(num_shards_);
    for (uint32_t i = 0; i < num_shards_; ++i) {
      snap.pins_[i].emplace(shards_[i].epoch->pin());
    }
    if (mode_ == ReadConcurrency::kGlobalLock) {
      for (uint32_t i = 0; i < num_shards_; ++i) {
        snap.locks_[i] =
            std::shared_lock<std::shared_mutex>(shards_[i].mu.native());
      }
    }
    return snap;
  }

  /// Pins-only snapshot: epoch pins on every shard (ascending order) with
  /// no shared locks in either mode. The connector's outer pin uses this
  /// to hold one epoch across a whole operation without nesting shared
  /// locks; semantics match ReadLock() in kEpoch mode.
  ShardSnapshot PinShards() const {
    ShardSnapshot snap(num_shards_);
    for (uint32_t i = 0; i < num_shards_; ++i) {
      snap.pins_[i].emplace(shards_[i].epoch->pin());
    }
    return snap;
  }

  // Every snapshot-read accessor takes a `const ShardSnapshot&` purely as
  // a compile-time proof that the caller holds an epoch critical section
  // on every shard (or a ReadGuard, which is the same type); the snapshot
  // is never inspected at run time, so the token costs nothing. Shard
  // routing inside the accessors is pure arithmetic — these are the
  // per-shard fast paths the pinned_read binary invariant guards.

  /// nullptr when absent.
  const PersonRecord* FindPerson(const ShardSnapshot& /*snap*/,
                                 schema::PersonId id) const {
    // Checked by tools/snb_invariants ("pinned_read"): an epoch-pinned
    // accessor must never allocate, lock, sleep, or touch the kernel —
    // a pinned reader that blocks stalls every writer's grace period.
    // The shard router keeps this property: a salted multiply-shift hash
    // plus one modulo. (Same for the two accessors below and AreFriends.)
    SNB_INVARIANT_ROOT("pinned_read");
    const Shard& s = shards_[ShardOfPerson(id, num_shards_)];
    const PersonRecord* p = s.persons.Slot(id);
    return p != nullptr && p->present() ? p : nullptr;
  }
  const ForumRecord* FindForum(const ShardSnapshot& /*snap*/,
                               schema::ForumId id) const {
    SNB_INVARIANT_ROOT("pinned_read");
    const Shard& s = shards_[ShardOfForum(id, num_shards_)];
    const ForumRecord* f = s.forums.Slot(id);
    return f != nullptr && f->present() ? f : nullptr;
  }
  const MessageRecord* FindMessage(const ShardSnapshot& /*snap*/,
                                   schema::MessageId id) const {
    SNB_INVARIANT_ROOT("pinned_read");
    const Shard& s = shards_[ShardOfMessage(id, num_shards_)];
    const MessageRecord* m = s.messages.Slot(id);
    return m != nullptr && m->present() ? m : nullptr;
  }

  /// True when a and b are friends (binary search on a's friend list).
  bool AreFriends(const ShardSnapshot& snap, schema::PersonId a,
                  schema::PersonId b) const;

  /// Number of message ids ever allocated; message ids are < this bound
  /// and ascend with creation date. (Under kEpoch a bound-covered id may
  /// still be in flight — FindMessage returns nullptr for it.)
  schema::MessageId MessageIdBound() const {
    uint64_t bound = 0;
    for (uint32_t i = 0; i < num_shards_; ++i) {
      uint64_t b = shards_[i].messages.bound();
      if (b > bound) bound = b;
    }
    return bound;
  }

  /// All person ids, ascending (for whole-graph scans in tests/benches).
  std::vector<schema::PersonId> PersonIds(const ShardSnapshot& snap) const;
  /// All forum ids, ascending.
  std::vector<schema::ForumId> ForumIds(const ShardSnapshot& snap) const;

  uint64_t NumPersons() const {
    return num_persons_.load(std::memory_order_acquire);
  }
  uint64_t NumForums() const {
    return num_forums_.load(std::memory_order_acquire);
  }
  uint64_t NumKnowsEdges() const {
    return num_knows_.load(std::memory_order_acquire);
  }
  uint64_t NumMessages() const {
    return num_messages_.load(std::memory_order_acquire);
  }
  uint64_t NumLikes() const {
    return num_likes_.load(std::memory_order_acquire);
  }
  uint64_t NumMemberships() const {
    return num_memberships_.load(std::memory_order_acquire);
  }

  /// Table 8 equivalent: allocated bytes per major structure. Takes each
  /// shard's writer lock in turn (per-shard quiescence is enough — the
  /// scan never follows a cross-shard reference).
  StorageBreakdown ComputeStorageBreakdown() const;

  /// Occupancy of one entity table across all shards: live records vs
  /// slots backed by allocated chunks vs the id bound. used <=
  /// allocated_slots; for sparse id spaces (forums) allocated_slots <<
  /// bound; hash-scattered shards each allocate chunks over the full id
  /// range, so allocated_slots grows with the shard count.
  struct TableOccupancy {
    uint64_t used = 0;
    uint64_t allocated_slots = 0;
    uint64_t bound = 0;
  };
  TableOccupancy PersonTableStats() const {
    TableOccupancy t{NumPersons(), 0, 0};
    for (uint32_t i = 0; i < num_shards_; ++i) {
      t.allocated_slots += shards_[i].persons.allocated_slots();
      if (shards_[i].persons.bound() > t.bound) {
        t.bound = shards_[i].persons.bound();
      }
    }
    return t;
  }
  TableOccupancy ForumTableStats() const {
    TableOccupancy t{NumForums(), 0, 0};
    for (uint32_t i = 0; i < num_shards_; ++i) {
      t.allocated_slots += shards_[i].forums.allocated_slots();
      if (shards_[i].forums.bound() > t.bound) {
        t.bound = shards_[i].forums.bound();
      }
    }
    return t;
  }
  TableOccupancy MessageTableStats() const {
    TableOccupancy t{NumMessages(), 0, 0};
    for (uint32_t i = 0; i < num_shards_; ++i) {
      t.allocated_slots += shards_[i].messages.allocated_slots();
      if (shards_[i].messages.bound() > t.bound) {
        t.bound = shards_[i].messages.bound();
      }
    }
    return t;
  }

  /// Version of the Knows graph: bumped by every AddFriendship. Cached
  /// derived results over the friendship graph (e.g. recycled 2-hop
  /// neighbourhoods) are valid as long as this does not change.
  uint64_t KnowsVersion() const {
    return knows_version_.load(std::memory_order_acquire);
  }

  /// The epoch domain one shard retires buffers to. The default (shard 0)
  /// keeps pre-sharding callers — `store.epoch_manager().DrainForTesting()`
  /// — working unchanged on single-shard stores.
  util::EpochManager& epoch_manager(uint32_t shard = 0) const {
    return *shards_[shard].epoch;
  }

  /// Sum of every shard domain's reclamation stats.
  util::EpochManager::EpochStats AggregateEpochStats() const;

  /// Drains every shard's epoch domain (test/shutdown helper; the caller
  /// must hold no pins).
  void DrainEpochsForTesting() const;

 private:
  // Ids index chunked tables, so a corrupt giant id must fail loudly
  // instead of allocating a giant directory. Datagen ids are dense and
  // nowhere near this.
  static constexpr uint64_t kMaxEntityId = uint64_t{1} << 40;

  /// One shard: writer capability, epoch domain, entity arenas. The
  /// DenseTables are deliberately NOT SNB_GUARDED_BY(mu): kEpoch readers
  /// access them lock-free under the snapshot's per-shard EpochPin (the
  /// RCU publication protocol in the file comment), which the mutex
  /// analysis cannot model — the ShardSnapshot token parameter on the
  /// read accessors is the compile-time check for that side. Writer-side
  /// discipline (every mutation sits inside an Apply* body that opens
  /// with `WriterMutexLock lock(&s.mu)`) is documented in DESIGN.md's
  /// lock table and exercised by the TSan'd multi-writer stress tests.
  struct Shard {
    mutable util::SharedMutex mu;
    util::EpochManager* epoch = nullptr;
    DenseTable<PersonRecord> persons;
    /// Sparse id space (owner_id * slots_per_person + slot); absent
    /// chunks cost one null directory entry.
    DenseTable<ForumRecord> forums;
    DenseTable<MessageRecord> messages;
  };

  Shard& PersonShard(schema::PersonId id) {
    return shards_[ShardOfPerson(id, num_shards_)];
  }
  Shard& ForumShard(schema::ForumId id) {
    return shards_[ShardOfForum(id, num_shards_)];
  }
  Shard& MessageShard(schema::MessageId id) {
    return shards_[ShardOfMessage(id, num_shards_)];
  }

  const ReadConcurrency mode_;
  const uint32_t num_shards_;
  Shard shards_[kMaxShards];

  std::atomic<uint64_t> knows_version_{0};
  std::atomic<uint64_t> num_persons_{0};
  std::atomic<uint64_t> num_forums_{0};
  std::atomic<uint64_t> num_knows_{0};
  std::atomic<uint64_t> num_messages_{0};
  std::atomic<uint64_t> num_likes_{0};
  std::atomic<uint64_t> num_memberships_{0};
};

}  // namespace snb::store

#endif  // SNB_STORE_GRAPH_STORE_H_
