file(REMOVE_RECURSE
  "CMakeFiles/bench_recycling_ablation.dir/bench_recycling_ablation.cc.o"
  "CMakeFiles/bench_recycling_ablation.dir/bench_recycling_ablation.cc.o.d"
  "bench_recycling_ablation"
  "bench_recycling_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_recycling_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
