# Empty compiler generated dependencies file for queries_edge_test.
# This may be replaced when dependencies are built.
