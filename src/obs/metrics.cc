#include "obs/metrics.h"

#include "util/invariant_root.h"

namespace snb::obs {
namespace {

/// Process-wide thread numbering: each thread gets a stable id on first
/// record, mapped onto the shard pool by masking. Ids are never reused, so
/// a long-lived thread keeps its shard (and its cache lines) forever;
/// thread churn only rotates which shard newcomers share.
std::atomic<uint32_t> g_next_thread_id{0};

uint32_t ThisThreadId() {
  thread_local uint32_t id =
      g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

const char* const kOpTypeNames[kNumOpTypes] = {
    "complex.Q1",  "complex.Q2",  "complex.Q3",  "complex.Q4",
    "complex.Q5",  "complex.Q6",  "complex.Q7",  "complex.Q8",
    "complex.Q9",  "complex.Q10", "complex.Q11", "complex.Q12",
    "complex.Q13", "complex.Q14", "short.S1",    "short.S2",
    "short.S3",    "short.S4",    "short.S5",    "short.S6",
    "short.S7",    "update.U1",   "update.U2",   "update.U3",
    "update.U4",   "update.U5",   "update.U6",   "update.U7",
    "update.U8",   "driver.sched_lag", "driver.gct_wait",
    "micro.point_read",
};

const char* const kCounterNames[kNumCounters] = {
    "driver.operations_executed", "driver.operations_failed",
    "driver.dependencies_tracked", "driver.gct_dependent_waits",
    "driver.short_read_walk_steps",
};

const char* const kGaugeNames[kNumGauges] = {
    "epoch.advances",
    "epoch.retired_total",
    "epoch.freed_total",
    "epoch.pending",
    "recycler.hits",
    "recycler.misses",
    "recycler.evictions",
    "store.person_slots_used",
    "store.person_slots_allocated",
    "store.forum_slots_used",
    "store.forum_slots_allocated",
    "store.message_slots_used",
    "store.message_slots_allocated",
};

}  // namespace

const char* OpTypeName(OpType op) {
  size_t i = static_cast<size_t>(op);
  return i < kNumOpTypes ? kOpTypeNames[i] : "unknown";
}

const char* CounterName(Counter c) {
  size_t i = static_cast<size_t>(c);
  return i < kNumCounters ? kCounterNames[i] : "unknown";
}

const char* GaugeName(Gauge g) {
  size_t i = static_cast<size_t>(g);
  return i < kNumGauges ? kGaugeNames[i] : "unknown";
}

double OpSnapshot::PercentileUs(double p) const {
  if (count == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  // Nearest-rank on the merged bucket counts: the smallest bucket whose
  // cumulative count covers the rank.
  uint64_t rank = static_cast<uint64_t>(p / 100.0 *
                                        static_cast<double>(count - 1));
  uint64_t cumulative = 0;
  for (size_t b = 0; b < LogBuckets::kNumBuckets; ++b) {
    cumulative += buckets[b];
    if (cumulative > rank) {
      return static_cast<double>(LogBuckets::BucketMid(b)) / 1000.0;
    }
  }
  return static_cast<double>(max_ns) / 1000.0;  // Unreachable when counts add up.
}

double MetricsSnapshot::SumMicros(size_t begin, size_t end) const {
  double total = 0.0;
  for (size_t i = begin; i < end && i < kNumOpTypes; ++i) {
    total += static_cast<double>(ops[i].sum_ns) / 1000.0;
  }
  return total;
}

uint64_t MetricsSnapshot::CountInRange(size_t begin, size_t end) const {
  uint64_t total = 0;
  for (size_t i = begin; i < end && i < kNumOpTypes; ++i) {
    total += ops[i].count;
  }
  return total;
}

MetricsRegistry::~MetricsRegistry() {
  for (std::atomic<Shard*>& slot : shards_) {
    delete slot.load(std::memory_order_relaxed);
  }
}

MetricsRegistry::Shard& MetricsRegistry::LocalShard() {
  size_t idx = ThisThreadId() & (kMaxShards - 1);
  Shard* shard = shards_[idx].load(std::memory_order_acquire);
  if (shard == nullptr) {
    Shard* fresh = new Shard();
    if (shards_[idx].compare_exchange_strong(shard, fresh,
                                             std::memory_order_acq_rel)) {
      shard = fresh;
    } else {
      delete fresh;  // Another thread on the same shard index won.
    }
  }
  return *shard;
}

void MetricsRegistry::RecordLatencyNs(OpType op, uint64_t ns) {
  // Checked by tools/snb_invariants: the record paths advertise
  // lock-freedom (metrics.h), so their closures must never reach a
  // util::Mutex or futex-backed wait.
  SNB_INVARIANT_ROOT("lockfree");
  OpCell& cell = LocalShard().ops[static_cast<size_t>(op)];
  cell.count.fetch_add(1, std::memory_order_relaxed);
  cell.sum_ns.fetch_add(ns, std::memory_order_relaxed);
  cell.buckets[LogBuckets::BucketFor(ns)].fetch_add(
      1, std::memory_order_relaxed);
  uint64_t seen = cell.min_ns.load(std::memory_order_relaxed);
  while (ns < seen && !cell.min_ns.compare_exchange_weak(
                          seen, ns, std::memory_order_relaxed)) {
  }
  seen = cell.max_ns.load(std::memory_order_relaxed);
  while (ns > seen && !cell.max_ns.compare_exchange_weak(
                          seen, ns, std::memory_order_relaxed)) {
  }
}

void MetricsRegistry::AddCounter(Counter c, uint64_t delta) {
  SNB_INVARIANT_ROOT("lockfree");
  LocalShard().counters[static_cast<size_t>(c)].fetch_add(
      delta, std::memory_order_relaxed);
}

void MetricsRegistry::RecordHwCounts(OpType op, const perf::HwCounts& delta) {
  SNB_INVARIANT_ROOT("lockfree");
  if (!delta.valid()) return;
  OpCell& cell = LocalShard().ops[static_cast<size_t>(op)];
  for (size_t m = 0; m < perf::kNumHwMetrics; ++m) {
    if (delta.mask & (1u << m)) {
      cell.hw[m].fetch_add(delta.v[m], std::memory_order_relaxed);
    }
  }
  cell.hw_mask.fetch_or(delta.mask, std::memory_order_relaxed);
  cell.hw_samples.fetch_add(1, std::memory_order_relaxed);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  for (OpSnapshot& op : snap.ops) op.min_ns = ~uint64_t{0};
  for (const std::atomic<Shard*>& slot : shards_) {
    const Shard* shard = slot.load(std::memory_order_acquire);
    if (shard == nullptr) continue;
    for (size_t i = 0; i < kNumOpTypes; ++i) {
      const OpCell& cell = shard->ops[i];
      OpSnapshot& out = snap.ops[i];
      out.count += cell.count.load(std::memory_order_relaxed);
      out.sum_ns += cell.sum_ns.load(std::memory_order_relaxed);
      uint64_t lo = cell.min_ns.load(std::memory_order_relaxed);
      uint64_t hi = cell.max_ns.load(std::memory_order_relaxed);
      if (lo < out.min_ns) out.min_ns = lo;
      if (hi > out.max_ns) out.max_ns = hi;
      perf::HwCounts shard_hw;
      shard_hw.mask = cell.hw_mask.load(std::memory_order_relaxed);
      for (size_t m = 0; m < perf::kNumHwMetrics; ++m) {
        shard_hw.v[m] = cell.hw[m].load(std::memory_order_relaxed);
      }
      out.hw.Accumulate(shard_hw);
      out.hw_samples += cell.hw_samples.load(std::memory_order_relaxed);
      for (size_t b = 0; b < LogBuckets::kNumBuckets; ++b) {
        out.buckets[b] += cell.buckets[b].load(std::memory_order_relaxed);
      }
    }
    for (size_t c = 0; c < kNumCounters; ++c) {
      snap.counters[c] += shard->counters[c].load(std::memory_order_relaxed);
    }
  }
  for (OpSnapshot& op : snap.ops) {
    if (op.count == 0) op.min_ns = 0;  // No samples: sentinel back to zero.
  }
  for (size_t g = 0; g < kNumGauges; ++g) {
    snap.gauges[g] = gauges_[g].load(std::memory_order_relaxed);
  }
  return snap;
}

}  // namespace snb::obs
