// Table 4 reproduction: the calibrated query mix. First prints the paper's
// published frequencies, then performs the paper's *calibration procedure*
// against this repository's SUT (snb::store): measure per-operation costs,
// set relative frequencies so each complex query gets equal CPU time within
// a 50% share, and pick random-walk parameters so short reads fill 40% —
// leaving ~10% for updates. The calibration is iterated (as the paper's
// was, experimentally): measured costs shift under the mixed load, so each
// round re-calibrates against the previous round's measurements.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "driver/driver.h"
#include "driver/query_mix.h"

namespace snb::bench {
namespace {

struct MixOutcome {
  double update_share = 0.0;
  double complex_share = 0.0;
  double short_share = 0.0;
  std::array<double, 14> complex_cost{};  // Mean us per query.
  double update_cost = 0.0;
  double short_cost = 0.0;
  uint64_t updates = 0, complex = 0, shorts = 0, failed = 0;
};

// Baseline mean update cost (us), measured from an update-only replay so
// reader contention does not inflate it (the calibration budgets CPU time,
// not lock waiting).
double MeasureUpdateBaseline() {
  std::unique_ptr<BenchWorld> world = MakeWorld(kMediumSf, false, true);
  driver::QueryMixConfig mix;
  mix.include_complex_reads = false;
  driver::Workload workload =
      driver::BuildWorkload(world->dataset, *world->dictionaries, mix);
  obs::MetricsRegistry metrics;
  driver::StoreConnector connector(&world->store, &world->dataset.updates,
                                   world->dictionaries.get(), &metrics,
                                   driver::ShortReadWalkConfig(), 50);
  driver::DriverConfig config;
  config.num_partitions = 4;
  driver::RunWorkload(workload.operations, connector, config);
  obs::MetricsSnapshot snap = metrics.Snapshot();
  double total = snap.SumMicros(obs::kUpdateBegin, obs::kUpdateBegin + 8);
  uint64_t count = snap.CountInRange(obs::kUpdateBegin, obs::kUpdateBegin + 8);
  return count > 0 ? total / static_cast<double>(count) : 1.0;
}

MixOutcome RunMix(const driver::MixCalibration& cal) {
  std::unique_ptr<BenchWorld> world = MakeWorld(kMediumSf, false, true);
  driver::QueryMixConfig mix;
  mix.frequencies = cal.frequencies;
  driver::Workload workload =
      driver::BuildWorkload(world->dataset, *world->dictionaries, mix);
  obs::MetricsRegistry metrics;
  driver::ShortReadWalkConfig walk;
  walk.initial_probability = cal.short_read_initial_probability;
  walk.decay = cal.short_read_decay;
  // Emulate the paper's client-server setting: every operation pays a
  // fixed dispatch (round-trip) overhead, without which in-process point
  // lookups are so cheap that no walk length can reach a 40% share.
  constexpr int64_t kDispatchOverheadUs = 50;
  driver::StoreConnector connector(&world->store, &world->dataset.updates,
                                   world->dictionaries.get(), &metrics,
                                   walk, kDispatchOverheadUs);
  driver::DriverConfig config;
  config.num_partitions = 4;
  driver::DriverReport report =
      driver::RunWorkload(workload.operations, connector, config);

  MixOutcome out;
  obs::MetricsSnapshot snap = metrics.Snapshot();
  double update_us = snap.SumMicros(obs::kUpdateBegin, obs::kUpdateBegin + 8);
  double complex_us = snap.SumMicros(obs::kComplexBegin, obs::kShortBegin);
  double short_us = snap.SumMicros(obs::kShortBegin, obs::kUpdateBegin);
  double total = update_us + complex_us + short_us;
  out.update_share = update_us / total;
  out.complex_share = complex_us / total;
  out.short_share = short_us / total;
  for (int q = 1; q <= 14; ++q) {
    out.complex_cost[q - 1] = snap.Op(obs::ComplexOp(q)).MeanUs();
  }
  uint64_t update_count =
      snap.CountInRange(obs::kUpdateBegin, obs::kUpdateBegin + 8);
  uint64_t short_count = snap.CountInRange(obs::kShortBegin, obs::kUpdateBegin);
  out.update_cost = update_count ? update_us / update_count : 1.0;
  out.short_cost = short_count ? short_us / short_count : 1.0;
  out.updates = workload.num_updates;
  out.complex = workload.num_complex_reads;
  out.shorts = connector.short_reads_executed();
  out.failed = report.operations_failed;
  return out;
}

void PrintFrequencies(const char* label,
                      const std::array<uint32_t, 14>& freq) {
  std::printf("  %-24s", label);
  for (uint32_t f : freq) std::printf("%7u", f);
  std::printf("\n");
}

void Run() {
  PrintHeader("Table 4 — query-mix frequencies & 10/50/40 calibration");
  std::printf("  %-24s", "query");
  for (int q = 1; q <= 14; ++q) {
    std::printf("%7s", ("Q" + std::to_string(q)).c_str());
  }
  std::printf("\n");
  PrintFrequencies("paper (Virtuoso cal.)", driver::kTable4Frequencies);

  // Round 0: start from the paper's frequencies (compressed to suit the
  // mini update stream) and a default walk.
  driver::MixCalibration cal;
  for (int q = 0; q < 14; ++q) {
    cal.frequencies[q] =
        std::max<uint32_t>(1, driver::kTable4Frequencies[q] / 12);
  }
  cal.short_read_initial_probability = 0.5;
  cal.short_read_decay = 0.08;

  double update_baseline_us = MeasureUpdateBaseline();
  std::printf("  update baseline (isolated): %.1f us/op\n",
              update_baseline_us);

  MixOutcome outcome;
  constexpr int kRounds = 3;
  for (int round = 0; round < kRounds; ++round) {
    outcome = RunMix(cal);
    std::printf("\n  round %d: split %4.1f%% / %4.1f%% / %4.1f%%"
                " (upd/complex/short), %llu failed\n",
                round, 100 * outcome.update_share,
                100 * outcome.complex_share, 100 * outcome.short_share,
                (unsigned long long)outcome.failed);
    cal = driver::CalibrateMix(outcome.complex_cost, outcome.updates,
                               update_baseline_us, outcome.short_cost);
  }
  PrintFrequencies("calibrated (snb::store)", cal.frequencies);
  std::printf("  short-read walk: P=%.2f decay=%.5f (expected length %.0f)\n",
              cal.short_read_initial_probability, cal.short_read_decay,
              cal.expected_walk_length);

  outcome = RunMix(cal);
  std::printf("\n  Final calibrated run: %llu updates, %llu complex reads,"
              " %llu short reads\n",
              (unsigned long long)outcome.updates,
              (unsigned long long)outcome.complex,
              (unsigned long long)outcome.shorts);
  std::printf("\n  Achieved CPU-time split (paper target 10/50/40):\n");
  std::printf("    updates        %5.1f%%\n", 100 * outcome.update_share);
  std::printf("    complex reads  %5.1f%%\n", 100 * outcome.complex_share);
  std::printf("    short reads    %5.1f%%\n", 100 * outcome.short_share);
  std::printf(
      "\n  Shape to check: heavier queries get proportionally lower\n"
      "  frequencies (like Q6/Q9 in the paper's Table 4); iterated\n"
      "  calibration converges towards the 10/50/40 split; every complex\n"
      "  query consumes a comparable CPU share.\n"
      "  Note: the measured update share includes reader-writer lock waits\n"
      "  (snb::store serializes writers), which inflates it above the pure\n"
      "  service-time budget the calibration controls.\n\n");
}

}  // namespace
}  // namespace snb::bench

int main() {
  snb::bench::Run();
  return 0;
}
