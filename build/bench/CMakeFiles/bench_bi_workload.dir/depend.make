# Empty dependencies file for bench_bi_workload.
# This may be replaced when dependencies are built.
