// Tests of the hardware-counter subsystem (obs/perf_counters.h), the
// slow-query dossier collector, and their report.json v4 surface.
//
// The central contract under test is graceful degradation: a forced
// perf_event_open failure (ENOSYS, EACCES — the container/CI reality)
// must install the no-op backend and still produce a *valid* report that
// marks counters unavailable, never fabricated zeros. The live-counter
// test runs only where the probe actually succeeds and skips elsewhere,
// so the suite is green on every machine.
#include <cerrno>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/dossier.h"
#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace snb::obs {
namespace {

using perf::Backend;
using perf::HwCounts;
using perf::HwMetric;

/// Restores the subsystem to kDisabled and clears test hooks, whatever a
/// test did to it.
struct PerfReset {
  ~PerfReset() {
    perf::SetPerfEventOpenErrnoForTest(0);
    ::unsetenv("SNB_PERF_FORCE_NOOP");
    perf::ResetForTest();
  }
};

HwCounts MakeCounts(uint64_t cycles, uint64_t instructions,
                    uint64_t llc = 0, uint64_t branches = 0) {
  HwCounts c;
  c.v[static_cast<size_t>(HwMetric::kCycles)] = cycles;
  c.v[static_cast<size_t>(HwMetric::kInstructions)] = instructions;
  c.v[static_cast<size_t>(HwMetric::kLlcLoadMisses)] = llc;
  c.v[static_cast<size_t>(HwMetric::kBranchMisses)] = branches;
  c.mask = (1u << static_cast<uint32_t>(HwMetric::kCycles)) |
           (1u << static_cast<uint32_t>(HwMetric::kInstructions)) |
           (1u << static_cast<uint32_t>(HwMetric::kLlcLoadMisses)) |
           (1u << static_cast<uint32_t>(HwMetric::kBranchMisses));
  return c;
}

// ---- HwCounts arithmetic --------------------------------------------------

TEST(HwCountsTest, EmptyIsInvalidAndRatiosAreZero) {
  HwCounts c;
  EXPECT_FALSE(c.valid());
  EXPECT_EQ(c.Ipc(), 0.0);
  EXPECT_EQ(c.LlcMissesPerKiloInstr(), 0.0);
  EXPECT_EQ(c.BranchMissesPerKiloInstr(), 0.0);
}

TEST(HwCountsTest, DeltaSinceIntersectsMasksAndSaturates) {
  HwCounts begin = MakeCounts(1000, 3000, 10, 5);
  HwCounts end = MakeCounts(1500, 4200, 12, 4);
  // Drop instructions from the later reading: the delta must not claim it.
  end.mask &= ~(1u << static_cast<uint32_t>(HwMetric::kInstructions));
  HwCounts d = end.DeltaSince(begin);
  EXPECT_TRUE(d.Has(HwMetric::kCycles));
  EXPECT_FALSE(d.Has(HwMetric::kInstructions));
  EXPECT_EQ(d.Value(HwMetric::kCycles), 500u);
  EXPECT_EQ(d.Value(HwMetric::kLlcLoadMisses), 2u);
  // branch 4 < begin 5: saturates at 0 instead of wrapping.
  EXPECT_EQ(d.Value(HwMetric::kBranchMisses), 0u);
}

TEST(HwCountsTest, AccumulateSkipsInvalidAndUnionsMasks) {
  HwCounts sum = MakeCounts(100, 200);
  HwCounts invalid;
  sum.Accumulate(invalid);
  EXPECT_EQ(sum.Value(HwMetric::kCycles), 100u);

  HwCounts more;
  more.v[static_cast<size_t>(HwMetric::kTaskClockNs)] = 999;
  more.mask = 1u << static_cast<uint32_t>(HwMetric::kTaskClockNs);
  sum.Accumulate(more);
  EXPECT_TRUE(sum.Has(HwMetric::kCycles));
  EXPECT_TRUE(sum.Has(HwMetric::kTaskClockNs));
  EXPECT_EQ(sum.Value(HwMetric::kTaskClockNs), 999u);
}

TEST(HwCountsTest, DerivedRatios) {
  HwCounts c = MakeCounts(/*cycles=*/1000, /*instructions=*/2500,
                          /*llc=*/5, /*branches=*/25);
  EXPECT_DOUBLE_EQ(c.Ipc(), 2.5);
  EXPECT_DOUBLE_EQ(c.LlcMissesPerKiloInstr(), 2.0);
  EXPECT_DOUBLE_EQ(c.BranchMissesPerKiloInstr(), 10.0);
  // Missing cycles: IPC is 0, not a division by garbage.
  c.mask &= ~(1u << static_cast<uint32_t>(HwMetric::kCycles));
  EXPECT_EQ(c.Ipc(), 0.0);
}

TEST(HwCountsTest, MetricNamesAreStableDottedIdentifiers) {
  EXPECT_STREQ(perf::HwMetricName(HwMetric::kCycles), "hw.cycles");
  EXPECT_STREQ(perf::HwMetricName(HwMetric::kLlcLoadMisses),
               "hw.llc_load_misses");
  for (size_t i = 0; i < perf::kNumHwMetrics; ++i) {
    std::string name = perf::HwMetricName(static_cast<HwMetric>(i));
    EXPECT_EQ(name.rfind("hw.", 0), 0u) << name;
  }
}

// ---- Backend state machine ------------------------------------------------

TEST(PerfBackendTest, DisabledUntilEnabledAndReadsAreEmpty) {
  PerfReset reset;
  perf::ResetForTest();
  EXPECT_EQ(perf::ActiveBackend(), Backend::kDisabled);
  EXPECT_FALSE(perf::CountersLive());
  EXPECT_FALSE(perf::ReadThreadCounters().valid());
  perf::ScopedHwCounts scope;
  EXPECT_FALSE(scope.Delta().valid());
}

TEST(PerfBackendTest, ForcedEnosysFallsBackToNoop) {
  PerfReset reset;
  perf::SetPerfEventOpenErrnoForTest(ENOSYS);
  EXPECT_EQ(perf::Enable(), Backend::kNoop);
  EXPECT_EQ(perf::ActiveBackend(), Backend::kNoop);
  EXPECT_FALSE(perf::CountersLive());
  EXPECT_FALSE(perf::ReadThreadCounters().valid());
  EXPECT_NE(perf::BackendMessage().find("perf_event_open failed"),
            std::string::npos)
      << perf::BackendMessage();
}

TEST(PerfBackendTest, ForcedEaccesFallsBackToNoop) {
  PerfReset reset;
  perf::SetPerfEventOpenErrnoForTest(EACCES);
  EXPECT_EQ(perf::Enable(), Backend::kNoop);
  EXPECT_FALSE(perf::CountersLive());
}

TEST(PerfBackendTest, ForceNoopOptionAndEnvSkipTheProbe) {
  PerfReset reset;
  perf::EnableOptions options;
  options.force_noop = true;
  EXPECT_EQ(perf::Enable(options), Backend::kNoop);

  perf::ResetForTest();
  ::setenv("SNB_PERF_FORCE_NOOP", "1", 1);
  EXPECT_EQ(perf::Enable(), Backend::kNoop);

  // "0" means not forced: the probe runs (outcome is machine-dependent,
  // but it must not be *forced* noop — assert it is a decided backend).
  perf::ResetForTest();
  ::setenv("SNB_PERF_FORCE_NOOP", "0", 1);
  Backend probed = perf::Enable();
  EXPECT_NE(probed, Backend::kDisabled);
}

TEST(PerfBackendTest, NoopBackendStillTimesSpansWithoutCounters) {
  PerfReset reset;
  perf::SetPerfEventOpenErrnoForTest(EACCES);
  perf::Enable();
  OperatorStats stats;
  {
    TraceSpan span(&stats);
    span.AddRows(7);
  }
  EXPECT_EQ(stats.invocations, 1u);
  EXPECT_EQ(stats.rows, 7u);
  EXPECT_EQ(stats.hw_invocations, 0u);
  EXPECT_FALSE(stats.hw.valid());
}

TEST(PerfBackendTest, LiveCountersMeasureRealWork) {
  PerfReset reset;
  if (perf::Enable() != Backend::kLinux) {
    GTEST_SKIP() << "perf_event_open unavailable here: "
                 << perf::BackendMessage();
  }
  OperatorStats stats;
  volatile uint64_t sink = 0;
  {
    TraceSpan span(&stats);
    for (uint64_t i = 0; i < 2'000'000; ++i) sink = sink + i;
  }
  ASSERT_EQ(stats.hw_invocations, 1u);
  ASSERT_TRUE(stats.hw.valid());
  // 2M additions retire at least 1M instructions on any ISA.
  ASSERT_TRUE(stats.hw.Has(HwMetric::kInstructions));
  EXPECT_GT(stats.hw.Value(HwMetric::kInstructions), 1'000'000u);
  EXPECT_GT(stats.hw.Ipc(), 0.0);
}

// ---- Dossier collector ----------------------------------------------------

SlowQueryDossier MakeDossier(OpType op, uint64_t seq, uint64_t latency_ns) {
  SlowQueryDossier d;
  d.op = op;
  d.seq = seq;
  d.latency_ns = latency_ns;
  return d;
}

TEST(DossierCollectorTest, KeepsSlowestNPerOpSortedDescending) {
  DossierCollector collector(/*keep_per_op=*/3);
  for (uint64_t i = 1; i <= 10; ++i) {
    collector.Offer(MakeDossier(ComplexOp(9), i, i * 100));
  }
  // A second op type keeps its own slots.
  collector.Offer(MakeDossier(ShortOp(1), 99, 50));
  EXPECT_EQ(collector.Size(), 4u);

  std::vector<SlowQueryDossier> kept = collector.Snapshot();
  std::vector<uint64_t> q9_latencies;
  for (const SlowQueryDossier& d : kept) {
    if (d.op == ComplexOp(9)) q9_latencies.push_back(d.latency_ns);
  }
  ASSERT_EQ(q9_latencies.size(), 3u);
  EXPECT_EQ(q9_latencies[0], 1000u);
  EXPECT_EQ(q9_latencies[1], 900u);
  EXPECT_EQ(q9_latencies[2], 800u);
}

TEST(DossierCollectorTest, FloorRejectsNonTailOncefull) {
  DossierCollector collector(/*keep_per_op=*/2);
  // Until the slot set is full every positive latency is a candidate.
  EXPECT_TRUE(collector.WouldKeep(ComplexOp(2), 1));
  collector.Offer(MakeDossier(ComplexOp(2), 0, 500));
  collector.Offer(MakeDossier(ComplexOp(2), 1, 700));
  // Floor is now 500: equal-or-smaller latencies are pre-filtered.
  EXPECT_FALSE(collector.WouldKeep(ComplexOp(2), 500));
  EXPECT_TRUE(collector.WouldKeep(ComplexOp(2), 501));
  // Offering below the floor anyway must not displace a kept dossier.
  collector.Offer(MakeDossier(ComplexOp(2), 2, 100));
  EXPECT_EQ(collector.Size(), 2u);
  // A genuine tail instance evicts the 500 and raises the floor.
  collector.Offer(MakeDossier(ComplexOp(2), 3, 900));
  EXPECT_EQ(collector.Size(), 2u);
  EXPECT_FALSE(collector.WouldKeep(ComplexOp(2), 700));
  std::vector<SlowQueryDossier> kept = collector.Snapshot();
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].latency_ns, 900u);
  EXPECT_EQ(kept[1].latency_ns, 700u);
}

TEST(DossierCollectorTest, ZeroKeepIsClampedToOne) {
  DossierCollector collector(/*keep_per_op=*/0);
  EXPECT_EQ(collector.keep_per_op(), 1u);
  collector.Offer(MakeDossier(UpdateOp(1), 0, 10));
  collector.Offer(MakeDossier(UpdateOp(1), 1, 20));
  EXPECT_EQ(collector.Size(), 1u);
  EXPECT_EQ(collector.Snapshot()[0].latency_ns, 20u);
}

// ---- Report v4 surface ----------------------------------------------------

/// A minimal metrics snapshot so reports validate (non-empty op table).
MetricsSnapshot OneOpSnapshot() {
  MetricsRegistry registry;
  for (int i = 0; i < 16; ++i) {
    registry.RecordLatencyMicros(ComplexOp(9), 1000 + i * 50);
  }
  return registry.Snapshot();
}

TEST(ReportV4Test, NoopBackendYieldsValidReportWithCountersUnavailable) {
  PerfReset reset;
  perf::SetPerfEventOpenErrnoForTest(ENOSYS);
  perf::Enable();

  RunReport report;
  report.title = "forced-noop run";
  report.metrics = OneOpSnapshot();
  report.has_provenance = true;
  report.provenance = BuildProvenance();
  report.has_perf = true;
  report.perf = CurrentPerfSection();
  EXPECT_EQ(report.perf.backend, "noop");
  EXPECT_FALSE(report.perf.counters_available);

  std::string json = ToJson(report);
  util::Status status = ValidateReportJson(json);
  EXPECT_TRUE(status.ok()) << status.ToString();
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(json, &doc, &error)) << error;
  EXPECT_EQ(doc.Find("schema")->string, "snb-report-v5");
  const JsonValue* perf_section = doc.Find("perf");
  ASSERT_NE(perf_section, nullptr);
  EXPECT_EQ(perf_section->Find("backend")->string, "noop");
  EXPECT_FALSE(perf_section->Find("counters_available")->boolean);
  // No live counters anywhere: the op rows must not fabricate hw fields.
  EXPECT_EQ(json.find("\"ipc\""), std::string::npos);
}

TEST(ReportV4Test, ValidatorRejectsAvailableCountersOnNoopBackend) {
  RunReport report;
  report.metrics = OneOpSnapshot();
  report.has_perf = true;
  report.perf.backend = "noop";
  report.perf.counters_available = true;  // Contradiction.
  util::Status status = ValidateReportJson(ToJson(report));
  EXPECT_FALSE(status.ok());
}

TEST(ReportV4Test, DossierAndTraceSectionsRoundTrip) {
  RunReport report;
  report.metrics = OneOpSnapshot();

  SlowQueryDossier d = MakeDossier(ComplexOp(9), 42, 7'000'000);
  d.hw = MakeCounts(1000, 2000, 3, 4);
  DossierOperatorRow row;
  row.name = "join3_messages";
  row.invocations = 1;
  row.time_ns = 5'000'000;
  row.rows = 1234;
  row.hw = MakeCounts(800, 1500);
  row.hw_invocations = 1;
  d.operators.push_back(row);
  report.dossiers.push_back(d);

  report.has_trace_stats = true;
  report.trace_stats.recorded = 100;
  report.trace_stats.dropped = 20;
  TraceStatsSection::LaneRow lane;
  lane.lane = 0;
  lane.recorded = 100;
  lane.retained = 80;
  lane.dropped = 20;
  report.trace_stats.lanes.push_back(lane);

  std::string json = ToJson(report);
  util::Status status = ValidateReportJson(json);
  ASSERT_TRUE(status.ok()) << status.ToString();

  JsonValue doc;
  std::string error;
  ASSERT_TRUE(ParseJson(json, &doc, &error)) << error;
  const JsonValue* dossiers = doc.Find("dossiers");
  ASSERT_NE(dossiers, nullptr);
  ASSERT_EQ(dossiers->array.size(), 1u);
  const JsonValue& entry = dossiers->array[0];
  EXPECT_EQ(entry.Find("op")->string, OpTypeName(ComplexOp(9)));
  EXPECT_EQ(entry.Find("seq")->number, 42.0);
  EXPECT_NEAR(entry.Find("latency_ms")->number, 7.0, 1e-9);
  EXPECT_NEAR(entry.Find("ipc")->number, 2.0, 1e-9);
  const JsonValue* operators = entry.Find("operators");
  ASSERT_NE(operators, nullptr);
  ASSERT_EQ(operators->array.size(), 1u);
  EXPECT_EQ(operators->array[0].Find("name")->string, "join3_messages");
  EXPECT_EQ(operators->array[0].Find("rows")->number, 1234.0);

  const JsonValue* trace = doc.Find("trace");
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(trace->Find("recorded")->number, 100.0);
  EXPECT_EQ(trace->Find("lanes")->array.size(), 1u);
}

TEST(ReportV4Test, ValidatorRejectsInconsistentTraceAccounting) {
  RunReport report;
  report.metrics = OneOpSnapshot();
  report.has_trace_stats = true;
  report.trace_stats.recorded = 100;
  report.trace_stats.dropped = 20;
  TraceStatsSection::LaneRow lane;
  lane.lane = 0;
  lane.recorded = 100;
  lane.retained = 90;  // 90 + 20 != 100.
  lane.dropped = 20;
  report.trace_stats.lanes.push_back(lane);
  util::Status status = ValidateReportJson(ToJson(report));
  EXPECT_FALSE(status.ok());
}

TEST(ReportV4Test, ProvenanceIsAlwaysPopulated) {
  ProvenanceSection p = BuildProvenance();
  EXPECT_FALSE(p.git_sha.empty());
  EXPECT_FALSE(p.compiler.empty());
  EXPECT_FALSE(p.sanitizer.empty());
}

}  // namespace
}  // namespace snb::obs
