# Empty compiler generated dependencies file for short_queries_test.
# This may be replaced when dependencies are built.
