#include "store/graph_store.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "util/mutex.h"

namespace snb::store {

using schema::Knows;
using schema::Message;
using schema::Person;
using util::Status;

namespace {

constexpr auto kFriendLess = [](const FriendEdge& a, const FriendEdge& b) {
  return a.other < b.other;
};

Status BadId(const char* what, uint64_t id) {
  return Status::InvalidArgument(std::string(what) + " id out of range: " +
                                 std::to_string(id));
}

}  // namespace

GraphStore::GraphStore(ReadConcurrency mode, uint32_t num_shards)
    : mode_(mode), num_shards_(num_shards) {
  if (num_shards_ < 1 || num_shards_ > kMaxShards) {
    std::fprintf(stderr, "GraphStore: num_shards %u outside [1, %u]\n",
                 num_shards_, kMaxShards);
    std::abort();
  }
  // Shard i retires into process-wide domain i; Domain(0) is Global(), so
  // a single-shard store is indistinguishable from the pre-sharding one.
  for (uint32_t i = 0; i < kMaxShards; ++i) {
    shards_[i].epoch = &util::EpochManager::Domain(i);
  }
}

// ---- Public transactional API ----------------------------------------------
//
// Each transaction is a presence-validation prefix (lock-free monotone
// probes) followed by its per-shard halves in publication order. Presence
// never reverts and records never move, so a probe that succeeded stays
// true for the rest of the transaction without holding the probed shard's
// lock; each half then re-resolves its own shard's records under that
// shard's writer mutex. Check order and status strings are kept exactly
// as the pre-sharding single-lock code produced them, so the differential
// fuzzer's oracle and the golden sets see identical outcomes.

Status GraphStore::BulkLoad(const schema::SocialNetwork& network) {
  if (NumPersons() != 0 || MessageIdBound() != 0) {
    return Status::FailedPrecondition("BulkLoad requires an empty store");
  }
  for (const Person& p : network.persons) {
    SNB_RETURN_IF_ERROR(AddPerson(p));
  }
  for (const Knows& k : network.knows) {
    SNB_RETURN_IF_ERROR(AddFriendship(k));
  }
  for (const schema::Forum& f : network.forums) {
    SNB_RETURN_IF_ERROR(AddForum(f));
  }
  for (const schema::ForumMembership& fm : network.memberships) {
    SNB_RETURN_IF_ERROR(AddForumMembership(fm));
  }
  for (const Message& m : network.messages) {
    SNB_RETURN_IF_ERROR(AddMessage(m));
  }
  for (const schema::Like& l : network.likes) {
    SNB_RETURN_IF_ERROR(AddLike(l));
  }
  return Status::Ok();
}

Status GraphStore::AddPerson(const Person& person) {
  if (person.id >= kMaxEntityId) return BadId("person", person.id);
  return ApplyPersonCreate(person);
}

Status GraphStore::AddFriendship(const Knows& knows) {
  if (!PersonPresent(knows.person1_id) || !PersonPresent(knows.person2_id)) {
    return Status::NotFound("friendship endpoint missing");
  }
  SNB_RETURN_IF_ERROR(ApplyFriendshipHalf(knows.person1_id, knows.person2_id,
                                          knows.creation_date,
                                          /*bump_counters=*/true));
  return ApplyFriendshipHalf(knows.person2_id, knows.person1_id,
                             knows.creation_date, /*bump_counters=*/false);
}

Status GraphStore::AddForum(const schema::Forum& forum) {
  if (forum.id >= kMaxEntityId) return BadId("forum", forum.id);
  if (!PersonPresent(forum.moderator_id)) {
    return Status::NotFound("forum moderator missing");
  }
  return ApplyForumCreate(forum);
}

Status GraphStore::AddForumMembership(
    const schema::ForumMembership& membership) {
  if (!PersonPresent(membership.person_id) ||
      !ForumPresent(membership.forum_id)) {
    return Status::NotFound("membership endpoint missing");
  }
  SNB_RETURN_IF_ERROR(ApplyMembershipPersonHalf(membership));
  return ApplyMembershipForumHalf(membership, /*bump_counters=*/true);
}

Status GraphStore::AddMessage(const Message& message) {
  if (message.id >= kMaxEntityId) return BadId("message", message.id);
  if (!PersonPresent(message.creator_id)) {
    return Status::NotFound("message creator missing");
  }
  if (message.kind == schema::MessageKind::kComment) {
    if (!MessagePresent(message.reply_to_id)) {
      return Status::NotFound("comment parent missing");
    }
  } else {
    if (!ForumPresent(message.forum_id)) {
      return Status::NotFound("post forum missing");
    }
  }
  // Publication order across shards: the record (and its `ready` flag)
  // first, links after — a reader that can see the id in any list
  // resolves the record, whichever shards they hash to.
  SNB_RETURN_IF_ERROR(ApplyMessageCreate(message));
  SNB_RETURN_IF_ERROR(ApplyMessageCreatorLink(message));
  return ApplyMessageContainerLink(message);
}

Status GraphStore::AddLike(const schema::Like& like) {
  if (!PersonPresent(like.person_id)) {
    return Status::NotFound("like person missing");
  }
  if (!MessagePresent(like.message_id)) {
    return Status::NotFound("liked message missing");
  }
  SNB_RETURN_IF_ERROR(ApplyLikePersonHalf(like));
  return ApplyLikeMessageHalf(like, /*bump_counters=*/true);
}

// ---- Presence probes --------------------------------------------------------
//
// Checked by tools/snb_invariants ("lockfree"): shard writer lanes
// spin-wait on these probes for cross-shard dependencies, so the full
// closure — shard routing, the epoch pin (including its one-time TLS
// slot claim), the DenseTable slot lookup — must never reach a mutex or
// a futex wait; a probe that blocked could stall every lane behind it.

bool GraphStore::PersonPresent(schema::PersonId id) const {
  SNB_INVARIANT_ROOT("lockfree");
  const Shard& s = shards_[ShardOfPerson(id, num_shards_)];
  util::EpochPin pin = s.epoch->pin();
  const PersonRecord* p = s.persons.Slot(id);
  return p != nullptr && p->present();
}

bool GraphStore::ForumPresent(schema::ForumId id) const {
  SNB_INVARIANT_ROOT("lockfree");
  const Shard& s = shards_[ShardOfForum(id, num_shards_)];
  util::EpochPin pin = s.epoch->pin();
  const ForumRecord* f = s.forums.Slot(id);
  return f != nullptr && f->present();
}

bool GraphStore::MessagePresent(schema::MessageId id) const {
  SNB_INVARIANT_ROOT("lockfree");
  const Shard& s = shards_[ShardOfMessage(id, num_shards_)];
  util::EpochPin pin = s.epoch->pin();
  const MessageRecord* m = s.messages.Slot(id);
  return m != nullptr && m->present();
}

// ---- Per-shard transaction halves -------------------------------------------
//
// Publication order is what makes kEpoch readers safe: a record's payload
// is stored, then its `ready` flag release-published, and only then is its
// id linked into adjacency lists (whose RcuVector appends are themselves
// release stores). A reader that can see an id in any list therefore sees
// the fully built record behind it — the half decomposition preserves this
// because every caller (sync Add* above, driver::ShardWriterPool) orders
// the create half before the link halves.

Status GraphStore::ApplyPersonCreate(const Person& person) {
  if (person.id >= kMaxEntityId) return BadId("person", person.id);
  Shard& s = PersonShard(person.id);
  util::WriterMutexLock lock(&s.mu);
  PersonRecord* rec = s.persons.GrowToSlot(person.id, *s.epoch);
  if (rec->present()) {
    return Status::AlreadyExists("person " + std::to_string(person.id));
  }
  rec->data = person;
  rec->ready.store(1, std::memory_order_release);
  num_persons_.fetch_add(1, std::memory_order_release);
  return Status::Ok();
}

Status GraphStore::ApplyFriendshipHalf(schema::PersonId owner,
                                       schema::PersonId other,
                                       util::TimestampMs since,
                                       bool bump_counters) {
  Shard& s = PersonShard(owner);
  util::WriterMutexLock lock(&s.mu);
  PersonRecord* p = s.persons.MutableSlot(owner);
  if (p == nullptr || !p->present()) {
    return Status::NotFound("friendship endpoint missing");
  }
  p->friends.insert_sorted({other, since}, kFriendLess, *s.epoch);
  if (bump_counters) {
    num_knows_.fetch_add(1, std::memory_order_release);
    knows_version_.fetch_add(1, std::memory_order_release);
  }
  return Status::Ok();
}

Status GraphStore::ApplyForumCreate(const schema::Forum& forum) {
  if (forum.id >= kMaxEntityId) return BadId("forum", forum.id);
  Shard& s = ForumShard(forum.id);
  util::WriterMutexLock lock(&s.mu);
  ForumRecord* rec = s.forums.GrowToSlot(forum.id, *s.epoch);
  if (rec->present()) {
    return Status::AlreadyExists("forum " + std::to_string(forum.id));
  }
  rec->data = forum;
  rec->ready.store(1, std::memory_order_release);
  num_forums_.fetch_add(1, std::memory_order_release);
  return Status::Ok();
}

Status GraphStore::ApplyMembershipPersonHalf(
    const schema::ForumMembership& membership) {
  Shard& s = PersonShard(membership.person_id);
  util::WriterMutexLock lock(&s.mu);
  PersonRecord* person = s.persons.MutableSlot(membership.person_id);
  if (person == nullptr || !person->present()) {
    return Status::NotFound("membership endpoint missing");
  }
  person->forums.push_back({membership.forum_id, membership.join_date},
                           *s.epoch);
  return Status::Ok();
}

Status GraphStore::ApplyMembershipForumHalf(
    const schema::ForumMembership& membership, bool bump_counters) {
  Shard& s = ForumShard(membership.forum_id);
  util::WriterMutexLock lock(&s.mu);
  ForumRecord* forum = s.forums.MutableSlot(membership.forum_id);
  if (forum == nullptr || !forum->present()) {
    return Status::NotFound("membership endpoint missing");
  }
  forum->members.push_back({membership.person_id, membership.join_date},
                           *s.epoch);
  if (bump_counters) {
    num_memberships_.fetch_add(1, std::memory_order_release);
  }
  return Status::Ok();
}

Status GraphStore::ApplyMessageCreate(const Message& message) {
  if (message.id >= kMaxEntityId) return BadId("message", message.id);
  Shard& s = MessageShard(message.id);
  util::WriterMutexLock lock(&s.mu);
  MessageRecord* rec = s.messages.GrowToSlot(message.id, *s.epoch);
  if (rec->present()) {
    return Status::AlreadyExists("message " + std::to_string(message.id));
  }
  rec->data = message;
  rec->ready.store(1, std::memory_order_release);
  num_messages_.fetch_add(1, std::memory_order_release);
  return Status::Ok();
}

Status GraphStore::ApplyMessageCreatorLink(const Message& message) {
  Shard& s = PersonShard(message.creator_id);
  util::WriterMutexLock lock(&s.mu);
  PersonRecord* creator = s.persons.MutableSlot(message.creator_id);
  if (creator == nullptr || !creator->present()) {
    return Status::NotFound("message creator missing");
  }
  // Keep the creator's message list sorted by (date, id) regardless of
  // application order. Q2/Q9 binary-search this list by date and S2 walks
  // it newest-first; the windowed and parallel-GCT drivers may apply two
  // messages of one creator out of due-time order when they fall into
  // different forum partitions, so insertion — not arrival — establishes
  // the invariant. Datagen streams are mostly ordered, so this is an O(1)
  // append except for the rare cross-partition inversion.
  creator->messages.insert_sorted(
      {message.id, message.creation_date},
      [](const DatedEdge& a, const DatedEdge& b) {
        if (a.date != b.date) return a.date < b.date;
        return a.id < b.id;
      },
      *s.epoch);
  return Status::Ok();
}

Status GraphStore::ApplyMessageContainerLink(const Message& message) {
  if (message.kind == schema::MessageKind::kComment) {
    Shard& s = MessageShard(message.reply_to_id);
    util::WriterMutexLock lock(&s.mu);
    MessageRecord* parent = s.messages.MutableSlot(message.reply_to_id);
    if (parent == nullptr || !parent->present()) {
      return Status::NotFound("comment parent missing");
    }
    parent->replies.push_back(message.id, *s.epoch);
    return Status::Ok();
  }
  Shard& s = ForumShard(message.forum_id);
  util::WriterMutexLock lock(&s.mu);
  ForumRecord* forum = s.forums.MutableSlot(message.forum_id);
  if (forum == nullptr || !forum->present()) {
    return Status::NotFound("post forum missing");
  }
  forum->posts.push_back(message.id, *s.epoch);
  return Status::Ok();
}

Status GraphStore::ApplyLikePersonHalf(const schema::Like& like) {
  Shard& s = PersonShard(like.person_id);
  util::WriterMutexLock lock(&s.mu);
  PersonRecord* person = s.persons.MutableSlot(like.person_id);
  if (person == nullptr || !person->present()) {
    return Status::NotFound("like person missing");
  }
  person->likes.push_back({like.message_id, like.creation_date}, *s.epoch);
  return Status::Ok();
}

Status GraphStore::ApplyLikeMessageHalf(const schema::Like& like,
                                        bool bump_counters) {
  Shard& s = MessageShard(like.message_id);
  util::WriterMutexLock lock(&s.mu);
  MessageRecord* message = s.messages.MutableSlot(like.message_id);
  if (message == nullptr || !message->present()) {
    return Status::NotFound("liked message missing");
  }
  message->likes.push_back({like.person_id, like.creation_date}, *s.epoch);
  if (bump_counters) {
    num_likes_.fetch_add(1, std::memory_order_release);
  }
  return Status::Ok();
}

// ---- Read accessors ---------------------------------------------------------

bool GraphStore::AreFriends(const ShardSnapshot& snap, schema::PersonId a,
                            schema::PersonId b) const {
  SNB_INVARIANT_ROOT("pinned_read");
  const PersonRecord* pa = FindPerson(snap, a);
  if (pa == nullptr) return false;
  auto friends = pa->friends.view();
  auto it = std::lower_bound(
      friends.begin(), friends.end(), b,
      [](const FriendEdge& e, schema::PersonId id) { return e.other < id; });
  return it != friends.end() && it->other == b;
}

std::vector<schema::PersonId> GraphStore::PersonIds(
    const ShardSnapshot& snap) const {
  std::vector<schema::PersonId> ids;
  ids.reserve(NumPersons());
  uint64_t bound = 0;
  for (uint32_t i = 0; i < num_shards_; ++i) {
    bound = std::max(bound, shards_[i].persons.bound());
  }
  for (uint64_t id = 0; id < bound; ++id) {
    if (FindPerson(snap, id) != nullptr) ids.push_back(id);
  }
  return ids;
}

std::vector<schema::ForumId> GraphStore::ForumIds(
    const ShardSnapshot& snap) const {
  std::vector<schema::ForumId> ids;
  ids.reserve(NumForums());
  uint64_t bound = 0;
  for (uint32_t i = 0; i < num_shards_; ++i) {
    bound = std::max(bound, shards_[i].forums.bound());
  }
  for (uint64_t id = 0; id < bound; ++id) {
    if (FindForum(snap, id) != nullptr) ids.push_back(id);
  }
  return ids;
}

StorageBreakdown GraphStore::ComputeStorageBreakdown() const {
  StorageBreakdown b;
  // One shard at a time: per-shard writer quiescence is enough because the
  // scan only reads records and lists owned by the locked shard.
  for (uint32_t si = 0; si < num_shards_; ++si) {
    const Shard& s = shards_[si];
    util::WriterMutexLock lock(&s.mu);
    uint64_t message_bound = s.messages.bound();
    for (uint64_t id = 0; id < message_bound; ++id) {
      const MessageRecord* m = s.messages.Slot(id);
      if (m == nullptr || !m->present()) continue;
      b.message_bytes += sizeof(MessageRecord) + m->data.content.capacity() +
                         m->data.tags.capacity() * sizeof(schema::TagId) +
                         m->replies.capacity_bytes();
      b.message_content_bytes += m->data.content.capacity();
      b.likes_bytes += m->likes.capacity_bytes();
    }
    uint64_t person_bound = s.persons.bound();
    for (uint64_t id = 0; id < person_bound; ++id) {
      const PersonRecord* p = s.persons.Slot(id);
      if (p == nullptr || !p->present()) continue;
      uint64_t attr = sizeof(PersonRecord) + p->data.first_name.capacity() +
                      p->data.last_name.capacity() +
                      p->data.browser.capacity() +
                      p->data.location_ip.capacity() +
                      p->data.interests.capacity() * sizeof(schema::TagId) +
                      p->data.languages.capacity() * sizeof(uint32_t);
      for (const std::string& e : p->data.emails) attr += e.capacity();
      b.person_bytes += attr;
      b.friends_bytes += p->friends.capacity_bytes();
      b.membership_bytes += p->forums.capacity_bytes();
      b.likes_bytes += p->likes.capacity_bytes();
      b.message_bytes += p->messages.capacity_bytes();
    }
    uint64_t forum_bound = s.forums.bound();
    for (uint64_t id = 0; id < forum_bound; ++id) {
      const ForumRecord* f = s.forums.Slot(id);
      if (f == nullptr || !f->present()) continue;
      b.forum_bytes += sizeof(ForumRecord) + f->data.title.capacity() +
                       f->data.tags.capacity() * sizeof(schema::TagId) +
                       f->posts.capacity_bytes();
      b.membership_bytes += f->members.capacity_bytes();
    }
  }
  return b;
}

util::EpochManager::EpochStats GraphStore::AggregateEpochStats() const {
  util::EpochManager::EpochStats total;
  for (uint32_t i = 0; i < num_shards_; ++i) {
    util::EpochManager::EpochStats s = shards_[i].epoch->stats();
    total.advances += s.advances;
    total.retired += s.retired;
    total.freed += s.freed;
    total.pending += s.pending;
  }
  return total;
}

void GraphStore::DrainEpochsForTesting() const {
  for (uint32_t i = 0; i < num_shards_; ++i) {
    shards_[i].epoch->DrainForTesting();
  }
}

}  // namespace snb::store
