// Batched hash join: open-addressing u64 tables and block probe helpers.
//
// The scalar plans use std::unordered_set/map on their join hot paths; on
// small keys that pays a pointer chase and an allocation per node. The
// batched engine joins through flat power-of-two tables with linear
// probing (Mix64-scrambled keys, load factor <= 0.5): build once from the
// key column, then probe whole blocks and emit a selection vector of
// matching row indices, so the probe loop touches one contiguous table
// and one contiguous key column.
//
// Keys are entity ids, all < 2^40 (the store rejects larger), so ~0ULL
// (schema::kInvalidId) is safe as the empty-slot sentinel. Tables are
// build-once/probe-many within a single query execution on one thread —
// no concurrency, no tombstones, no resize-under-probe.
#ifndef SNB_EXEC_HASH_JOIN_H_
#define SNB_EXEC_HASH_JOIN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace snb::exec {

/// Flat hash set over u64 keys (the join build side when no payload is
/// needed: semi-joins like "creator in two-hop circle").
class HashSet64 {
 public:
  static constexpr uint64_t kEmpty = ~0ULL;

  explicit HashSet64(size_t expected = 0) { Rebuild(expected); }

  void Reserve(size_t expected) { Rebuild(expected); }

  /// Inserting kEmpty and inserting beyond the reserved count are
  /// programming errors; the table never resizes during probing.
  void Insert(uint64_t key) {
    if (size_ + 1 > slots_.size() / 2) Grow();
    size_t idx = IndexOf(key);
    while (slots_[idx] != kEmpty) {
      if (slots_[idx] == key) return;
      idx = (idx + 1) & mask_;
    }
    slots_[idx] = key;
    ++size_;
  }

  bool Contains(uint64_t key) const {
    size_t idx = IndexOf(key);
    while (slots_[idx] != kEmpty) {
      if (slots_[idx] == key) return true;
      idx = (idx + 1) & mask_;
    }
    return false;
  }

  size_t size() const { return size_; }

  /// Block probe: writes the indices of the hits among keys[0..n) into
  /// `sel` (room for n) and returns the hit count. The branchy Contains
  /// is hoisted into one tight loop over the key column.
  size_t ProbeBatch(const uint64_t* keys, size_t n, uint32_t* sel) const {
    size_t hits = 0;
    for (size_t r = 0; r < n; ++r) {
      sel[hits] = static_cast<uint32_t>(r);
      hits += static_cast<size_t>(Contains(keys[r]));
    }
    return hits;
  }

 private:
  size_t IndexOf(uint64_t key) const { return util::Mix64(key) & mask_; }

  void Rebuild(size_t expected) {
    size_t cap = 16;
    while (cap < expected * 2 + 1) cap <<= 1;
    slots_.assign(cap, kEmpty);
    mask_ = cap - 1;
    size_ = 0;
  }

  void Grow() {
    std::vector<uint64_t> old = std::move(slots_);
    slots_.assign(old.size() * 2, kEmpty);
    mask_ = slots_.size() - 1;
    size_ = 0;
    for (uint64_t key : old) {
      if (key != kEmpty) {
        size_t idx = IndexOf(key);
        while (slots_[idx] != kEmpty) idx = (idx + 1) & mask_;
        slots_[idx] = key;
        ++size_;
      }
    }
  }

  std::vector<uint64_t> slots_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

/// Flat hash map u64 -> u64 (join build side with payload, e.g. the
/// needed-pair accumulator index in the batched Q14 weight join).
class HashMap64 {
 public:
  static constexpr uint64_t kEmpty = ~0ULL;

  explicit HashMap64(size_t expected = 0) { Rebuild(expected); }

  void Reserve(size_t expected) { Rebuild(expected); }

  /// Inserts or overwrites.
  void Put(uint64_t key, uint64_t value) {
    if (size_ + 1 > keys_.size() / 2) Grow();
    size_t idx = IndexOf(key);
    while (keys_[idx] != kEmpty && keys_[idx] != key) {
      idx = (idx + 1) & mask_;
    }
    if (keys_[idx] == kEmpty) {
      keys_[idx] = key;
      ++size_;
    }
    values_[idx] = value;
  }

  /// nullptr when absent; the pointer is valid until the next Put.
  const uint64_t* Find(uint64_t key) const {
    size_t idx = IndexOf(key);
    while (keys_[idx] != kEmpty) {
      if (keys_[idx] == key) return &values_[idx];
      idx = (idx + 1) & mask_;
    }
    return nullptr;
  }

  size_t size() const { return size_; }

 private:
  size_t IndexOf(uint64_t key) const { return util::Mix64(key) & mask_; }

  void Rebuild(size_t expected) {
    size_t cap = 16;
    while (cap < expected * 2 + 1) cap <<= 1;
    keys_.assign(cap, kEmpty);
    values_.assign(cap, 0);
    mask_ = cap - 1;
    size_ = 0;
  }

  void Grow() {
    std::vector<uint64_t> old_keys = std::move(keys_);
    std::vector<uint64_t> old_values = std::move(values_);
    keys_.assign(old_keys.size() * 2, kEmpty);
    values_.assign(old_keys.size() * 2, 0);
    mask_ = keys_.size() - 1;
    size_ = 0;
    for (size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] != kEmpty) Put(old_keys[i], old_values[i]);
    }
  }

  std::vector<uint64_t> keys_;
  std::vector<uint64_t> values_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace snb::exec

#endif  // SNB_EXEC_HASH_JOIN_H_
