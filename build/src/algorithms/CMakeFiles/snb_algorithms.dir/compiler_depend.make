# Empty compiler generated dependencies file for snb_algorithms.
# This may be replaced when dependencies are built.
