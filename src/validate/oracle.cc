#include "validate/oracle.h"

#include <algorithm>
#include <ctime>
#include <deque>
#include <unordered_map>
#include <unordered_set>

namespace snb::validate {
namespace {

using queries::Q10Result;
using queries::Q11Result;
using queries::Q12Result;
using queries::Q14Result;
using queries::Q1Result;
using queries::Q2Result;
using queries::Q3Result;
using queries::Q4Result;
using queries::Q5Result;
using queries::Q6Result;
using queries::Q7Result;
using queries::Q8Result;
using queries::Q9Result;
using schema::Message;
using schema::MessageKind;
using schema::Person;
using schema::PersonId;
using util::TimestampMs;

/// Month (1-12) and day (1-31) of a timestamp, UTC — same rendering the
/// store-side Q10 uses.
void MonthDayOf(TimestampMs ts, int* month, int* day) {
  std::time_t secs = static_cast<std::time_t>(ts / util::kMillisPerSecond);
  std::tm tm_utc{};
  gmtime_r(&secs, &tm_utc);
  *month = tm_utc.tm_mon + 1;
  *day = tm_utc.tm_mday;
}

bool ByDateThenId(const Message* a, const Message* b) {
  if (a->creation_date != b->creation_date) {
    return a->creation_date < b->creation_date;
  }
  return a->id < b->id;
}

}  // namespace

const Person* Oracle::FindPerson(PersonId id) const {
  for (const Person& p : net_.persons) {
    if (p.id == id) return &p;
  }
  return nullptr;
}

const Message* Oracle::FindMessage(schema::MessageId id) const {
  for (const Message& m : net_.messages) {
    if (m.id == id) return &m;
  }
  return nullptr;
}

const schema::Forum* Oracle::FindForum(schema::ForumId id) const {
  for (const schema::Forum& f : net_.forums) {
    if (f.id == id) return &f;
  }
  return nullptr;
}

std::vector<PersonId> Oracle::FriendIds(PersonId person) const {
  std::vector<PersonId> out;
  for (const schema::Knows& k : net_.knows) {
    if (k.person1_id == person) out.push_back(k.person2_id);
    if (k.person2_id == person) out.push_back(k.person1_id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<PersonId> Oracle::TwoHopCircle(PersonId person) const {
  if (FindPerson(person) == nullptr) return {};
  std::unordered_set<PersonId> seen;
  seen.insert(person);
  std::vector<PersonId> out;
  std::vector<PersonId> direct = FriendIds(person);
  for (PersonId f : direct) {
    if (seen.insert(f).second) out.push_back(f);
  }
  for (PersonId f : direct) {
    for (PersonId ff : FriendIds(f)) {
      if (seen.insert(ff).second) out.push_back(ff);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool Oracle::AreFriends(PersonId a, PersonId b) const {
  for (const schema::Knows& k : net_.knows) {
    if ((k.person1_id == a && k.person2_id == b) ||
        (k.person1_id == b && k.person2_id == a)) {
      return true;
    }
  }
  return false;
}

std::vector<const Message*> Oracle::MessagesOf(PersonId person) const {
  std::vector<const Message*> out;
  for (const Message& m : net_.messages) {
    if (m.creator_id == person) out.push_back(&m);
  }
  std::sort(out.begin(), out.end(), ByDateThenId);
  return out;
}

// ---- Q1 -------------------------------------------------------------------

std::vector<Q1Result> Oracle::Query1(PersonId start,
                                     const std::string& first_name,
                                     int limit) const {
  std::vector<Q1Result> results;
  if (FindPerson(start) == nullptr) return results;
  std::unordered_map<PersonId, uint32_t> dist{{start, 0}};
  std::vector<PersonId> frontier{start};
  for (uint32_t d = 1; d <= 3 && !frontier.empty(); ++d) {
    std::vector<PersonId> next;
    for (PersonId pid : frontier) {
      for (PersonId other : FriendIds(pid)) {
        if (!dist.emplace(other, d).second) continue;
        next.push_back(other);
        const Person* candidate = FindPerson(other);
        if (candidate != nullptr && candidate->first_name == first_name) {
          results.push_back({other, d, candidate->last_name,
                             candidate->city_id, candidate->university_id,
                             candidate->company_id});
        }
      }
    }
    frontier = std::move(next);
  }
  std::sort(results.begin(), results.end(),
            [](const Q1Result& a, const Q1Result& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              if (a.last_name != b.last_name) return a.last_name < b.last_name;
              return a.person_id < b.person_id;
            });
  if (static_cast<int>(results.size()) > limit) results.resize(limit);
  return results;
}

// ---- Q2 -------------------------------------------------------------------

std::vector<Q2Result> Oracle::Query2(PersonId start, TimestampMs max_date,
                                     int limit) const {
  std::vector<Q2Result> candidates;
  if (FindPerson(start) == nullptr) return candidates;
  for (PersonId fid : FriendIds(start)) {
    std::vector<const Message*> msgs = MessagesOf(fid);
    size_t upper = 0;
    while (upper < msgs.size() && msgs[upper]->creation_date <= max_date) {
      ++upper;
    }
    size_t take = std::min<size_t>(upper, static_cast<size_t>(limit));
    for (size_t i = upper - take; i < upper; ++i) {
      candidates.push_back({msgs[i]->id, fid, msgs[i]->creation_date});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Q2Result& a, const Q2Result& b) {
              if (a.creation_date != b.creation_date) {
                return a.creation_date > b.creation_date;
              }
              return a.message_id < b.message_id;
            });
  if (static_cast<int>(candidates.size()) > limit) candidates.resize(limit);
  return candidates;
}

// ---- Q3 -------------------------------------------------------------------

std::vector<Q3Result> Oracle::Query3(
    PersonId start, const std::vector<schema::PlaceId>& city_country,
    schema::PlaceId country_x, schema::PlaceId country_y,
    TimestampMs start_date, int duration_days, int limit) const {
  TimestampMs end_date = start_date + duration_days * util::kMillisPerDay;
  std::vector<Q3Result> results;
  for (PersonId pid : TwoHopCircle(start)) {
    const Person* p = FindPerson(pid);
    if (p == nullptr) continue;
    if (p->city_id < city_country.size()) {
      schema::PlaceId home = city_country[p->city_id];
      if (home == country_x || home == country_y) continue;
    }
    uint32_t count_x = 0, count_y = 0;
    for (const Message* m : MessagesOf(pid)) {
      if (m->creation_date < start_date || m->creation_date >= end_date) {
        continue;
      }
      if (m->country_id == country_x) {
        ++count_x;
      } else if (m->country_id == country_y) {
        ++count_y;
      }
    }
    if (count_x > 0 && count_y > 0) results.push_back({pid, count_x, count_y});
  }
  std::sort(results.begin(), results.end(),
            [](const Q3Result& a, const Q3Result& b) {
              uint64_t ta = a.count_x + a.count_y;
              uint64_t tb = b.count_x + b.count_y;
              if (ta != tb) return ta > tb;
              return a.person_id < b.person_id;
            });
  if (static_cast<int>(results.size()) > limit) results.resize(limit);
  return results;
}

// ---- Q4 -------------------------------------------------------------------

std::vector<Q4Result> Oracle::Query4(PersonId start, TimestampMs start_date,
                                     int duration_days, int limit) const {
  if (FindPerson(start) == nullptr) return {};
  TimestampMs end_date = start_date + duration_days * util::kMillisPerDay;
  std::unordered_map<schema::TagId, uint32_t> in_window;
  std::unordered_set<schema::TagId> before_window;
  for (PersonId fid : FriendIds(start)) {
    for (const Message* m : MessagesOf(fid)) {
      if (m->creation_date >= end_date) continue;
      if (m->kind == MessageKind::kComment) continue;
      if (m->creation_date < start_date) {
        for (schema::TagId t : m->tags) before_window.insert(t);
      } else {
        for (schema::TagId t : m->tags) ++in_window[t];
      }
    }
  }
  std::vector<Q4Result> results;
  for (auto [tag, count] : in_window) {
    if (before_window.count(tag) == 0) results.push_back({tag, count});
  }
  std::sort(results.begin(), results.end(),
            [](const Q4Result& a, const Q4Result& b) {
              if (a.post_count != b.post_count) {
                return a.post_count > b.post_count;
              }
              return a.tag < b.tag;
            });
  if (static_cast<int>(results.size()) > limit) results.resize(limit);
  return results;
}

// ---- Q5 -------------------------------------------------------------------

std::vector<Q5Result> Oracle::Query5(PersonId start, TimestampMs min_date,
                                     int limit) const {
  std::vector<PersonId> circle = TwoHopCircle(start);
  std::unordered_set<PersonId> circle_set(circle.begin(), circle.end());
  std::unordered_set<schema::ForumId> new_forums;
  for (const schema::ForumMembership& fm : net_.memberships) {
    if (circle_set.count(fm.person_id) > 0 && fm.join_date > min_date) {
      new_forums.insert(fm.forum_id);
    }
  }
  std::vector<Q5Result> results;
  for (schema::ForumId fid : new_forums) {
    if (FindForum(fid) == nullptr) continue;
    uint32_t count = 0;
    for (const Message& m : net_.messages) {
      if (m.kind == MessageKind::kComment) continue;
      if (m.forum_id != fid) continue;
      if (circle_set.count(m.creator_id) > 0) ++count;
    }
    results.push_back({fid, count});
  }
  std::sort(results.begin(), results.end(),
            [](const Q5Result& a, const Q5Result& b) {
              if (a.post_count != b.post_count) {
                return a.post_count > b.post_count;
              }
              return a.forum_id < b.forum_id;
            });
  if (static_cast<int>(results.size()) > limit) results.resize(limit);
  return results;
}

// ---- Q6 -------------------------------------------------------------------

std::vector<Q6Result> Oracle::Query6(PersonId start, schema::TagId tag,
                                     int limit) const {
  std::unordered_map<schema::TagId, uint32_t> co_counts;
  for (PersonId pid : TwoHopCircle(start)) {
    for (const Message* m : MessagesOf(pid)) {
      if (m->kind == MessageKind::kComment) continue;
      bool has_tag = false;
      for (schema::TagId t : m->tags) {
        if (t == tag) {
          has_tag = true;
          break;
        }
      }
      if (!has_tag) continue;
      for (schema::TagId t : m->tags) {
        if (t != tag) ++co_counts[t];
      }
    }
  }
  std::vector<Q6Result> results;
  results.reserve(co_counts.size());
  for (auto [t, c] : co_counts) results.push_back({t, c});
  std::sort(results.begin(), results.end(),
            [](const Q6Result& a, const Q6Result& b) {
              if (a.post_count != b.post_count) {
                return a.post_count > b.post_count;
              }
              return a.tag < b.tag;
            });
  if (static_cast<int>(results.size()) > limit) results.resize(limit);
  return results;
}

// ---- Q7 -------------------------------------------------------------------

std::vector<Q7Result> Oracle::Query7(PersonId start, int limit) const {
  std::vector<Q7Result> likes;
  if (FindPerson(start) == nullptr) return likes;
  for (const Message* m : MessagesOf(start)) {
    for (const schema::Like& like : net_.likes) {
      if (like.message_id != m->id) continue;
      Q7Result r;
      r.liker_id = like.person_id;
      r.message_id = m->id;
      r.like_date = like.creation_date;
      r.latency_minutes =
          (like.creation_date - m->creation_date) / util::kMillisPerMinute;
      r.is_outside_friendship = !AreFriends(start, like.person_id);
      likes.push_back(r);
    }
  }
  std::sort(likes.begin(), likes.end(),
            [](const Q7Result& a, const Q7Result& b) {
              if (a.like_date != b.like_date) return a.like_date > b.like_date;
              return a.liker_id < b.liker_id;
            });
  if (static_cast<int>(likes.size()) > limit) likes.resize(limit);
  return likes;
}

// ---- Q8 -------------------------------------------------------------------

std::vector<Q8Result> Oracle::Query8(PersonId start, int limit) const {
  std::vector<Q8Result> replies;
  if (FindPerson(start) == nullptr) return replies;
  for (const Message* m : MessagesOf(start)) {
    for (const Message& reply : net_.messages) {
      if (reply.kind != MessageKind::kComment || reply.reply_to_id != m->id) {
        continue;
      }
      replies.push_back({reply.id, reply.creator_id, reply.creation_date});
    }
  }
  std::sort(replies.begin(), replies.end(),
            [](const Q8Result& a, const Q8Result& b) {
              if (a.creation_date != b.creation_date) {
                return a.creation_date > b.creation_date;
              }
              return a.comment_id < b.comment_id;
            });
  if (static_cast<int>(replies.size()) > limit) replies.resize(limit);
  return replies;
}

// ---- Q9 -------------------------------------------------------------------

std::vector<Q9Result> Oracle::Query9(PersonId start, TimestampMs max_date,
                                     int limit) const {
  std::vector<Q9Result> candidates;
  for (PersonId pid : TwoHopCircle(start)) {
    std::vector<const Message*> msgs = MessagesOf(pid);
    size_t upper = 0;
    while (upper < msgs.size() &&
           msgs[upper]->creation_date <= max_date - 1) {
      ++upper;
    }
    size_t take = std::min<size_t>(upper, static_cast<size_t>(limit));
    for (size_t i = upper - take; i < upper; ++i) {
      candidates.push_back({msgs[i]->id, pid, msgs[i]->creation_date});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Q9Result& a, const Q9Result& b) {
              if (a.creation_date != b.creation_date) {
                return a.creation_date > b.creation_date;
              }
              return a.message_id < b.message_id;
            });
  if (static_cast<int>(candidates.size()) > limit) candidates.resize(limit);
  return candidates;
}

// ---- Q10 ------------------------------------------------------------------

std::vector<Q10Result> Oracle::Query10(PersonId start, int horoscope_month,
                                       int limit) const {
  std::vector<Q10Result> results;
  const Person* root = FindPerson(start);
  if (root == nullptr) return results;
  std::unordered_set<schema::TagId> interests(root->interests.begin(),
                                              root->interests.end());
  std::vector<PersonId> direct_ids = FriendIds(start);
  std::unordered_set<PersonId> direct(direct_ids.begin(), direct_ids.end());
  direct.insert(start);
  std::unordered_set<PersonId> fof;
  for (PersonId f : direct_ids) {
    for (PersonId ff : FriendIds(f)) {
      if (direct.count(ff) == 0) fof.insert(ff);
    }
  }
  for (PersonId pid : fof) {
    const Person* p = FindPerson(pid);
    if (p == nullptr) continue;
    int month = 0, day = 0;
    MonthDayOf(p->birthday, &month, &day);
    int next_month = horoscope_month % 12 + 1;
    bool sign_match = (month == horoscope_month && day >= 21) ||
                      (month == next_month && day < 22);
    if (!sign_match) continue;
    int32_t common = 0, other = 0;
    for (const Message* m : MessagesOf(pid)) {
      if (m->kind == MessageKind::kComment) continue;
      bool about_interest = false;
      for (schema::TagId t : m->tags) {
        if (interests.count(t) > 0) {
          about_interest = true;
          break;
        }
      }
      if (about_interest) {
        ++common;
      } else {
        ++other;
      }
    }
    results.push_back({pid, common - other});
  }
  std::sort(results.begin(), results.end(),
            [](const Q10Result& a, const Q10Result& b) {
              if (a.similarity != b.similarity) {
                return a.similarity > b.similarity;
              }
              return a.person_id < b.person_id;
            });
  if (static_cast<int>(results.size()) > limit) results.resize(limit);
  return results;
}

// ---- Q11 ------------------------------------------------------------------

std::vector<Q11Result> Oracle::Query11(
    PersonId start, const std::vector<schema::PlaceId>& company_country,
    schema::PlaceId country, uint16_t max_work_year, int limit) const {
  std::vector<Q11Result> results;
  for (PersonId pid : TwoHopCircle(start)) {
    const Person* p = FindPerson(pid);
    if (p == nullptr) continue;
    schema::OrganizationId company = p->company_id;
    if (company == schema::kInvalidId32) continue;
    if (company >= company_country.size()) continue;
    if (company_country[company] != country) continue;
    if (p->work_year >= max_work_year) continue;
    results.push_back({pid, company, p->work_year});
  }
  std::sort(results.begin(), results.end(),
            [](const Q11Result& a, const Q11Result& b) {
              if (a.work_year != b.work_year) return a.work_year < b.work_year;
              return a.person_id < b.person_id;
            });
  if (static_cast<int>(results.size()) > limit) results.resize(limit);
  return results;
}

// ---- Q12 ------------------------------------------------------------------

std::vector<Q12Result> Oracle::Query12(PersonId start,
                                       const std::vector<bool>& tag_in_class,
                                       int limit) const {
  std::vector<Q12Result> results;
  if (FindPerson(start) == nullptr) return results;
  for (PersonId fid : FriendIds(start)) {
    uint32_t count = 0;
    for (const Message* m : MessagesOf(fid)) {
      if (m->kind != MessageKind::kComment) continue;
      const Message* parent = FindMessage(m->reply_to_id);
      if (parent == nullptr || parent->kind == MessageKind::kComment) {
        continue;
      }
      for (schema::TagId t : parent->tags) {
        if (t < tag_in_class.size() && tag_in_class[t]) {
          ++count;
          break;
        }
      }
    }
    if (count > 0) results.push_back({fid, count});
  }
  std::sort(results.begin(), results.end(),
            [](const Q12Result& a, const Q12Result& b) {
              if (a.reply_count != b.reply_count) {
                return a.reply_count > b.reply_count;
              }
              return a.person_id < b.person_id;
            });
  if (static_cast<int>(results.size()) > limit) results.resize(limit);
  return results;
}

// ---- Q13 ------------------------------------------------------------------

int Oracle::Query13(PersonId person1, PersonId person2) const {
  if (person1 == person2) return 0;
  if (FindPerson(person1) == nullptr || FindPerson(person2) == nullptr) {
    return -1;
  }
  std::unordered_map<PersonId, int> dist{{person1, 0}};
  std::deque<PersonId> queue{person1};
  while (!queue.empty()) {
    PersonId pid = queue.front();
    queue.pop_front();
    int d = dist[pid];
    for (PersonId other : FriendIds(pid)) {
      if (dist.emplace(other, d + 1).second) {
        if (other == person2) return d + 1;
        queue.push_back(other);
      }
    }
  }
  return -1;
}

// ---- Q14 ------------------------------------------------------------------

namespace {

/// Comment-interaction weight of a person pair — same contract as the
/// store-side PairWeight.
double OraclePairWeight(const Oracle& oracle, PersonId a, PersonId b) {
  double weight = 0.0;
  for (PersonId from : {a, b}) {
    PersonId to = from == a ? b : a;
    for (const Message* m : oracle.MessagesOf(from)) {
      if (m->kind != MessageKind::kComment) continue;
      const Message* parent = oracle.FindMessage(m->reply_to_id);
      if (parent == nullptr || parent->creator_id != to) continue;
      weight += parent->kind == MessageKind::kComment ? 0.5 : 1.0;
    }
  }
  return weight;
}

}  // namespace

std::vector<Q14Result> Oracle::Query14(PersonId person1,
                                       PersonId person2) const {
  std::vector<Q14Result> results;
  if (FindPerson(person1) == nullptr || FindPerson(person2) == nullptr) {
    return results;
  }
  if (person1 == person2) {
    results.push_back({{person1}, 0.0});
    return results;
  }
  // Full BFS distances from person1.
  std::unordered_map<PersonId, int> dist{{person1, 0}};
  std::deque<PersonId> queue{person1};
  while (!queue.empty()) {
    PersonId pid = queue.front();
    queue.pop_front();
    int d = dist[pid];
    for (PersonId other : FriendIds(pid)) {
      if (dist.emplace(other, d + 1).second) queue.push_back(other);
    }
  }
  auto it2 = dist.find(person2);
  if (it2 == dist.end()) return results;

  // Enumerate shortest paths backwards from person2, parents in ascending
  // order, bounded like the SUT implementations.
  constexpr size_t kMaxPaths = 1000;
  std::vector<std::vector<PersonId>> paths;
  struct Frame {
    PersonId node;
    size_t next_parent;
  };
  std::vector<Frame> stack{{person2, 0}};
  while (!stack.empty() && paths.size() < kMaxPaths) {
    Frame& frame = stack.back();
    if (frame.node == person1) {
      std::vector<PersonId> path;
      path.reserve(stack.size());
      for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
        path.push_back(it->node);
      }
      paths.push_back(std::move(path));
      stack.pop_back();
      continue;
    }
    std::vector<PersonId> parents;
    int d = dist[frame.node];
    for (PersonId other : FriendIds(frame.node)) {
      auto it = dist.find(other);
      if (it != dist.end() && it->second == d - 1) parents.push_back(other);
    }
    if (frame.next_parent >= parents.size()) {
      stack.pop_back();
      continue;
    }
    PersonId parent = parents[frame.next_parent++];
    stack.push_back({parent, 0});
  }

  results.reserve(paths.size());
  for (std::vector<PersonId>& path : paths) {
    Q14Result r;
    r.weight = 0.0;
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      r.weight += OraclePairWeight(*this, path[i], path[i + 1]);
    }
    r.path = std::move(path);
    results.push_back(std::move(r));
  }
  std::sort(results.begin(), results.end(),
            [](const Q14Result& a, const Q14Result& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              return a.path < b.path;
            });
  return results;
}

// ---- Short reads ----------------------------------------------------------

queries::S1Result Oracle::ShortQuery1PersonProfile(PersonId person) const {
  queries::S1Result r;
  const Person* p = FindPerson(person);
  if (p == nullptr) return r;
  r.found = true;
  r.first_name = p->first_name;
  r.last_name = p->last_name;
  r.birthday = p->birthday;
  r.city_id = p->city_id;
  r.browser = p->browser;
  r.location_ip = p->location_ip;
  r.gender = p->gender;
  r.creation_date = p->creation_date;
  return r;
}

std::vector<queries::S2Result> Oracle::ShortQuery2RecentMessages(
    PersonId person, int limit) const {
  std::vector<queries::S2Result> results;
  if (FindPerson(person) == nullptr) return results;
  std::vector<const Message*> msgs = MessagesOf(person);
  size_t n = msgs.size();
  size_t take = std::min<size_t>(n, static_cast<size_t>(limit));
  for (size_t i = 0; i < take; ++i) {
    const Message* m = msgs[n - 1 - i];
    queries::S2Result r;
    r.message_id = m->id;
    r.creation_date = m->creation_date;
    r.root_post_id = m->root_post_id;
    const Message* root = FindMessage(m->root_post_id);
    r.root_author_id =
        root == nullptr ? schema::kInvalidId : root->creator_id;
    results.push_back(std::move(r));
  }
  return results;
}

std::vector<queries::S3Result> Oracle::ShortQuery3Friends(
    PersonId person) const {
  std::vector<queries::S3Result> results;
  if (FindPerson(person) == nullptr) return results;
  for (const schema::Knows& k : net_.knows) {
    if (k.person1_id == person) {
      results.push_back({k.person2_id, k.creation_date});
    } else if (k.person2_id == person) {
      results.push_back({k.person1_id, k.creation_date});
    }
  }
  std::sort(results.begin(), results.end(),
            [](const queries::S3Result& a, const queries::S3Result& b) {
              if (a.since != b.since) return a.since > b.since;
              return a.friend_id < b.friend_id;
            });
  return results;
}

queries::S4Result Oracle::ShortQuery4MessageContent(
    schema::MessageId message) const {
  queries::S4Result r;
  const Message* m = FindMessage(message);
  if (m == nullptr) return r;
  r.found = true;
  r.creation_date = m->creation_date;
  r.content = m->content;
  return r;
}

queries::S5Result Oracle::ShortQuery5MessageCreator(
    schema::MessageId message) const {
  queries::S5Result r;
  const Message* m = FindMessage(message);
  if (m == nullptr) return r;
  const Person* p = FindPerson(m->creator_id);
  if (p == nullptr) return r;
  r.found = true;
  r.creator_id = m->creator_id;
  r.first_name = p->first_name;
  r.last_name = p->last_name;
  return r;
}

queries::S6Result Oracle::ShortQuery6MessageForum(
    schema::MessageId message) const {
  queries::S6Result r;
  const Message* m = FindMessage(message);
  if (m == nullptr) return r;
  const Message* root = FindMessage(m->root_post_id);
  if (root == nullptr) return r;
  const schema::Forum* forum = FindForum(root->forum_id);
  if (forum == nullptr) return r;
  r.found = true;
  r.forum_id = root->forum_id;
  r.forum_title = forum->title;
  r.moderator_id = forum->moderator_id;
  return r;
}

std::vector<queries::S7Result> Oracle::ShortQuery7MessageReplies(
    schema::MessageId message) const {
  std::vector<queries::S7Result> results;
  const Message* m = FindMessage(message);
  if (m == nullptr) return results;
  for (const Message& reply : net_.messages) {
    if (reply.kind != MessageKind::kComment || reply.reply_to_id != m->id) {
      continue;
    }
    queries::S7Result r;
    r.comment_id = reply.id;
    r.replier_id = reply.creator_id;
    r.creation_date = reply.creation_date;
    r.replier_knows_author = AreFriends(m->creator_id, reply.creator_id);
    results.push_back(r);
  }
  std::sort(results.begin(), results.end(),
            [](const queries::S7Result& a, const queries::S7Result& b) {
              if (a.creation_date != b.creation_date) {
                return a.creation_date > b.creation_date;
              }
              return a.comment_id < b.comment_id;
            });
  return results;
}

}  // namespace snb::validate
