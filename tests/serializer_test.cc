// Round-trip tests for the CSV serializer and the N-Triples writer.
#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "datagen/serializer.h"

namespace snb::datagen {
namespace {

class SerializerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("snb_serializer_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static const Dataset& dataset() {
    static Dataset* ds = [] {
      DatagenConfig config;
      config.num_persons = 150;
      return new Dataset(Generate(config));
    }();
    return *ds;
  }

  std::filesystem::path dir_;
};

TEST_F(SerializerTest, WritesAllFiles) {
  auto sizes = WriteCsv(dataset(), dir_.string());
  ASSERT_TRUE(sizes.ok()) << sizes.status().ToString();
  EXPECT_GT(sizes.value().person_bytes, 0u);
  EXPECT_GT(sizes.value().knows_bytes, 0u);
  EXPECT_GT(sizes.value().forum_bytes, 0u);
  EXPECT_GT(sizes.value().membership_bytes, 0u);
  EXPECT_GT(sizes.value().message_bytes, 0u);
  EXPECT_GT(sizes.value().likes_bytes, 0u);
  EXPECT_GT(sizes.value().update_bytes, 0u);
  for (const char* name :
       {CsvFileSet::kPersons, CsvFileSet::kKnows, CsvFileSet::kForums,
        CsvFileSet::kMemberships, CsvFileSet::kMessages, CsvFileSet::kLikes,
        CsvFileSet::kUpdates}) {
    EXPECT_TRUE(std::filesystem::exists(dir_ / name)) << name;
  }
  // Messages dominate the CSV bytes, as in the paper's SF definition.
  EXPECT_GT(sizes.value().message_bytes, sizes.value().person_bytes);
}

TEST_F(SerializerTest, RoundTripsBulkData) {
  auto sizes = WriteCsv(dataset(), dir_.string());
  ASSERT_TRUE(sizes.ok());
  auto read = ReadCsv(dir_.string());
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  const schema::SocialNetwork& loaded = read.value();
  const schema::SocialNetwork& original = dataset().bulk;

  ASSERT_EQ(loaded.persons.size(), original.persons.size());
  for (size_t i = 0; i < loaded.persons.size(); ++i) {
    const schema::Person& a = loaded.persons[i];
    const schema::Person& b = original.persons[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.first_name, b.first_name);
    EXPECT_EQ(a.last_name, b.last_name);
    EXPECT_EQ(a.gender, b.gender);
    EXPECT_EQ(a.birthday, b.birthday);
    EXPECT_EQ(a.creation_date, b.creation_date);
    EXPECT_EQ(a.city_id, b.city_id);
    EXPECT_EQ(a.emails, b.emails);
    EXPECT_EQ(a.languages, b.languages);
    EXPECT_EQ(a.interests, b.interests);
    EXPECT_EQ(a.university_id, b.university_id);
    EXPECT_EQ(a.company_id, b.company_id);
  }
  ASSERT_EQ(loaded.knows.size(), original.knows.size());
  for (size_t i = 0; i < loaded.knows.size(); ++i) {
    EXPECT_EQ(loaded.knows[i].person1_id, original.knows[i].person1_id);
    EXPECT_EQ(loaded.knows[i].person2_id, original.knows[i].person2_id);
    EXPECT_EQ(loaded.knows[i].creation_date,
              original.knows[i].creation_date);
  }
  ASSERT_EQ(loaded.messages.size(), original.messages.size());
  for (size_t i = 0; i < loaded.messages.size(); ++i) {
    const schema::Message& a = loaded.messages[i];
    const schema::Message& b = original.messages[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.creator_id, b.creator_id);
    EXPECT_EQ(a.creation_date, b.creation_date);
    EXPECT_EQ(a.forum_id, b.forum_id);
    EXPECT_EQ(a.reply_to_id, b.reply_to_id);
    EXPECT_EQ(a.root_post_id, b.root_post_id);
    EXPECT_EQ(a.tags, b.tags);
    EXPECT_EQ(a.content, b.content);
  }
  EXPECT_EQ(loaded.forums.size(), original.forums.size());
  EXPECT_EQ(loaded.memberships.size(), original.memberships.size());
  EXPECT_EQ(loaded.likes.size(), original.likes.size());
}

TEST_F(SerializerTest, ReadMissingDirectoryFails) {
  auto read = ReadCsv((dir_ / "does_not_exist").string());
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), util::StatusCode::kNotFound);
}

TEST_F(SerializerTest, CsvBytesMatchStatisticsOrder) {
  // The statistics CSV estimate and the real serialized size must agree
  // within a factor of ~2 (the estimate is intentionally coarse).
  auto sizes = WriteCsv(dataset(), dir_.string());
  ASSERT_TRUE(sizes.ok());
  uint64_t real_bulk = sizes.value().Total() - sizes.value().update_bytes;
  uint64_t estimate = dataset().stats.csv_bytes;
  EXPECT_GT(estimate, real_bulk / 3);
  EXPECT_LT(estimate, real_bulk * 3);
}

TEST_F(SerializerTest, NTriplesUrisAreTimeOrdered) {
  std::filesystem::create_directories(dir_);
  std::string path = (dir_ / "graph.nt").string();
  auto bytes = WriteNTriples(dataset().bulk, path);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  EXPECT_GT(bytes.value(), 0u);

  // Message URIs: lexicographic order == id order == time order.
  std::ifstream in(path);
  std::string line;
  std::string prev;
  int checked = 0;
  while (std::getline(in, line) && checked < 2000) {
    if (line.rfind("<snb:msg/", 0) != 0) continue;
    std::string uri = line.substr(0, line.find(' '));
    if (!prev.empty() && uri != prev) {
      // Message triples are emitted in id order; each message's first URI
      // must be >= the previous one lexicographically.
      EXPECT_GE(uri, prev);
      ++checked;
    }
    prev = uri;
  }
  EXPECT_GT(checked, 0);
}

}  // namespace
}  // namespace snb::datagen
