file(REMOVE_RECURSE
  "libsnb_driver.a"
)
