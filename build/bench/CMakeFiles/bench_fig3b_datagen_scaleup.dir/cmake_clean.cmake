file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3b_datagen_scaleup.dir/bench_fig3b_datagen_scaleup.cc.o"
  "CMakeFiles/bench_fig3b_datagen_scaleup.dir/bench_fig3b_datagen_scaleup.cc.o.d"
  "bench_fig3b_datagen_scaleup"
  "bench_fig3b_datagen_scaleup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3b_datagen_scaleup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
