#include "queries/query9_plans.h"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <unordered_set>

namespace snb::queries {
namespace {

using schema::MessageId;
using schema::PersonId;
using store::FriendEdge;
using store::MessageRecord;
using store::PersonRecord;

/// Full Friends relation as a probeable hash index, built by scanning every
/// adjacency list (the cost a hash join pays that an index lookup does not).
class FriendsHashTable {
 public:
  FriendsHashTable(const GraphStore& store, const store::ShardSnapshot& pin,
                   Q9PlanStats* stats) {
    for (PersonId pid : store.PersonIds(pin)) {
      const PersonRecord* p = store.FindPerson(pin, pid);
      if (p == nullptr) continue;
      auto friends = p->friends.view();
      std::vector<PersonId>& bucket = table_[pid];
      bucket.reserve(friends.size());
      for (const FriendEdge& e : friends) {
        bucket.push_back(e.other);
        if (stats != nullptr) ++stats->build_tuples;
      }
    }
  }

  const std::vector<PersonId>* Probe(PersonId id) const {
    auto it = table_.find(id);
    return it == table_.end() ? nullptr : &it->second;
  }

 private:
  std::unordered_map<PersonId, std::vector<PersonId>> table_;
};

/// Emits the friends of `id` through `emit`, via index lookup or the
/// prebuilt hash table.
template <typename EmitFn>
void JoinFriends(const GraphStore& store, const store::ShardSnapshot& pin,
                 JoinStrategy strategy, const FriendsHashTable* hash,
                 PersonId id, EmitFn emit) {
  if (strategy == JoinStrategy::kIndexNestedLoop) {
    const PersonRecord* p = store.FindPerson(pin, id);
    if (p == nullptr) return;
    for (const FriendEdge& e : p->friends.view()) emit(e.other);
  } else {
    const std::vector<PersonId>* bucket = hash->Probe(id);
    if (bucket == nullptr) return;
    for (PersonId other : *bucket) emit(other);
  }
}

}  // namespace

std::vector<std::pair<std::string, obs::OperatorStats>> ProfileRows(
    const Q9OperatorProfile& profile) {
  std::vector<std::pair<std::string, obs::OperatorStats>> rows;
  auto add = [&rows](const char* name, const obs::OperatorStats& s) {
    if (s.invocations > 0) rows.emplace_back(name, s);
  };
  add("hash_build", profile.hash_build);
  add("join1_friends", profile.join1);
  add("join2_friends_of_friends", profile.join2);
  add("join3_messages", profile.join3);
  add("sort_limit", profile.sort_limit);
  return rows;
}

obs::Q9ProfileSection MakeQ9ProfileSection(const Q9OperatorProfile& profile,
                                           std::string plan_label) {
  obs::Q9ProfileSection section;
  section.plan = std::move(plan_label);
  for (auto& [name, stats] : ProfileRows(profile)) {
    section.operators.push_back({std::move(name), stats});
  }
  return section;
}

std::vector<Q9Result> Query9WithPlan(const GraphStore& store,
                                     PersonId start, TimestampMs max_date,
                                     int limit, JoinStrategy join1,
                                     JoinStrategy join2, JoinStrategy join3,
                                     Q9PlanStats* stats,
                                     Q9OperatorProfile* profile) {
  auto pin = store.ReadLock();
  Q9PlanStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = Q9PlanStats();
  // Null sinks disengage the spans entirely: no clock reads when no
  // profile was requested.
  auto sink = [profile](obs::OperatorStats Q9OperatorProfile::* member) {
    return profile == nullptr ? nullptr : &(profile->*member);
  };

  // A hash-join plan builds its table once per join over the full relation.
  std::unique_ptr<FriendsHashTable> friends_hash;
  if (join1 == JoinStrategy::kHash || join2 == JoinStrategy::kHash) {
    obs::TraceSpan span(sink(&Q9OperatorProfile::hash_build), "hash_build");
    friends_hash = std::make_unique<FriendsHashTable>(store, pin, stats);
    span.AddRows(stats->build_tuples);
  }

  // join1: person |>< friends.
  std::vector<PersonId> friends;
  {
    obs::TraceSpan span(sink(&Q9OperatorProfile::join1), "join1");
    JoinFriends(store, pin, join1, friends_hash.get(), start, [&](PersonId f) {
      friends.push_back(f);
      ++stats->join1_output;
    });
    span.AddRows(stats->join1_output);
  }

  // join2: friends |>< friends -> two-hop circle (deduplicated union).
  std::unordered_set<PersonId> circle(friends.begin(), friends.end());
  circle.erase(start);
  {
    obs::TraceSpan span(sink(&Q9OperatorProfile::join2), "join2");
    for (PersonId f : friends) {
      JoinFriends(store, pin, join2, friends_hash.get(), f, [&](PersonId ff) {
        ++stats->join2_output;
        if (ff != start) circle.insert(ff);
      });
    }
    span.AddRows(stats->join2_output);
  }

  // join3: circle |>< messages (creation_date < max_date).
  std::vector<Q9Result> candidates;
  {
    obs::TraceSpan span(sink(&Q9OperatorProfile::join3), "join3");
    if (join3 == JoinStrategy::kIndexNestedLoop) {
      for (PersonId pid : circle) {
        const PersonRecord* p = store.FindPerson(pin, pid);
        if (p == nullptr) continue;
        for (const store::DatedEdge& e : p->messages.view()) {
          if (e.date >= max_date) break;  // Date-ordered index.
          candidates.push_back({e.id, pid, e.date});
          ++stats->join3_output;
        }
      }
    } else {
      // Hash join: scan the whole message table, probe the circle.
      MessageId bound = store.MessageIdBound();
      stats->build_tuples += circle.size();
      for (MessageId mid = 0; mid < bound; ++mid) {
        const MessageRecord* m = store.FindMessage(pin, mid);
        if (m == nullptr || m->data.creation_date >= max_date) continue;
        if (circle.count(m->data.creator_id) == 0) continue;
        candidates.push_back(
            {mid, m->data.creator_id, m->data.creation_date});
        ++stats->join3_output;
      }
    }
    span.AddRows(stats->join3_output);
  }

  {
    obs::TraceSpan span(sink(&Q9OperatorProfile::sort_limit), "sort_limit");
    std::sort(candidates.begin(), candidates.end(),
              [](const Q9Result& a, const Q9Result& b) {
                if (a.creation_date != b.creation_date) {
                  return a.creation_date > b.creation_date;
                }
                return a.message_id < b.message_id;
              });
    if (static_cast<int>(candidates.size()) > limit) {
      candidates.resize(limit);
    }
    span.AddRows(candidates.size());
  }
  return candidates;
}

}  // namespace snb::queries
