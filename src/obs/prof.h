// Always-on sampling CPU profiler with operator-attributed stacks.
//
// Perf counters (perf_counters.h) say *why* an operator is slow; this
// module says *where the cycles go* across the whole binary. Each
// registered thread owns a POSIX per-thread CPU-time timer
// (timer_create on the thread's CPU clock, SIGEV_THREAD_ID) that
// delivers SIGPROF once per interval of *on-CPU* time. The handler is
// async-signal-safe: it walks the frame-pointer chain out of the
// interrupted ucontext, reads the thread's current attribution context
// (lane name, active OpType, innermost TraceSpan operator label — all
// plain relaxed atomics) and appends one fixed-size sample to the
// thread's lock-free SPSC ring. A background collator drains the rings
// into a folded-stack multiset ("thread:<lane>;op:<name>;opr:<label>;
// frame;...;frame count"), symbolizing program counters via dladdr.
//
// Availability is a runtime property: seccomp may deny timer_create,
// and sanitizer runtimes intercept signal delivery (the profiler
// auto-disables under TSan/ASan at compile time). Enable() probes once
// and installs one of:
//
//   * kTimer — real per-thread timers, samples flow;
//   * kNoop  — probe failed, SNB_PROF_FORCE_NOOP set, or sanitizer
//     build: every Collect() returns an empty profile with the reason
//     in `message`; the run stays valid.
//
// Until Enable() is called the subsystem is kDisabled and every hot
// path (TraceSpan label pushes, driver context scopes) is one relaxed
// load. Accounting is conserved by construction and cross-checked by
// the report validator: captured == attributed + unattributed +
// dropped, where `attributed` samples carried an active operation
// context, `unattributed` ones did not (thread idle between ops), and
// `dropped` hit a full ring. The handler's own cost is measured into
// `self_overhead_ns` and compared against the sampled threads' CPU
// time (task clock) — compare_reports.py gates the ratio at 2%.
#ifndef SNB_OBS_PROF_H_
#define SNB_OBS_PROF_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace snb::obs::prof {

// ---- Backend control ------------------------------------------------------

enum class Backend : uint8_t {
  kDisabled = 0,  // Enable() never called: all paths free, no samples.
  kNoop,          // Probe failed / forced: no samples, run is valid.
  kTimer,         // Per-thread POSIX CPU-time timers, samples flow.
};

const char* BackendName(Backend b);

struct EnableOptions {
  /// Skip the probe and install the no-op backend (tests, and honoured
  /// implicitly when the SNB_PROF_FORCE_NOOP environment variable is
  /// set — the CI leg that asserts graceful degradation).
  bool force_noop = false;
  /// Sampling interval in microseconds of thread CPU time; 0 picks the
  /// SNB_PROF_INTERVAL_US environment variable or the 997 us default
  /// (a prime, so periodic code does not alias the sampling grid).
  uint32_t interval_us = 0;
};

/// Probes timer_create/SIGPROF on the calling thread and installs the
/// backend; on kTimer, arms a timer for every already-registered thread
/// and starts the collator. Idempotent: calling again re-probes.
Backend Enable(const EnableOptions& options = {});

/// Disarms every thread's timer, stops the collator and returns to
/// kDisabled. Accumulated samples and accounting are cleared. Threads
/// stay registered (their scopes are still open) and re-arm on the
/// next Enable(). Test hook, also safe at shutdown.
void ResetForTest();

Backend ActiveBackend();
/// True when samples are being collected (backend == kTimer).
bool SamplingLive();
/// Human-readable outcome of the last Enable() ("sampling live ...",
/// "timer_create failed: ...", ...). Empty while kDisabled.
std::string BackendMessage();

/// Forces the internal timer_create wrapper to fail with `err` (e.g.
/// EPERM under seccomp, ENOSYS) so tests exercise the real fallback
/// path; 0 restores the real syscall.
void SetTimerCreateErrnoForTest(int err);

/// Number of currently-registered (live) threads. Test hook: asserts
/// that lazily-registered threads really unregister at thread exit, so
/// Collect() never reads the CPU clock of a dead pthread.
size_t LiveRegisteredThreadsForTest();

// ---- Thread registration --------------------------------------------------

/// Registers the calling thread under `lane_name` ("driver.0", "main"):
/// captures its stack bounds for safe frame-pointer walks, allocates
/// its sample ring, and arms its timer when sampling is live.
/// Idempotent per thread (the first lane name wins until unregister).
void RegisterCurrentThread(const char* lane_name);

/// Disarms the calling thread's timer, folds its remaining samples and
/// its CPU-time contribution into the retired accounting, and forgets
/// the registration. Called automatically at thread exit for threads
/// registered via RegisterCurrentThread; explicit scopes call it early.
void UnregisterCurrentThread();

/// RAII registration for threads with a natural scope (driver workers,
/// a profiled main-thread block).
class ScopedThreadRegistration {
 public:
  explicit ScopedThreadRegistration(const char* lane_name) {
    RegisterCurrentThread(lane_name);
  }
  ScopedThreadRegistration(const ScopedThreadRegistration&) = delete;
  ScopedThreadRegistration& operator=(const ScopedThreadRegistration&) =
      delete;
  ~ScopedThreadRegistration() { UnregisterCurrentThread(); }
};

// ---- Attribution context --------------------------------------------------

/// "No active operation" sentinel for the op context (an OpType index
/// otherwise, rendered via obs::OpTypeName).
inline constexpr uint16_t kNoOpContext = 0xffff;

/// Sets the calling thread's active-operation context (an OpType index)
/// for the duration of the scope; samples taken inside count as
/// attributed. No-op on unregistered threads. Nestable (restores the
/// previous context).
class ScopedOpContext {
 public:
  explicit ScopedOpContext(uint16_t op_index);
  ScopedOpContext(const ScopedOpContext&) = delete;
  ScopedOpContext& operator=(const ScopedOpContext&) = delete;
  ~ScopedOpContext();

 private:
  uint16_t previous_ = kNoOpContext;
  bool engaged_ = false;
};

/// Sets the calling thread's innermost operator label ("join1",
/// "sort_limit") for the duration of the scope — the hook TraceSpan
/// uses so plan operators show up as a folded frame. `label` must have
/// static storage duration (the handler copies the pointer, not the
/// bytes). nullptr or an unregistered thread disengages the scope.
class ScopedOperatorLabel {
 public:
  explicit ScopedOperatorLabel(const char* label);
  ScopedOperatorLabel(const ScopedOperatorLabel&) = delete;
  ScopedOperatorLabel& operator=(const ScopedOperatorLabel&) = delete;
  ~ScopedOperatorLabel();

 private:
  const char* previous_ = nullptr;
  bool engaged_ = false;
};

// ---- Collected output -----------------------------------------------------

/// Conserved sample accounting: captured == attributed + unattributed
/// + dropped (cross-checked by the report validator).
struct SampleAccounting {
  uint64_t captured = 0;
  uint64_t attributed = 0;
  uint64_t unattributed = 0;
  uint64_t dropped = 0;
  /// Total measured handler time across all samples.
  uint64_t self_overhead_ns = 0;
  /// CPU time accumulated by registered threads while registered (the
  /// denominator of the self-overhead gate).
  uint64_t task_clock_ns = 0;
  /// Threads ever registered in this profiling session.
  uint32_t threads = 0;
};

/// One folded stack: identical (lane, op, label, frames) samples merge.
struct FoldedStack {
  std::string lane;      // Thread lane ("driver.0").
  std::string op;        // OpTypeName or "" when unattributed.
  std::string op_label;  // Innermost TraceSpan label or "".
  /// Symbolized frames, root first ("snb::exec::..." or "0x...").
  std::vector<std::string> frames;
  uint64_t count = 0;
};

/// A cumulative snapshot of everything sampled since Enable().
struct FoldedProfile {
  Backend backend = Backend::kDisabled;
  std::string message;
  uint32_t interval_us = 0;
  SampleAccounting accounting;
  /// Sorted by rendered key, so equal profiles render byte-identically.
  std::vector<FoldedStack> stacks;
};

/// Drains every ring and returns the cumulative profile. Cheap when
/// sampling is not live (empty profile carrying the backend + message).
FoldedProfile Collect();

/// The samples `later` gained over `earlier` (both from Collect()):
/// per-stack count difference and accounting deltas, saturating at 0.
/// The on-demand /profile?seconds=N window.
FoldedProfile DeltaSince(const FoldedProfile& earlier,
                         const FoldedProfile& later);

/// Renders the canonical collapsed-stack text, one line per stack:
/// "thread:<lane>;op:<op>;opr:<label>;frameRoot;...;frameLeaf <count>"
/// (the op/opr segments are omitted for unattributed samples). The
/// format scripts/profile_view.py and external flamegraph tools eat.
std::string ToFoldedText(const FoldedProfile& profile);

}  // namespace snb::obs::prof

#endif  // SNB_OBS_PROF_H_
