// Edge-case and differential tests for the sorted-set kernels (src/exec):
// every kernel (scalar merge, galloping, SIMD, the adaptive entry point)
// against std::set_intersection on empty / disjoint / one-element /
// identical lists, lengths straddling the SIMD 4-lane block boundary, and
// randomized sweeps across length ratios. DifferenceSorted and
// IntersectCount get the same treatment against their std:: references.
#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "exec/intersect.h"
#include "util/rng.h"

namespace snb::exec {
namespace {

using Kernel = size_t (*)(const uint64_t*, size_t, const uint64_t*, size_t,
                          uint64_t*);

struct NamedKernel {
  const char* name;
  Kernel kernel;
};

const NamedKernel kKernels[] = {
    {"scalar", IntersectScalar},
    {"gallop", IntersectGalloping},
    {"simd", IntersectSimd},
    {"adaptive", Intersect},
};

std::vector<uint64_t> RefIntersect(const std::vector<uint64_t>& a,
                                   const std::vector<uint64_t>& b) {
  std::vector<uint64_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

/// Runs every kernel on (a, b) AND (b, a) and checks the output (and
/// IntersectCount) against std::set_intersection.
void CheckAllKernels(const std::vector<uint64_t>& a,
                     const std::vector<uint64_t>& b) {
  std::vector<uint64_t> expect = RefIntersect(a, b);
  for (const NamedKernel& k : kKernels) {
    for (bool swapped : {false, true}) {
      const std::vector<uint64_t>& x = swapped ? b : a;
      const std::vector<uint64_t>& y = swapped ? a : b;
      std::vector<uint64_t> out(std::min(x.size(), y.size()) + 1, ~0ULL);
      size_t n = k.kernel(x.data(), x.size(), y.data(), y.size(), out.data());
      ASSERT_EQ(n, expect.size())
          << k.name << (swapped ? " (swapped)" : "") << " |a|=" << x.size()
          << " |b|=" << y.size();
      EXPECT_TRUE(std::equal(expect.begin(), expect.end(), out.begin()))
          << k.name << (swapped ? " (swapped)" : "");
      // The contract gives the kernel min(|a|, |b|) output slots; the
      // sentinel one past that must survive untouched.
      EXPECT_EQ(out[std::min(x.size(), y.size())], ~0ULL)
          << k.name << " wrote past min(na, nb)";
      EXPECT_EQ(IntersectCount(x.data(), x.size(), y.data(), y.size()),
                expect.size())
          << "IntersectCount" << (swapped ? " (swapped)" : "");
    }
  }
}

TEST(ExecIntersectTest, EmptyLists) {
  CheckAllKernels({}, {});
  CheckAllKernels({}, {1, 2, 3});
  CheckAllKernels({5}, {});
}

TEST(ExecIntersectTest, OneElementLists) {
  CheckAllKernels({7}, {7});
  CheckAllKernels({7}, {8});
  CheckAllKernels({7}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  CheckAllKernels({10}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
}

TEST(ExecIntersectTest, DisjointLists) {
  CheckAllKernels({1, 3, 5, 7, 9}, {2, 4, 6, 8, 10});
  CheckAllKernels({1, 2, 3, 4}, {100, 200, 300, 400});
  // Interleaved ranges, no common element, lengths off the 4-lane grid.
  CheckAllKernels({1, 4, 7, 10, 13}, {2, 5, 8, 11, 14, 17, 20});
}

TEST(ExecIntersectTest, IdenticalAndSubsetLists) {
  std::vector<uint64_t> base;
  for (uint64_t i = 0; i < 37; ++i) base.push_back(3 * i + 1);
  CheckAllKernels(base, base);
  std::vector<uint64_t> subset = {base[0], base[9], base[17], base[36]};
  CheckAllKernels(subset, base);
}

TEST(ExecIntersectTest, ExtremeValues) {
  // Largest representable ids must not confuse the SIMD signed compare or
  // the galloping bound search.
  std::vector<uint64_t> a = {0, 1, ~0ULL - 1, ~0ULL};
  std::vector<uint64_t> b = {0, 2, ~0ULL};
  CheckAllKernels(a, b);
}

TEST(ExecIntersectTest, SimdBlockBoundaries) {
  // Every length pair around the 4-lane block size (0..9 covers the
  // scalar tail, one full block, and block+tail), shared elements forced
  // at the boundaries.
  util::Rng rng(0x9e37);
  for (size_t na = 0; na <= 9; ++na) {
    for (size_t nb = 0; nb <= 9; ++nb) {
      std::vector<uint64_t> a, b;
      uint64_t v = 1;
      for (size_t i = 0; i < na; ++i) a.push_back(v += 1 + rng.Next() % 3);
      v = 1;
      for (size_t i = 0; i < nb; ++i) b.push_back(v += 1 + rng.Next() % 3);
      CheckAllKernels(a, b);
    }
  }
}

TEST(ExecIntersectTest, RandomizedRatioSweep) {
  util::Rng rng(0x5eed);
  for (size_t ratio : {1, 2, 16, 64, 257}) {
    for (int round = 0; round < 8; ++round) {
      size_t na = 1 + rng.Next() % 64;
      size_t nb = na * ratio + rng.Next() % 5;
      std::vector<uint64_t> a, b;
      uint64_t v = 0;
      for (size_t i = 0; i < na; ++i) a.push_back(v += 1 + rng.Next() % (2 * ratio));
      v = 0;
      for (size_t i = 0; i < nb; ++i) b.push_back(v += 1 + rng.Next() % 3);
      CheckAllKernels(a, b);
    }
  }
}

TEST(ExecIntersectTest, DifferenceSorted) {
  auto check = [](const std::vector<uint64_t>& a,
                  const std::vector<uint64_t>& b) {
    std::vector<uint64_t> expect;
    std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(expect));
    std::vector<uint64_t> out(a.size() + 1, ~0ULL);
    size_t n = DifferenceSorted(a.data(), a.size(), b.data(), b.size(),
                                out.data());
    ASSERT_EQ(n, expect.size());
    EXPECT_TRUE(std::equal(expect.begin(), expect.end(), out.begin()));
  };
  check({}, {});
  check({}, {1, 2});
  check({1, 2, 3}, {});
  check({1, 2, 3}, {1, 2, 3});
  check({1, 3, 5, 7}, {2, 3, 6, 7, 8});
  util::Rng rng(0xd1ff);
  for (int round = 0; round < 16; ++round) {
    std::vector<uint64_t> a, b;
    uint64_t v = 0;
    size_t na = rng.Next() % 40, nb = rng.Next() % 40;
    for (size_t i = 0; i < na; ++i) a.push_back(v += 1 + rng.Next() % 3);
    v = 0;
    for (size_t i = 0; i < nb; ++i) b.push_back(v += 1 + rng.Next() % 3);
    check(a, b);
  }
}

TEST(ExecIntersectTest, OutputsAreStrictlyAscending) {
  // The duplicate-free invariant: strictly ascending inputs must yield
  // strictly ascending (hence duplicate-free) outputs from every kernel.
  util::Rng rng(0xa5ce);
  for (int round = 0; round < 8; ++round) {
    std::vector<uint64_t> a, b;
    uint64_t v = 0;
    for (size_t i = 0; i < 100; ++i) a.push_back(v += 1 + rng.Next() % 2);
    v = 0;
    for (size_t i = 0; i < 100; ++i) b.push_back(v += 1 + rng.Next() % 2);
    for (const NamedKernel& k : kKernels) {
      std::vector<uint64_t> out(100);
      size_t n = k.kernel(a.data(), a.size(), b.data(), b.size(), out.data());
      for (size_t i = 1; i < n; ++i) {
        ASSERT_LT(out[i - 1], out[i]) << k.name;
      }
    }
  }
}

}  // namespace
}  // namespace snb::exec
