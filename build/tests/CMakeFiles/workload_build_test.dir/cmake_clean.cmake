file(REMOVE_RECURSE
  "CMakeFiles/workload_build_test.dir/workload_build_test.cc.o"
  "CMakeFiles/workload_build_test.dir/workload_build_test.cc.o.d"
  "workload_build_test"
  "workload_build_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_build_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
