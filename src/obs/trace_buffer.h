// Full-run event tracing: bounded per-thread rings of operation spans,
// exported as Chrome-trace/Perfetto JSON.
//
// TraceSpan (trace.h) answers "where inside one plan does the time go";
// this buffer answers "what did the whole run look like": every executed
// operation — all complex reads, walk-spawned short reads and updates,
// across every driver thread — is recorded as a begin/end span carrying
// its scheduled vs. actual start time and the portion spent blocked on
// T_GC. The flushed artifact (`trace.json`) loads directly in
// chrome://tracing or ui.perfetto.dev with one lane per driver thread.
//
// Recording is opt-in (a null buffer costs nothing) and bounded: each lane
// is a fixed-capacity ring that overwrites its oldest events, so the
// memory ceiling is independent of run length and a saturated run keeps
// the *end* of the trace — the part that explains a failed sustained-pace
// check. Events are multi-word, so each lane takes a private mutex per
// record; lanes are per-thread, which makes that mutex uncontended in
// the driver (one stream per worker). Tracing is not on the PR 2
// metrics-ablation path — the 5% CPU ceiling is measured with tracing
// off, matching how audited runs use it.
#ifndef SNB_OBS_TRACE_BUFFER_H_
#define SNB_OBS_TRACE_BUFFER_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace snb::obs {

/// One executed operation in the run trace. All timestamps are
/// nanoseconds relative to the owning TraceBuffer's construction time
/// (one steady-clock base for every lane).
struct TraceEvent {
  OpType op = OpType::kPointRead;
  /// Trace lane (driver thread); assigned by Record() from the calling
  /// thread.
  uint16_t lane = 0;
  /// Scheduled start (throttle deadline) or -1 when the operation had no
  /// schedule (unthrottled replay, walk-spawned short read).
  int64_t sched_ns = -1;
  /// When the operation's dependency wait on T_GC began; 0 when it never
  /// blocked.
  uint64_t gct_begin_ns = 0;
  /// Time spent blocked on T_GC (sub-span [gct_begin, gct_begin + wait]).
  uint64_t gct_wait_ns = 0;
  /// Actual execution window (the span compared against sched_ns).
  uint64_t exec_begin_ns = 0;
  uint64_t end_ns = 0;
  /// Hardware-counter delta over the execution window (mask == 0 when the
  /// perf backend was not live). Rendered as Perfetto counter tracks.
  perf::HwCounts hw;
};

/// Bounded multi-lane trace sink. Record() is safe from any thread; each
/// thread maps to a stable lane (process-wide id masked onto the lane
/// pool, mirroring MetricsRegistry's shard assignment) so nested spans
/// recorded by one thread land in one lane in order.
class TraceBuffer {
 public:
  static constexpr size_t kMaxLanes = 64;  // Power of two.
  static constexpr size_t kDefaultEventsPerLane = 1 << 16;

  explicit TraceBuffer(size_t events_per_lane = kDefaultEventsPerLane);
  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  /// Nanoseconds since the buffer's construction on the shared steady
  /// clock — the base every TraceEvent timestamp is relative to.
  uint64_t NowNs() const;

  /// Converts an absolute steady-clock time point onto the buffer base
  /// (negative when before construction).
  int64_t ToBufferNs(std::chrono::steady_clock::time_point tp) const;

  /// Records one event into the calling thread's lane, overwriting that
  /// lane's oldest event when the ring is full.
  void Record(TraceEvent event);

  /// Events recorded over the buffer's lifetime (including overwritten).
  uint64_t recorded() const;
  /// Events lost to ring overwrites.
  uint64_t dropped() const;

  /// Recorded/dropped accounting for one lane, so ring overwrites surface
  /// per thread instead of vanishing into an aggregate.
  struct LaneStats {
    uint16_t lane = 0;
    uint64_t recorded = 0;
    uint64_t retained = 0;
    uint64_t dropped = 0;
  };
  /// Stats for every active lane, in lane order. A lane whose ring
  /// wrapped reports dropped > 0; report.json lists these rows so a
  /// truncated trace is visible, not silent.
  std::vector<LaneStats> PerLaneStats() const;

  /// Stable snapshot of all retained events, sorted by (lane,
  /// exec_begin_ns, -end_ns) — the emission order the exporter wants.
  std::vector<TraceEvent> Events() const;

 private:
  struct Lane {
    util::Mutex mu;
    std::vector<TraceEvent> ring SNB_GUARDED_BY(mu);
    // Overwrite cursor once the ring is full.
    size_t next SNB_GUARDED_BY(mu) = 0;
    // Lifetime count for this lane.
    uint64_t recorded SNB_GUARDED_BY(mu) = 0;
  };

  Lane& LocalLane();

  const size_t events_per_lane_;
  const std::chrono::steady_clock::time_point base_;
  // Lazily constructed under lanes_mu_; the pointer itself is read via
  // double-checked locking (benign under the x86/TSO builds this repo
  // targets), so the array is not SNB_GUARDED_BY.
  std::unique_ptr<Lane> lanes_[kMaxLanes];
  util::Mutex lanes_mu_;  // Guards lazy lane construction only.
};

/// Serializes every retained event as a Chrome-trace JSON document
/// (`{"traceEvents": [...]}`): per lane, strictly nested and matched
/// B/E pairs with non-decreasing timestamps, a `driver.gct_wait` span for
/// every operation that blocked on T_GC, and `sched_ms`/`lag_ms` args on
/// scheduled operations. Loadable in chrome://tracing and Perfetto.
std::string ToChromeTraceJson(const TraceBuffer& buffer);

}  // namespace snb::obs

#endif  // SNB_OBS_TRACE_BUFFER_H_
