#include "relational/relational_db.h"


namespace snb::rel {

using util::Status;

namespace {

/// Binary-search a PK-sorted entity table.
template <typename Row, typename Id>
const Row* FindById(const std::vector<Row>& table, Id id) {
  auto it = std::lower_bound(
      table.begin(), table.end(), id,
      [](const Row& row, Id key) { return row.id < key; });
  if (it == table.end() || it->id != id) return nullptr;
  return &*it;
}

/// Sorted insert keeping the comparator's order.
template <typename Row, typename Less>
void InsertSorted(std::vector<Row>& table, Row row, Less less) {
  auto it = std::lower_bound(table.begin(), table.end(), row, less);
  table.insert(it, std::move(row));
}

template <typename Row, typename KeyLess, typename Key>
std::pair<const Row*, const Row*> EqualRange(const std::vector<Row>& table,
                                             Key key, KeyLess less) {
  auto [lo, hi] = std::equal_range(table.begin(), table.end(), key, less);
  return {table.data() + (lo - table.begin()),
          table.data() + (hi - table.begin())};
}

struct KnowsLess {
  bool operator()(const KnowsRow& a, const KnowsRow& b) const {
    if (a.src != b.src) return a.src < b.src;
    return a.dst < b.dst;
  }
  bool operator()(const KnowsRow& a, PersonId key) const {
    return a.src < key;
  }
  bool operator()(PersonId key, const KnowsRow& b) const {
    return key < b.src;
  }
};

struct CreatorLess {
  bool operator()(const CreatorIndexRow& a, const CreatorIndexRow& b) const {
    if (a.creator != b.creator) return a.creator < b.creator;
    return a.message < b.message;
  }
  bool operator()(const CreatorIndexRow& a, PersonId key) const {
    return a.creator < key;
  }
  bool operator()(PersonId key, const CreatorIndexRow& b) const {
    return key < b.creator;
  }
};

struct ReplyLess {
  bool operator()(const ReplyIndexRow& a, const ReplyIndexRow& b) const {
    if (a.parent != b.parent) return a.parent < b.parent;
    return a.child < b.child;
  }
  bool operator()(const ReplyIndexRow& a, MessageId key) const {
    return a.parent < key;
  }
  bool operator()(MessageId key, const ReplyIndexRow& b) const {
    return key < b.parent;
  }
};

struct MemberByForumLess {
  bool operator()(const MemberRow& a, const MemberRow& b) const {
    if (a.forum != b.forum) return a.forum < b.forum;
    return a.person < b.person;
  }
  bool operator()(const MemberRow& a, ForumId key) const {
    return a.forum < key;
  }
  bool operator()(ForumId key, const MemberRow& b) const {
    return key < b.forum;
  }
};

struct MemberByPersonLess {
  bool operator()(const MemberRow& a, const MemberRow& b) const {
    if (a.person != b.person) return a.person < b.person;
    return a.forum < b.forum;
  }
  bool operator()(const MemberRow& a, PersonId key) const {
    return a.person < key;
  }
  bool operator()(PersonId key, const MemberRow& b) const {
    return key < b.person;
  }
};

struct ForumPostLess {
  bool operator()(const ForumPostRow& a, const ForumPostRow& b) const {
    if (a.forum != b.forum) return a.forum < b.forum;
    return a.post < b.post;
  }
  bool operator()(const ForumPostRow& a, ForumId key) const {
    return a.forum < key;
  }
  bool operator()(ForumId key, const ForumPostRow& b) const {
    return key < b.forum;
  }
};

struct LikeByMessageLess {
  bool operator()(const LikeRow& a, const LikeRow& b) const {
    if (a.message != b.message) return a.message < b.message;
    return a.person < b.person;
  }
  bool operator()(const LikeRow& a, MessageId key) const {
    return a.message < key;
  }
  bool operator()(MessageId key, const LikeRow& b) const {
    return key < b.message;
  }
};

struct LikeByPersonLess {
  bool operator()(const LikeRow& a, const LikeRow& b) const {
    if (a.person != b.person) return a.person < b.person;
    return a.message < b.message;
  }
  bool operator()(const LikeRow& a, PersonId key) const {
    return a.person < key;
  }
  bool operator()(PersonId key, const LikeRow& b) const {
    return key < b.person;
  }
};

template <typename Row>
struct IdLess {
  bool operator()(const Row& a, const Row& b) const { return a.id < b.id; }
};

}  // namespace

Status RelationalDb::BulkLoad(const schema::SocialNetwork& network) {
  util::WriterMutexLock lock(&mu_);
  if (!persons_.empty() || !messages_.empty()) {
    return Status::FailedPrecondition("BulkLoad requires an empty database");
  }
  persons_ = network.persons;
  std::sort(persons_.begin(), persons_.end(), IdLess<schema::Person>());
  forums_ = network.forums;
  std::sort(forums_.begin(), forums_.end(), IdLess<schema::Forum>());
  messages_ = network.messages;
  std::sort(messages_.begin(), messages_.end(), IdLess<schema::Message>());

  knows_.reserve(network.knows.size() * 2);
  for (const schema::Knows& k : network.knows) {
    knows_.push_back({k.person1_id, k.person2_id, k.creation_date});
    knows_.push_back({k.person2_id, k.person1_id, k.creation_date});
  }
  std::sort(knows_.begin(), knows_.end(), KnowsLess());

  message_by_creator_.reserve(messages_.size());
  for (const schema::Message& m : messages_) {
    message_by_creator_.push_back({m.creator_id, m.id});
    if (m.kind == schema::MessageKind::kComment) {
      replies_.push_back({m.reply_to_id, m.id});
    } else {
      posts_by_forum_.push_back({m.forum_id, m.id});
    }
  }
  std::sort(message_by_creator_.begin(), message_by_creator_.end(),
            CreatorLess());
  std::sort(replies_.begin(), replies_.end(), ReplyLess());
  std::sort(posts_by_forum_.begin(), posts_by_forum_.end(),
            ForumPostLess());

  members_by_forum_.reserve(network.memberships.size());
  for (const schema::ForumMembership& fm : network.memberships) {
    members_by_forum_.push_back({fm.forum_id, fm.person_id, fm.join_date});
  }
  members_by_person_ = members_by_forum_;
  std::sort(members_by_forum_.begin(), members_by_forum_.end(),
            MemberByForumLess());
  std::sort(members_by_person_.begin(), members_by_person_.end(),
            MemberByPersonLess());

  likes_by_message_.reserve(network.likes.size());
  for (const schema::Like& l : network.likes) {
    likes_by_message_.push_back({l.message_id, l.person_id, l.creation_date});
  }
  likes_by_person_ = likes_by_message_;
  std::sort(likes_by_message_.begin(), likes_by_message_.end(),
            LikeByMessageLess());
  std::sort(likes_by_person_.begin(), likes_by_person_.end(),
            LikeByPersonLess());
  return Status::Ok();
}

// ---- Updates ---------------------------------------------------------------

Status RelationalDb::AddPerson(const schema::Person& person) {
  util::WriterMutexLock lock(&mu_);
  return AddPersonLocked(person);
}

Status RelationalDb::AddFriendship(const schema::Knows& knows) {
  util::WriterMutexLock lock(&mu_);
  return AddFriendshipLocked(knows);
}

Status RelationalDb::AddForum(const schema::Forum& forum) {
  util::WriterMutexLock lock(&mu_);
  return AddForumLocked(forum);
}

Status RelationalDb::AddForumMembership(
    const schema::ForumMembership& membership) {
  util::WriterMutexLock lock(&mu_);
  return AddForumMembershipLocked(membership);
}

Status RelationalDb::AddMessage(const schema::Message& message) {
  util::WriterMutexLock lock(&mu_);
  return AddMessageLocked(message);
}

Status RelationalDb::AddLike(const schema::Like& like) {
  util::WriterMutexLock lock(&mu_);
  return AddLikeLocked(like);
}

bool RelationalDb::PersonExistsLocked(PersonId id) const {
  return FindById(persons_, id) != nullptr;
}

bool RelationalDb::MessageExistsLocked(MessageId id) const {
  return FindById(messages_, id) != nullptr;
}

Status RelationalDb::AddPersonLocked(const schema::Person& person) {
  if (PersonExistsLocked(person.id)) {
    return Status::AlreadyExists("person");
  }
  InsertSorted(persons_, person, IdLess<schema::Person>());
  return Status::Ok();
}

Status RelationalDb::AddFriendshipLocked(const schema::Knows& knows) {
  if (!PersonExistsLocked(knows.person1_id) ||
      !PersonExistsLocked(knows.person2_id)) {
    return Status::NotFound("friendship endpoint missing");
  }
  InsertSorted(knows_, {knows.person1_id, knows.person2_id, knows.creation_date},
               KnowsLess());
  InsertSorted(knows_, {knows.person2_id, knows.person1_id, knows.creation_date},
               KnowsLess());
  return Status::Ok();
}

Status RelationalDb::AddForumLocked(const schema::Forum& forum) {
  if (!PersonExistsLocked(forum.moderator_id)) {
    return Status::NotFound("forum moderator missing");
  }
  if (FindById(forums_, forum.id) != nullptr) {
    return Status::AlreadyExists("forum");
  }
  InsertSorted(forums_, forum, IdLess<schema::Forum>());
  return Status::Ok();
}

Status RelationalDb::AddForumMembershipLocked(
    const schema::ForumMembership& membership) {
  if (!PersonExistsLocked(membership.person_id) ||
      FindById(forums_, membership.forum_id) == nullptr) {
    return Status::NotFound("membership endpoint missing");
  }
  MemberRow row{membership.forum_id, membership.person_id,
                membership.join_date};
  InsertSorted(members_by_forum_, row, MemberByForumLess());
  InsertSorted(members_by_person_, row, MemberByPersonLess());
  return Status::Ok();
}

Status RelationalDb::AddMessageLocked(const schema::Message& message) {
  if (!PersonExistsLocked(message.creator_id)) {
    return Status::NotFound("message creator missing");
  }
  if (message.kind == schema::MessageKind::kComment) {
    if (!MessageExistsLocked(message.reply_to_id)) {
      return Status::NotFound("comment parent missing");
    }
  } else if (FindById(forums_, message.forum_id) == nullptr) {
    return Status::NotFound("post forum missing");
  }
  if (MessageExistsLocked(message.id)) {
    return Status::AlreadyExists("message");
  }
  InsertSorted(messages_, message, IdLess<schema::Message>());
  InsertSorted(message_by_creator_, {message.creator_id, message.id},
               CreatorLess());
  if (message.kind == schema::MessageKind::kComment) {
    InsertSorted(replies_, {message.reply_to_id, message.id}, ReplyLess());
  } else {
    InsertSorted(posts_by_forum_, {message.forum_id, message.id},
                 ForumPostLess());
  }
  return Status::Ok();
}

Status RelationalDb::AddLikeLocked(const schema::Like& like) {
  if (!PersonExistsLocked(like.person_id) ||
      !MessageExistsLocked(like.message_id)) {
    return Status::NotFound("like endpoint missing");
  }
  InsertSorted(likes_by_message_,
               {like.message_id, like.person_id, like.creation_date},
               LikeByMessageLess());
  InsertSorted(likes_by_person_,
               {like.message_id, like.person_id, like.creation_date},
               LikeByPersonLess());
  return Status::Ok();
}

// ---- Reads -------------------------------------------------------------------

const schema::Person* RelationalDb::FindPerson(PersonId id) const {
  return FindById(persons_, id);
}

const schema::Forum* RelationalDb::FindForum(ForumId id) const {
  return FindById(forums_, id);
}

const schema::Message* RelationalDb::FindMessage(MessageId id) const {
  return FindById(messages_, id);
}

std::pair<const KnowsRow*, const KnowsRow*> RelationalDb::FriendsOf(
    PersonId id) const {
  return EqualRange(knows_, id, KnowsLess());
}

std::pair<const CreatorIndexRow*, const CreatorIndexRow*>
RelationalDb::MessagesBy(PersonId creator) const {
  return EqualRange(message_by_creator_, creator, CreatorLess());
}

std::pair<const ReplyIndexRow*, const ReplyIndexRow*>
RelationalDb::RepliesTo(MessageId parent) const {
  return EqualRange(replies_, parent, ReplyLess());
}

std::pair<const MemberRow*, const MemberRow*> RelationalDb::MembersOf(
    ForumId forum) const {
  return EqualRange(members_by_forum_, forum, MemberByForumLess());
}

std::pair<const MemberRow*, const MemberRow*> RelationalDb::ForumsOf(
    PersonId person) const {
  return EqualRange(members_by_person_, person, MemberByPersonLess());
}

std::pair<const ForumPostRow*, const ForumPostRow*> RelationalDb::PostsIn(
    ForumId forum) const {
  return EqualRange(posts_by_forum_, forum, ForumPostLess());
}

std::pair<const LikeRow*, const LikeRow*> RelationalDb::LikesOf(
    MessageId message) const {
  return EqualRange(likes_by_message_, message, LikeByMessageLess());
}

std::pair<const LikeRow*, const LikeRow*> RelationalDb::LikesBy(
    PersonId person) const {
  return EqualRange(likes_by_person_, person, LikeByPersonLess());
}

bool RelationalDb::AreFriends(PersonId a, PersonId b) const {
  auto [lo, hi] = FriendsOf(a);
  const KnowsRow* it = std::lower_bound(
      lo, hi, b,
      [](const KnowsRow& row, PersonId key) { return row.dst < key; });
  return it != hi && it->dst == b;
}

}  // namespace snb::rel
