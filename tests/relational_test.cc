// Cross-SUT equivalence: every read query must return identical results on
// the graph store and the relational baseline, and the update stream must
// replay identically — the property that makes the Table 6/7/9 comparison
// an apples-to-apples one.
#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "queries/complex_queries.h"
#include "queries/short_queries.h"
#include "queries/update_queries.h"
#include "relational/rel_queries.h"
#include "relational/relational_db.h"
#include "schema/dictionaries.h"
#include "store/graph_store.h"

namespace snb::rel {
namespace {

class RelationalTest : public ::testing::Test {
 protected:
  struct World {
    datagen::Dataset dataset;
    store::GraphStore graph;
    RelationalDb relational;
    std::unique_ptr<schema::Dictionaries> dict;
    std::vector<schema::PlaceId> city_country;
    std::vector<schema::PlaceId> company_country;
    std::vector<schema::PersonId> probes;  // Diverse start persons.
  };

  static World& world() {
    static World* w = [] {
      auto* world = new World();
      datagen::DatagenConfig config;
      config.num_persons = 250;
      world->dataset = datagen::Generate(config);
      EXPECT_TRUE(world->graph.BulkLoad(world->dataset.bulk).ok());
      EXPECT_TRUE(world->relational.BulkLoad(world->dataset.bulk).ok());
      // Replay updates into both.
      for (const datagen::UpdateOperation& op : world->dataset.updates) {
        EXPECT_TRUE(queries::ApplyUpdate(world->graph, op).ok());
        EXPECT_TRUE(ApplyUpdate(world->relational, op).ok());
      }
      world->dict = std::make_unique<schema::Dictionaries>(config.seed);
      for (const schema::City& c : world->dict->cities()) {
        world->city_country.push_back(c.country_id);
      }
      for (const schema::Company& c : world->dict->companies()) {
        world->company_country.push_back(c.country_id);
      }
      // Probe persons across the degree spectrum.
      world->probes = {0, 7, 42, 99, 123, 200, 249};
      return world;
    }();
    return *w;
  }
};

TEST_F(RelationalTest, CountsMatchGraphStore) {
  EXPECT_EQ(world().relational.NumPersons(), world().graph.NumPersons());
  EXPECT_EQ(world().relational.NumKnowsEdges(),
            world().graph.NumKnowsEdges());
  EXPECT_EQ(world().relational.NumMessages(), world().graph.NumMessages());
  EXPECT_EQ(world().relational.NumLikes(), world().graph.NumLikes());
  EXPECT_EQ(world().relational.NumMemberships(),
            world().graph.NumMemberships());
  EXPECT_EQ(world().relational.NumForums(), world().graph.NumForums());
}

TEST_F(RelationalTest, TwoHopCirclesAgree) {
  for (schema::PersonId p : world().probes) {
    EXPECT_EQ(TwoHopCircle(world().relational, p),
              queries::TwoHopCircle(world().graph, p));
  }
}

TEST_F(RelationalTest, Q1Agrees) {
  for (schema::PersonId p : world().probes) {
    auto a = Query1(world().relational, p, "Yang");
    auto b = queries::Query1(world().graph, p, "Yang");
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].person_id, b[i].person_id);
      EXPECT_EQ(a[i].distance, b[i].distance);
    }
  }
}

TEST_F(RelationalTest, Q2Agrees) {
  util::TimestampMs mid = util::kNetworkStartMs + 24 * util::kMillisPerMonth;
  for (schema::PersonId p : world().probes) {
    auto a = Query2(world().relational, p, mid);
    auto b = queries::Query2(world().graph, p, mid);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].message_id, b[i].message_id);
      EXPECT_EQ(a[i].creator_id, b[i].creator_id);
    }
  }
}

TEST_F(RelationalTest, Q3Agrees) {
  util::TimestampMs start = util::kNetworkStartMs;
  for (schema::PersonId p : world().probes) {
    for (schema::PlaceId x : {0u, 1u, 2u}) {
      auto a = Query3(world().relational, p, world().city_country, x, x + 1,
                      start, 900);
      auto b = queries::Query3(world().graph, p, world().city_country, x,
                               x + 1, start, 900);
      ASSERT_EQ(a.size(), b.size());
      for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].person_id, b[i].person_id);
        EXPECT_EQ(a[i].count_x, b[i].count_x);
        EXPECT_EQ(a[i].count_y, b[i].count_y);
      }
    }
  }
}

TEST_F(RelationalTest, Q4Q5Q6Agree) {
  util::TimestampMs mid = util::kNetworkStartMs + 12 * util::kMillisPerMonth;
  for (schema::PersonId p : world().probes) {
    auto a4 = Query4(world().relational, p, mid, 60);
    auto b4 = queries::Query4(world().graph, p, mid, 60);
    ASSERT_EQ(a4.size(), b4.size());
    for (size_t i = 0; i < a4.size(); ++i) {
      EXPECT_EQ(a4[i].tag, b4[i].tag);
      EXPECT_EQ(a4[i].post_count, b4[i].post_count);
    }
    auto a5 = Query5(world().relational, p, mid);
    auto b5 = queries::Query5(world().graph, p, mid);
    ASSERT_EQ(a5.size(), b5.size());
    for (size_t i = 0; i < a5.size(); ++i) {
      EXPECT_EQ(a5[i].forum_id, b5[i].forum_id);
      EXPECT_EQ(a5[i].post_count, b5[i].post_count);
    }
    auto a6 = Query6(world().relational, p, 5);
    auto b6 = queries::Query6(world().graph, p, 5);
    ASSERT_EQ(a6.size(), b6.size());
    for (size_t i = 0; i < a6.size(); ++i) {
      EXPECT_EQ(a6[i].tag, b6[i].tag);
    }
  }
}

TEST_F(RelationalTest, Q7Q8Q9Agree) {
  util::TimestampMs mid = util::kNetworkStartMs + 24 * util::kMillisPerMonth;
  for (schema::PersonId p : world().probes) {
    auto a7 = Query7(world().relational, p);
    auto b7 = queries::Query7(world().graph, p);
    ASSERT_EQ(a7.size(), b7.size());
    for (size_t i = 0; i < a7.size(); ++i) {
      EXPECT_EQ(a7[i].liker_id, b7[i].liker_id);
      EXPECT_EQ(a7[i].message_id, b7[i].message_id);
      EXPECT_EQ(a7[i].is_outside_friendship, b7[i].is_outside_friendship);
    }
    auto a8 = Query8(world().relational, p);
    auto b8 = queries::Query8(world().graph, p);
    ASSERT_EQ(a8.size(), b8.size());
    for (size_t i = 0; i < a8.size(); ++i) {
      EXPECT_EQ(a8[i].comment_id, b8[i].comment_id);
    }
    auto a9 = Query9(world().relational, p, mid);
    auto b9 = queries::Query9(world().graph, p, mid);
    ASSERT_EQ(a9.size(), b9.size());
    for (size_t i = 0; i < a9.size(); ++i) {
      EXPECT_EQ(a9[i].message_id, b9[i].message_id);
    }
  }
}

TEST_F(RelationalTest, Q10Q11Q12Agree) {
  std::vector<bool> tag_class(world().dict->tags().size(), false);
  for (size_t t = 0; t < tag_class.size(); t += 3) tag_class[t] = true;
  for (schema::PersonId p : world().probes) {
    for (int month : {1, 6, 11}) {
      auto a = Query10(world().relational, p, month);
      auto b = queries::Query10(world().graph, p, month);
      ASSERT_EQ(a.size(), b.size());
      for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].person_id, b[i].person_id);
        EXPECT_EQ(a[i].similarity, b[i].similarity);
      }
    }
    auto a11 = Query11(world().relational, p, world().company_country, 3,
                       2013);
    auto b11 = queries::Query11(world().graph, p, world().company_country,
                                3, 2013);
    ASSERT_EQ(a11.size(), b11.size());
    auto a12 = Query12(world().relational, p, tag_class);
    auto b12 = queries::Query12(world().graph, p, tag_class);
    ASSERT_EQ(a12.size(), b12.size());
    for (size_t i = 0; i < a12.size(); ++i) {
      EXPECT_EQ(a12[i].person_id, b12[i].person_id);
      EXPECT_EQ(a12[i].reply_count, b12[i].reply_count);
    }
  }
}

TEST_F(RelationalTest, Q13Q14Agree) {
  for (schema::PersonId p : world().probes) {
    for (schema::PersonId q : world().probes) {
      EXPECT_EQ(Query13(world().relational, p, q),
                queries::Query13(world().graph, p, q));
    }
    schema::PersonId target = (p + 31) % 250;
    auto a = Query14(world().relational, p, target);
    auto b = queries::Query14(world().graph, p, target);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].path, b[i].path);
      EXPECT_DOUBLE_EQ(a[i].weight, b[i].weight);
    }
  }
}

TEST_F(RelationalTest, ShortReadsAgree) {
  for (schema::PersonId p : world().probes) {
    auto a1 = ShortQuery1PersonProfile(world().relational, p);
    auto b1 = queries::ShortQuery1PersonProfile(world().graph, p);
    EXPECT_EQ(a1.found, b1.found);
    EXPECT_EQ(a1.first_name, b1.first_name);

    auto a2 = ShortQuery2RecentMessages(world().relational, p);
    auto b2 = queries::ShortQuery2RecentMessages(world().graph, p);
    ASSERT_EQ(a2.size(), b2.size());
    for (size_t i = 0; i < a2.size(); ++i) {
      EXPECT_EQ(a2[i].message_id, b2[i].message_id);
      EXPECT_EQ(a2[i].root_post_id, b2[i].root_post_id);
    }

    auto a3 = ShortQuery3Friends(world().relational, p);
    auto b3 = queries::ShortQuery3Friends(world().graph, p);
    ASSERT_EQ(a3.size(), b3.size());
  }
  for (schema::MessageId m : {5u, 100u, 999u}) {
    auto a4 = ShortQuery4MessageContent(world().relational, m);
    auto b4 = queries::ShortQuery4MessageContent(world().graph, m);
    EXPECT_EQ(a4.found, b4.found);
    EXPECT_EQ(a4.content, b4.content);
    auto a5 = ShortQuery5MessageCreator(world().relational, m);
    auto b5 = queries::ShortQuery5MessageCreator(world().graph, m);
    EXPECT_EQ(a5.creator_id, b5.creator_id);
    auto a6 = ShortQuery6MessageForum(world().relational, m);
    auto b6 = queries::ShortQuery6MessageForum(world().graph, m);
    EXPECT_EQ(a6.forum_id, b6.forum_id);
    auto a7 = ShortQuery7MessageReplies(world().relational, m);
    auto b7 = queries::ShortQuery7MessageReplies(world().graph, m);
    ASSERT_EQ(a7.size(), b7.size());
    for (size_t i = 0; i < a7.size(); ++i) {
      EXPECT_EQ(a7[i].comment_id, b7[i].comment_id);
      EXPECT_EQ(a7[i].replier_knows_author, b7[i].replier_knows_author);
    }
  }
}

// The fixture above compares the two backends only after the full update
// stream has been replayed. This test makes the staging explicit: the
// backends must agree on the bulk snapshot, after half the updates, and
// after all of them — and the updates genuinely change the store, so the
// post-update comparisons are not vacuously equal to the bulk ones.
TEST_F(RelationalTest, BackendsAgreeAtEveryUpdateStage) {
  datagen::DatagenConfig config;
  config.num_persons = 120;
  datagen::Dataset ds = datagen::Generate(config);
  store::GraphStore graph;
  RelationalDb db;
  ASSERT_TRUE(graph.BulkLoad(ds.bulk).ok());
  ASSERT_TRUE(db.BulkLoad(ds.bulk).ok());
  const std::vector<schema::PersonId> probes = {0, 17, 63, 119};

  auto compare = [&](const char* stage) {
    for (schema::PersonId p : probes) {
      auto a1 = Query1(db, p, "Yang");
      auto b1 = queries::Query1(graph, p, "Yang");
      ASSERT_EQ(a1.size(), b1.size()) << stage << " Q1 person " << p;
      for (size_t i = 0; i < a1.size(); ++i) {
        EXPECT_EQ(a1[i].person_id, b1[i].person_id) << stage;
        EXPECT_EQ(a1[i].distance, b1[i].distance) << stage;
      }
      auto a9 = Query9(db, p, util::NetworkEndMs());
      auto b9 = queries::Query9(graph, p, util::NetworkEndMs());
      ASSERT_EQ(a9.size(), b9.size()) << stage << " Q9 person " << p;
      for (size_t i = 0; i < a9.size(); ++i) {
        EXPECT_EQ(a9[i].message_id, b9[i].message_id) << stage;
        EXPECT_EQ(a9[i].creation_date, b9[i].creation_date) << stage;
      }
      auto as1 = ShortQuery1PersonProfile(db, p);
      auto bs1 = queries::ShortQuery1PersonProfile(graph, p);
      EXPECT_EQ(as1.found, bs1.found) << stage;
      EXPECT_EQ(as1.first_name, bs1.first_name) << stage;
      auto as2 = ShortQuery2RecentMessages(db, p);
      auto bs2 = queries::ShortQuery2RecentMessages(graph, p);
      ASSERT_EQ(as2.size(), bs2.size()) << stage << " S2 person " << p;
      for (size_t i = 0; i < as2.size(); ++i) {
        EXPECT_EQ(as2[i].message_id, bs2[i].message_id) << stage;
        EXPECT_EQ(as2[i].root_post_id, bs2[i].root_post_id) << stage;
      }
      auto as3 = ShortQuery3Friends(db, p);
      auto bs3 = queries::ShortQuery3Friends(graph, p);
      ASSERT_EQ(as3.size(), bs3.size()) << stage << " S3 person " << p;
    }
  };

  compare("bulk");
  const uint64_t bulk_messages = graph.NumMessages();
  const size_t half = ds.updates.size() / 2;
  for (size_t i = 0; i < half; ++i) {
    ASSERT_TRUE(queries::ApplyUpdate(graph, ds.updates[i]).ok());
    ASSERT_TRUE(ApplyUpdate(db, ds.updates[i]).ok());
  }
  compare("half");
  for (size_t i = half; i < ds.updates.size(); ++i) {
    ASSERT_TRUE(queries::ApplyUpdate(graph, ds.updates[i]).ok());
    ASSERT_TRUE(ApplyUpdate(db, ds.updates[i]).ok());
  }
  compare("full");
  ASSERT_FALSE(ds.updates.empty());
  EXPECT_GT(graph.NumMessages(), bulk_messages);
  EXPECT_EQ(db.NumMessages(), graph.NumMessages());
}

TEST_F(RelationalTest, ApplyUpdateRejectsCorruptKinds) {
  RelationalDb db;
  datagen::UpdateOperation op;
  op.payload = schema::Like{};
  op.kind = static_cast<datagen::UpdateKind>(0);
  EXPECT_EQ(ApplyUpdate(db, op).code(), util::StatusCode::kInvalidArgument);
  op.kind = static_cast<datagen::UpdateKind>(99);
  EXPECT_EQ(ApplyUpdate(db, op).code(), util::StatusCode::kInvalidArgument);
  // Valid kind, wrong payload alternative.
  op.kind = datagen::UpdateKind::kAddForum;
  util::Status st = ApplyUpdate(db, op);
  EXPECT_EQ(st.code(), util::StatusCode::kInvalidArgument);
  EXPECT_FALSE(st.message().empty());
  EXPECT_EQ(db.NumForums(), 0u);
  EXPECT_EQ(db.NumLikes(), 0u);
}

TEST_F(RelationalTest, RejectsMissingDependencies) {
  RelationalDb db;
  schema::Knows k{1, 2, 100};
  EXPECT_EQ(db.AddFriendship(k).code(), util::StatusCode::kNotFound);
  schema::Like like{1, 5, 100};
  EXPECT_EQ(db.AddLike(like).code(), util::StatusCode::kNotFound);
  schema::Person p;
  p.id = 1;
  EXPECT_TRUE(db.AddPerson(p).ok());
  EXPECT_EQ(db.AddPerson(p).code(), util::StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace snb::rel
