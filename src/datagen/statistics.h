// Generation-time statistics.
//
// DATAGEN keeps frequency statistics as a by-product of generation; the
// paper's parameter-curation stage (section 4.1, strategy (ii)) consumes
// them instead of running group-by queries, and Table 3 / Figures 2a, 3a,
// 5a are reported from them.
#ifndef SNB_DATAGEN_STATISTICS_H_
#define SNB_DATAGEN_STATISTICS_H_

#include <array>
#include <cstdint>
#include <vector>

#include "schema/entities.h"
#include "util/datetime.h"

namespace snb::datagen {

/// Counts and per-person frequency vectors for a generated network.
struct GenerationStats {
  uint64_t num_persons = 0;
  uint64_t num_knows = 0;
  uint64_t num_forums = 0;
  uint64_t num_memberships = 0;
  uint64_t num_posts = 0;
  uint64_t num_comments = 0;
  uint64_t num_photos = 0;
  uint64_t num_likes = 0;
  /// Estimated uncompressed CSV size of the dataset — the quantity the LDBC
  /// scale factor is defined over ("SF = GB of CSV").
  uint64_t csv_bytes = 0;

  /// Per-person friendship degree.
  std::vector<uint32_t> friend_count;
  /// Per-person distinct 1..2-hop neighbourhood size (Figure 5a).
  std::vector<uint32_t> two_hop_count;
  /// Messages (posts+comments+photos) created per person.
  std::vector<uint32_t> person_message_count;
  /// Total messages created by a person's friends — the |join1|,|join2|
  /// columns of the Query 2 Parameter-Count table (Figure 6b).
  std::vector<uint64_t> friend_message_count;
  /// Posts per simulation month (Figure 2a).
  std::array<uint64_t, util::kSimulationMonths> posts_per_month{};

  uint64_t NumMessages() const {
    return num_posts + num_comments + num_photos;
  }
  /// Graph nodes: persons + forums + messages (dimension entities excluded,
  /// as in Table 3 which scales with persons/time only).
  uint64_t NumNodes() const {
    return num_persons + num_forums + NumMessages();
  }
  /// Graph edges: knows + memberships + likes + message structural edges
  /// (creator, container/reply).
  uint64_t NumEdges() const {
    return num_knows + num_memberships + num_likes + 2 * NumMessages();
  }
};

/// Scans a fully generated network and computes all statistics.
GenerationStats ComputeStatistics(const schema::SocialNetwork& network);

}  // namespace snb::datagen

#endif  // SNB_DATAGEN_STATISTICS_H_
