// Snapshot-isolation history checking: the offline checker's violation
// taxonomy on hand-built histories, a concurrent stress of the real store
// (the TSan payload — labelled `concurrency`), and the deliberately broken
// writer fixture the checker must reject.
#include <gtest/gtest.h>

#include "validate/history.h"

namespace snb::validate {
namespace {

History OneReaderHistory(std::vector<ReadObservation> observations) {
  History h;
  h.readers.push_back(std::move(observations));
  return h;
}

TEST(CheckHistoryTest, EmptyAndBenignHistoriesAreConsistent) {
  EXPECT_TRUE(CheckHistory(History{}).consistent);

  History h;
  h.commits = {{1, kDomainPersonMessages, 1, 1},
               {2, kDomainPersonMessages, 1, 2}};
  // Watermark 1 guarantees one edge; seeing two (an in-flight publish
  // whose commit lands later) is legal under snapshot isolation.
  h.readers.push_back({{1, kDomainPersonMessages, 1, 1, 0, {}},
                       {1, kDomainPersonMessages, 1, 2, 0, {}},
                       {2, kDomainPersonMessages, 1, 2, 0, {}}});
  HistoryCheckOutcome outcome = CheckHistory(h);
  EXPECT_TRUE(outcome.consistent) << outcome.violations[0].detail;
  EXPECT_EQ(outcome.observations_checked, 3u);
}

TEST(CheckHistoryTest, FlagsStaleRead) {
  History h;
  h.commits = {{1, kDomainPersonMessages, 1, 1}};
  // Watermark 1 promises the first message, but the snapshot was empty:
  // the read-your-GCT-dependency violation.
  h.readers = {{{1, kDomainPersonMessages, 1, 0, 0, {}}}};
  HistoryCheckOutcome outcome = CheckHistory(h);
  ASSERT_FALSE(outcome.consistent);
  ASSERT_EQ(outcome.violation_count, 1u);
  EXPECT_EQ(outcome.violations[0].kind, "stale-read");
}

TEST(CheckHistoryTest, FlagsTornUpdate) {
  History h = OneReaderHistory({{0, kDomainForumPosts, 1, 3, 2, {}}});
  h.commits = {{1, kDomainForumPosts, 1, 3}};
  HistoryCheckOutcome outcome = CheckHistory(h);
  ASSERT_FALSE(outcome.consistent);
  EXPECT_EQ(outcome.violations[0].kind, "torn-update");
}

TEST(CheckHistoryTest, FlagsNonMonotonicReader) {
  History h;
  h.commits = {{1, kDomainPersonMessages, 1, 5}};
  h.readers = {{{1, kDomainPersonMessages, 1, 5, 0, {}},
                {1, kDomainPersonMessages, 1, 3, 0, {}}}};
  HistoryCheckOutcome outcome = CheckHistory(h);
  ASSERT_FALSE(outcome.consistent);
  // The shrink is both non-monotonic and below the watermark guarantee.
  bool saw_non_monotonic = false;
  for (const HistoryViolation& v : outcome.violations) {
    if (v.kind == "non-monotonic") saw_non_monotonic = true;
  }
  EXPECT_TRUE(saw_non_monotonic);
}

TEST(CheckHistoryTest, FlagsPhantomWrite) {
  History h;
  h.commits = {{1, kDomainPersonMessages, 1, 2}};
  h.readers = {{{1, kDomainPersonMessages, 1, 7, 0, {}}}};
  HistoryCheckOutcome outcome = CheckHistory(h);
  ASSERT_FALSE(outcome.consistent);
  EXPECT_EQ(outcome.violations[0].kind, "phantom-write");
}

TEST(CheckHistoryTest, ViolationDetailsAreCappedButCounted) {
  History h;
  h.commits = {{1, kDomainPersonMessages, 1, 1}};
  std::vector<ReadObservation> reads(100, {1, kDomainPersonMessages, 1, 0, 0, {}});
  h.readers = {reads};
  HistoryCheckOutcome outcome = CheckHistory(h);
  EXPECT_EQ(outcome.violation_count, 100u);
  EXPECT_LE(outcome.violations.size(), 16u);
}

// The real store under concurrent load: single writer posting messages,
// several pinned readers. Run under TSan via the check.sh sanitizer legs
// (ctest -L concurrency); the recorded history must check clean.
TEST(StoreHistoryTest, ConcurrentStressIsSnapshotConsistent) {
  HistoryConfig config;
  config.num_readers = 4;
  config.reads_per_reader = 150;
  config.num_commits = 300;
  History history;
  util::Status st = RecordStoreHistory(config, &history);
  ASSERT_TRUE(st.ok()) << st.message();
  // Two observations (person messages + forum posts) per read.
  uint64_t expected_observations = 2ULL *
                                   static_cast<uint64_t>(config.num_readers) *
                                   static_cast<uint64_t>(config.reads_per_reader);
  HistoryCheckOutcome outcome = CheckHistory(history);
  EXPECT_EQ(outcome.observations_checked, expected_observations);
  EXPECT_TRUE(outcome.consistent)
      << outcome.violation_count << " violations; first: "
      << outcome.violations[0].kind << " — " << outcome.violations[0].detail;
  // The writer committed everything it was asked to.
  ASSERT_FALSE(history.commits.empty());
  EXPECT_EQ(history.commits.back().edges_after,
            static_cast<uint64_t>(config.num_commits));
}

// The deliberately broken writer (commit point announced before the
// publish) must be rejected — deterministically, since the fixture is a
// scripted single-threaded interleaving.
TEST(StoreHistoryTest, BrokenWriterIsDetected) {
  HistoryConfig config;
  config.num_commits = 25;
  History history;
  ASSERT_TRUE(RecordBrokenWriterHistory(config, &history).ok());
  HistoryCheckOutcome outcome = CheckHistory(history);
  ASSERT_FALSE(outcome.consistent);
  // Every interleaved read saw the gap on both tracked lists.
  EXPECT_EQ(outcome.violation_count,
            2ULL * static_cast<uint64_t>(config.num_commits));
  EXPECT_EQ(outcome.violations[0].kind, "stale-read");
}

// Vector watermarks: per-shard commit counters are independent, so a
// commit only binds the observation through the committing shard's entry.
TEST(CheckHistoryTest, VectorWatermarksBindPerShard) {
  History h;
  // Shard 0 committed seq 1 (one edge on entity 1); shard 1 committed
  // seq 1 (one edge on entity 2).
  h.commits = {{1, kDomainPersonMessages, 1, 1, 0},
               {1, kDomainPersonMessages, 2, 1, 1}};
  ReadObservation covered;
  covered.domain = kDomainPersonMessages;
  covered.entity = 1;
  covered.edges_seen = 1;
  covered.watermarks = {1, 0};  // Shard 0 covered, shard 1 not.
  ReadObservation uncovered_ok;
  uncovered_ok.domain = kDomainPersonMessages;
  uncovered_ok.entity = 2;
  uncovered_ok.edges_seen = 0;  // Legal: shard 1's watermark is 0.
  uncovered_ok.watermarks = {1, 0};
  History h_ok = OneReaderHistory({covered, uncovered_ok});
  h_ok.commits = h.commits;
  EXPECT_TRUE(CheckHistory(h_ok).consistent);

  ReadObservation stale;
  stale.domain = kDomainPersonMessages;
  stale.entity = 2;
  stale.edges_seen = 0;
  stale.watermarks = {0, 1};  // Shard 1's commit is covered: 0 edges is stale.
  History h2 = OneReaderHistory({stale});
  h2.commits = h.commits;
  HistoryCheckOutcome outcome = CheckHistory(h2);
  ASSERT_FALSE(outcome.consistent);
  EXPECT_EQ(outcome.violations[0].kind, "stale-read");
}

// The multi-writer sharded stress (the shard-matrix TSan payload): one
// writer per shard racing multi-shard snapshot readers; every cross-shard
// edge must resolve and every vector watermark must be honored.
TEST(StoreHistoryTest, ShardedConcurrentStressIsSnapshotConsistent) {
  ShardedHistoryConfig config;
  config.num_shards = 4;
  config.num_readers = 3;
  config.reads_per_reader = 60;
  config.commits_per_shard = 120;
  History history;
  util::Status st = RecordShardedStoreHistory(config, &history);
  ASSERT_TRUE(st.ok()) << st.message();
  // Two observations (creator messages + forum posts) per shard per read.
  uint64_t expected_observations =
      2ULL * config.num_shards *
      static_cast<uint64_t>(config.num_readers) *
      static_cast<uint64_t>(config.reads_per_reader);
  HistoryCheckOutcome outcome = CheckHistory(history);
  EXPECT_EQ(outcome.observations_checked, expected_observations);
  EXPECT_TRUE(outcome.consistent)
      << outcome.violation_count << " violations; first: "
      << outcome.violations[0].kind << " — " << outcome.violations[0].detail;
  // Every shard's writer committed everything it was asked to.
  EXPECT_EQ(history.commits.size(),
            2ULL * config.num_shards *
                static_cast<uint64_t>(config.commits_per_shard));
}

// Single-shard sharded run must agree with the legacy scalar recorder's
// semantics (N=1 is the degenerate case of the vector checker).
TEST(StoreHistoryTest, ShardedStressAtOneShardIsConsistent) {
  ShardedHistoryConfig config;
  config.num_shards = 1;
  config.num_readers = 2;
  config.reads_per_reader = 40;
  config.commits_per_shard = 80;
  History history;
  ASSERT_TRUE(RecordShardedStoreHistory(config, &history).ok());
  EXPECT_TRUE(CheckHistory(history).consistent);
}

// The deliberately broken fixture: observations whose shard views predate
// the commit their watermark vector covers — the signature of pinning
// shards at mismatched epochs. The checker must flag every one.
TEST(StoreHistoryTest, MismatchedPinFixtureIsDetected) {
  ShardedHistoryConfig config;
  config.num_shards = 4;
  config.commits_per_shard = 10;
  History history;
  ASSERT_TRUE(RecordMismatchedPinHistory(config, &history).ok());
  HistoryCheckOutcome outcome = CheckHistory(history);
  ASSERT_FALSE(outcome.consistent);
  EXPECT_EQ(outcome.violation_count,
            static_cast<uint64_t>(config.num_shards) *
                static_cast<uint64_t>(config.commits_per_shard));
  for (const HistoryViolation& v : outcome.violations) {
    EXPECT_EQ(v.kind, "stale-read") << v.detail;
  }
}

TEST(StoreHistoryTest, ShardedRecorderRejectsBadConfig) {
  ShardedHistoryConfig config;
  config.num_shards = 9;
  History history;
  EXPECT_FALSE(RecordShardedStoreHistory(config, &history).ok());
  EXPECT_FALSE(RecordMismatchedPinHistory(config, &history).ok());
}

}  // namespace
}  // namespace snb::validate
