#include "obs/http_exporter.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace snb::obs {
namespace {

/// Sends the whole buffer, tolerating partial writes. MSG_NOSIGNAL keeps
/// a client that hung up from killing the process with SIGPIPE.
void SendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                       MSG_NOSIGNAL);
    if (n <= 0) return;
    off += static_cast<size_t>(n);
  }
}

std::string StatusLine(int code) {
  switch (code) {
    case 200:
      return "HTTP/1.1 200 OK\r\n";
    case 404:
      return "HTTP/1.1 404 Not Found\r\n";
    case 503:
      return "HTTP/1.1 503 Service Unavailable\r\n";
    default:
      return "HTTP/1.1 400 Bad Request\r\n";
  }
}

void SendResponse(int fd, int code, const std::string& content_type,
                  const std::string& body) {
  std::string response = StatusLine(code);
  response += "Content-Type: " + content_type + "\r\n";
  response += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  response += "Connection: close\r\n\r\n";
  response += body;
  SendAll(fd, response);
}

}  // namespace

void HttpExporter::Handle(std::string path, std::string content_type,
                          ContentFn fn) {
  Route route;
  route.path = std::move(path);
  route.content_type = std::move(content_type);
  route.build = std::move(fn);
  routes_.push_back(std::move(route));
}

void HttpExporter::HandleDynamic(std::string path, DynamicFn fn) {
  Route route;
  route.path = std::move(path);
  route.build_dynamic = std::move(fn);
  routes_.push_back(std::move(route));
}

util::Status HttpExporter::Start(uint16_t port) {
  if (running()) {
    return util::Status::InvalidArgument("exporter already started");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return util::Status::Internal("socket() failed: " +
                                  std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::string err = std::strerror(errno);
    ::close(fd);
    return util::Status::Internal("bind(port " + std::to_string(port) +
                                  ") failed: " + err);
  }
  if (::listen(fd, 16) != 0) {
    std::string err = std::strerror(errno);
    ::close(fd);
    return util::Status::Internal("listen() failed: " + err);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    std::string err = std::strerror(errno);
    ::close(fd);
    return util::Status::Internal("getsockname() failed: " + err);
  }
  port_ = ntohs(addr.sin_port);
  listen_fd_.store(fd, std::memory_order_release);
  server_ = std::thread([this] { ServeLoop(); });
  return util::Status::Ok();
}

void HttpExporter::Stop() {
  int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd < 0) return;
  // shutdown() unblocks a blocked accept() without retiring the fd number,
  // so the serve thread can never race against a recycled descriptor; the
  // fd is closed only after the thread joined.
  ::shutdown(fd, SHUT_RDWR);
  if (server_.joinable()) server_.join();
  // A dynamic capture may still be in flight on its worker thread; its
  // handler sees running() == false (the fd was retired above) and is
  // expected to finish promptly.
  if (dynamic_worker_.joinable()) dynamic_worker_.join();
  ::close(fd);
}

void HttpExporter::ServeLoop() {
  for (;;) {
    int fd = listen_fd_.load(std::memory_order_acquire);
    if (fd < 0) return;  // Stop() retired the listener.
    int client = ::accept(fd, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      return;  // Listener shut down by Stop().
    }
    // Bound how long a stalled client can hold the (single) serve thread.
    timeval tv{};
    tv.tv_sec = 2;
    ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    if (!ServeConnection(client)) ::close(client);
  }
}

bool HttpExporter::ServeConnection(int fd) {
  // Read until the end of the request head (or a defensive size cap);
  // only the request line matters.
  std::string request;
  char buf[1024];
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.size() < 16 * 1024) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    request.append(buf, static_cast<size_t>(n));
  }
  size_t line_end = request.find("\r\n");
  if (line_end == std::string::npos) line_end = request.size();
  std::string line = request.substr(0, line_end);
  if (line.rfind("GET ", 0) != 0) {
    SendResponse(fd, 400, "text/plain; charset=utf-8",
                 "only GET is supported\n");
    return false;
  }
  size_t path_end = line.find(' ', 4);
  std::string path = line.substr(4, path_end == std::string::npos
                                        ? std::string::npos
                                        : path_end - 4);
  std::string query_string;
  size_t query = path.find('?');
  if (query != std::string::npos) {
    query_string = path.substr(query + 1);
    path.resize(query);
  }

  // Liveness probe: answers as long as the serve thread runs, without
  // touching any ContentFn (no snapshot merge, no cache) — the probe must
  // stay cheap and must not report "healthy" based on stale cache.
  if (path == "/healthz") {
    SendResponse(fd, 200, "text/plain; charset=utf-8", "ok\n");
    return false;
  }

  for (Route& route : routes_) {
    if (route.path != path) continue;
    if (route.build_dynamic) {
      // Dynamic routes bypass the cache and run on their own worker
      // thread: a handler may block for a whole capture window (e.g.
      // /profile?seconds=N), and the accept loop must keep answering
      // /healthz and the cached routes meanwhile. One at a time — a
      // concurrent dynamic request is refused, not queued behind a
      // window it did not ask for.
      if (dynamic_busy_.exchange(true, std::memory_order_acq_rel)) {
        SendResponse(fd, 503, "application/json",
                     "{\"error\":\"a capture is already in progress\"}\n");
        return false;
      }
      // The previous worker (if any) cleared busy before closing its
      // client, so this join at most waits out that close().
      if (dynamic_worker_.joinable()) dynamic_worker_.join();
      DynamicFn* handler = &route.build_dynamic;  // routes_ is immutable
                                                  // after Start().
      dynamic_worker_ = std::thread([this, handler, fd, query_string] {
        HttpResponse resp = (*handler)(query_string);
        SendResponse(fd, resp.status, resp.content_type, resp.body);
        // Busy clears before close(): a client that read the response to
        // EOF is guaranteed its next dynamic request is not refused.
        dynamic_busy_.store(false, std::memory_order_release);
        ::close(fd);
      });
      return true;
    }
    auto now = std::chrono::steady_clock::now();
    if (!route.cache_valid ||
        now - route.cached_at >=
            std::chrono::milliseconds(refresh_interval_ms_)) {
      route.cached_body = route.build();
      route.cached_at = now;
      route.cache_valid = true;
    }
    SendResponse(fd, 200, route.content_type, route.cached_body);
    return false;
  }
  SendResponse(fd, 404, "text/plain; charset=utf-8",
               "unknown path " + path + "\n");
  return false;
}

}  // namespace snb::obs
