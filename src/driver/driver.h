// The SNB-Interactive workload driver (paper section 4.2).
//
// Executes a due-time-ordered operation stream against a Connector using one
// of three execution modes:
//
//  * kSequentialForum (the SNB default): forum-tree operations (forum,
//    membership, post, comment, like) are partitioned by forum into streams
//    executed sequentially — intra-forum dependencies need no tracking at
//    all. Person-graph operations (add person, add friendship) are the
//    Dependencies set, tracked via the Global Dependency Service; dependent
//    operations wait until T_GC passes their person-graph dependency time.
//
//  * kParallelGct: no forum partitioning shortcut — every update is both a
//    Dependency and a Dependent and all cross-operation ordering goes
//    through T_GC. This is the "excessive synchronization" strawman the
//    paper argues against; the mode exists for the ablation bench.
//
//  * kWindowed: operations are grouped into windows of T_SAFE simulation
//    time and executed window-by-window with a barrier. DATAGEN guarantees
//    every cross-stream dependency spans at least T_SAFE, so anything a
//    window depends on completed before the window started; within a window
//    forum groups run sequentially and everything else runs freely
//    parallel. T_GC needs no fine-grained synchronization at all.
//
// The driver can replay the stream as fast as possible (acceleration == 0)
// or throttle it to a fixed acceleration factor (simulation time / real
// time), reporting whether the pace was sustained — the benchmark's metric.
#ifndef SNB_DRIVER_DRIVER_H_
#define SNB_DRIVER_DRIVER_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "driver/connectors.h"
#include "driver/operation.h"
#include "obs/report.h"
#include "obs/trace_buffer.h"
#include "util/histogram.h"

namespace snb::driver {

/// How the driver schedules dependent operations.
enum class ExecutionMode {
  kSequentialForum,
  kParallelGct,
  kWindowed,
};

const char* ExecutionModeName(ExecutionMode mode);

/// Driver knobs.
struct DriverConfig {
  /// Number of parallel streams (worker threads).
  uint32_t num_partitions = 4;
  ExecutionMode mode = ExecutionMode::kSequentialForum;
  /// Simulation-time / real-time ratio. 0 disables throttling (max
  /// throughput). 1.0 replays in real time; 2.0 twice as fast as the
  /// simulation timeline.
  double acceleration = 0.0;
  /// Max scheduling lag (real ms) before a throttled run counts as not
  /// sustained.
  double sustained_lag_threshold_ms = 1000.0;
  /// Optional metrics sink. When set, the driver records per-operation
  /// scheduling lag (driver.sched_lag) and T_GC dependent-wait time
  /// (driver.gct_wait) as latency series, and accumulates the run's
  /// executed/failed/dependency counters at the end of the run.
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional full-run trace sink. When set, every driver-scheduled
  /// operation is recorded as a span (with its schedule and T_GC wait);
  /// pass the same buffer to the connector to also capture walk-spawned
  /// short reads.
  obs::TraceBuffer* trace = nullptr;
  /// Schedule-compliance audit (throttled runs only): an operation is
  /// on time when it starts within this many real ms of its schedule.
  double compliance_window_ms = 100.0;
  /// Fraction of scheduled operations that must be on time for the run
  /// to pass the compliance audit (the LDBC bar is 0.95).
  double compliance_threshold = 0.95;
  /// When non-zero, forum partitioning keys on the store's shard of the
  /// forum (store/shard_router.h) instead of a generic hash: every forum
  /// living on one shard executes on one stream (kSequentialForum) or in
  /// one window group (kWindowed), so the updates touching a shard funnel
  /// through one thread and the shard's writer mutex stays uncontended.
  /// Zero keeps the shard-oblivious legacy partitioning.
  uint32_t store_shards = 0;
};

/// Outcome of a driver run.
struct DriverReport {
  uint64_t operations_executed = 0;
  uint64_t operations_failed = 0;
  std::string first_error;
  double elapsed_seconds = 0.0;
  double ops_per_second = 0.0;
  /// Largest observed lateness behind the throttled schedule (real ms).
  double max_schedule_lag_ms = 0.0;
  /// Operations registered with the dependency services (IT/CT traffic).
  uint64_t dependencies_tracked = 0;
  /// Operations that had to consult T_GC before executing.
  uint64_t dependent_waits = 0;
  /// True when a throttled run kept max lag under the threshold.
  bool sustained = true;
  /// Scheduling-lag time series for throttled runs: (scheduled second of
  /// the run, max lag ms among operations due within that second). Empty
  /// when unthrottled; bounded — long runs are downsampled to a fixed
  /// number of slots (see LagTimeline), so the resolution coarsens but
  /// memory does not grow with run length.
  std::vector<std::pair<double, double>> lag_timeline_ms;
  /// Schedule-compliance audit; populated only for throttled runs.
  bool has_compliance = false;
  obs::ComplianceSection compliance;
};

/// Packages a report as the report.json "driver" section.
obs::DriverSection MakeDriverSection(const DriverReport& report);

/// Runs `operations` (must be sorted by due_time ascending) through
/// `connector` with the configured mode and parallelism. Blocks until every
/// operation completed.
DriverReport RunWorkload(const std::vector<Operation>& operations,
                         Connector& connector, const DriverConfig& config);

}  // namespace snb::driver

#endif  // SNB_DRIVER_DRIVER_H_
