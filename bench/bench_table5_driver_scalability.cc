// Table 5 reproduction: driver ops/second vs. number of partitions with a
// sleeping dummy connector (1 ms and 100 us per op), updates only.
// Also runs the execution-mode ablation the paper motivates: per-forum
// sequential streams vs. tracking every dependency through T_GC.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "driver/driver.h"
#include "driver/query_mix.h"

namespace snb::bench {
namespace {

double RunOnce(const std::vector<driver::Operation>& ops,
               int64_t sleep_micros, uint32_t partitions,
               driver::ExecutionMode mode) {
  driver::SleepingConnector connector(sleep_micros);
  driver::DriverConfig config;
  config.num_partitions = partitions;
  config.mode = mode;
  driver::DriverReport report =
      driver::RunWorkload(ops, connector, config);
  if (report.operations_failed != 0) {
    std::fprintf(stderr, "failures: %s\n", report.first_error.c_str());
  }
  return report.ops_per_second;
}

void Run() {
  PrintHeader("Table 5 — driver op/second vs #partitions (sleep connector)");

  // Update-only workload, as in the paper ("the chosen workload consists
  // only of the SNB-Interactive updates").
  std::unique_ptr<BenchWorld> world = MakeWorld(kLargeSf, false, true);
  driver::QueryMixConfig mix;
  mix.include_complex_reads = false;
  driver::Workload workload =
      driver::BuildWorkload(world->dataset, *world->dictionaries, mix);
  std::printf("  update stream: %zu operations\n\n",
              workload.operations.size());

  std::vector<uint32_t> partition_counts = {1, 2, 4, 8, 12};
  std::printf("  %-12s", "partitions:");
  for (uint32_t p : partition_counts) std::printf("%9u", p);
  std::printf("\n");
  for (int64_t sleep_us : {1000, 100}) {
    // Cap the replayed prefix so the single-partition run stays ~5 s.
    size_t cap = sleep_us == 1000 ? 5000 : 40000;
    std::vector<driver::Operation> ops(
        workload.operations.begin(),
        workload.operations.begin() +
            std::min(cap, workload.operations.size()));
    std::printf("  %-12s",
                sleep_us == 1000 ? "1ms" : "100us");
    for (uint32_t p : partition_counts) {
      double rate = RunOnce(ops, sleep_us, p,
                            driver::ExecutionMode::kSequentialForum);
      std::printf("%9.0f", rate);
    }
    std::printf("\n");
  }
  std::printf(
      "\n  Paper Table 5 (SF10, 32M ops):\n"
      "    1ms   :   997  1990  3969  7836  11298\n"
      "    100us :  9745 19245 38285 78913 110837\n"
      "  Shape to check: near-linear scaling with partition count at both\n"
      "  sleep durations despite inter-partition dependencies.\n");

  PrintHeader("Ablation — execution mode at 8 partitions, 100us connector");
  std::vector<driver::Operation> ablation_ops(
      workload.operations.begin(),
      workload.operations.begin() +
          std::min<size_t>(40000, workload.operations.size()));
  std::printf("  %-18s %10s %14s %14s\n", "mode", "ops/s",
              "deps tracked", "T_GC waits");
  for (driver::ExecutionMode mode :
       {driver::ExecutionMode::kSequentialForum,
        driver::ExecutionMode::kParallelGct,
        driver::ExecutionMode::kWindowed}) {
    driver::SleepingConnector connector(100);
    driver::DriverConfig config;
    config.num_partitions = 8;
    config.mode = mode;
    driver::DriverReport r =
        driver::RunWorkload(ablation_ops, connector, config);
    std::printf("  %-18s %10.0f %14llu %14llu\n",
                driver::ExecutionModeName(mode), r.ops_per_second,
                (unsigned long long)r.dependencies_tracked,
                (unsigned long long)r.dependent_waits);
  }
  std::printf(
      "  Shape to check: per-forum sequential streams capture intra-forum\n"
      "  dependencies implicitly, so they register orders of magnitude\n"
      "  fewer operations with the dependency services than tracking every\n"
      "  update through T_GC; windowed execution removes per-op T_GC waits\n"
      "  entirely (one barrier per T_SAFE of simulation time).\n\n");
}

}  // namespace
}  // namespace snb::bench

int main() {
  snb::bench::Run();
  return 0;
}
