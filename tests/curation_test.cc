// Tests for parameter curation (section 4.1): the curated selection must
// have far lower Cout variance than a uniform sample (properties P1/P2).
#include <gtest/gtest.h>

#include "curation/parameter_curation.h"
#include "datagen/datagen.h"

namespace snb::curation {
namespace {

PcTable SyntheticTable() {
  // 1000 keys with a bimodal |join1| and noisy |join2| — the multimodal
  // shape of Figure 5a in miniature.
  PcTable table;
  std::vector<uint64_t> col1, col2;
  for (uint64_t k = 0; k < 1000; ++k) {
    table.keys.push_back(k * 10);  // Non-contiguous keys.
    uint64_t base = (k % 2 == 0) ? 10 : 1000;  // Bimodal.
    col1.push_back(base + k % 7);
    col2.push_back(base * 3 + (k * 13) % 29);
  }
  table.columns.push_back(std::move(col1));
  table.columns.push_back(std::move(col2));
  return table;
}

TEST(CurationTest, SelectsRequestedCount) {
  PcTable table = SyntheticTable();
  EXPECT_EQ(CurateParameters(table, 20).size(), 20u);
  EXPECT_EQ(CurateParameters(table, 1).size(), 1u);
  EXPECT_EQ(CurateParameters(table, 5000).size(), table.num_rows());
  EXPECT_TRUE(CurateParameters(table, 0).empty());
  PcTable empty;
  EXPECT_TRUE(CurateParameters(empty, 10).empty());
}

TEST(CurationTest, SelectedKeysExistInTable) {
  PcTable table = SyntheticTable();
  std::vector<uint64_t> selected = CurateParameters(table, 30);
  for (uint64_t key : selected) {
    EXPECT_EQ(key % 10, 0u);
    EXPECT_LT(key, 10000u);
  }
}

TEST(CurationTest, CuratedVarianceFarBelowUniform) {
  PcTable table = SyntheticTable();
  std::vector<uint64_t> curated = CurateParameters(table, 30);
  double curated_var = SelectionCoutVariance(table, curated);

  util::Rng rng(1, 2, util::RandomPurpose::kParameterPick);
  double uniform_var_total = 0;
  constexpr int kSamples = 10;
  for (int s = 0; s < kSamples; ++s) {
    std::vector<uint64_t> uniform = UniformParameters(table, 30, rng);
    uniform_var_total += SelectionCoutVariance(table, uniform);
  }
  double uniform_var = uniform_var_total / kSamples;
  // Bimodal domain: uniform picks straddle the modes, curated picks do not.
  EXPECT_LT(curated_var * 100, uniform_var);
}

TEST(CurationTest, DeterministicSelection) {
  PcTable table = SyntheticTable();
  EXPECT_EQ(CurateParameters(table, 25), CurateParameters(table, 25));
}

TEST(CurationTest, OnRealDatasetStats) {
  datagen::DatagenConfig config;
  config.num_persons = 400;
  config.split_update_stream = false;
  datagen::Dataset ds = datagen::Generate(config);

  PcTable q2 = BuildQuery2Table(ds.stats);
  EXPECT_EQ(q2.num_rows(), 400u);
  EXPECT_EQ(q2.num_columns(), 2u);

  std::vector<uint64_t> curated = CurateParameters(q2, 25);
  ASSERT_EQ(curated.size(), 25u);
  double curated_var = SelectionCoutVariance(q2, curated);

  util::Rng rng(3, 4, util::RandomPurpose::kParameterPick);
  double uniform_var = 0;
  for (int s = 0; s < 10; ++s) {
    uniform_var += SelectionCoutVariance(q2, UniformParameters(q2, 25, rng));
  }
  uniform_var /= 10;
  // The skewed degree distribution makes uniform sampling high-variance;
  // curation must reduce it by at least an order of magnitude.
  EXPECT_LT(curated_var * 10, uniform_var);

  PcTable two_hop = BuildTwoHopTable(ds.stats);
  std::vector<uint64_t> curated2 = CurateParameters(two_hop, 25);
  EXPECT_LT(SelectionCoutVariance(two_hop, curated2) * 10,
            uniform_var);
}

TEST(CurationTest, TimestampBucketsAreMonths) {
  EXPECT_EQ(TimestampBucket(util::kNetworkStartMs), 0);
  EXPECT_EQ(TimestampBucket(util::kNetworkStartMs + util::kMillisPerMonth),
            1);
}

TEST(CurationTest, PairCurationPicksSimilarCounts) {
  // 50 keys x 12 buckets; counts identical inside a band.
  std::vector<uint64_t> keys;
  std::vector<std::vector<uint64_t>> counts;
  for (uint64_t k = 0; k < 50; ++k) {
    keys.push_back(k);
    std::vector<uint64_t> row;
    for (uint64_t b = 0; b < 12; ++b) {
      row.push_back((k * 12 + b) % 3 == 0 ? 100 : 5000 + k * b);
    }
    counts.push_back(std::move(row));
  }
  std::vector<CuratedPair> pairs = CuratePairs(keys, counts, 10);
  ASSERT_EQ(pairs.size(), 10u);
  // All selected pairs share the low-count band.
  for (const CuratedPair& p : pairs) {
    EXPECT_EQ(counts[p.key][p.bucket], 100u);
  }
}

}  // namespace
}  // namespace snb::curation
