file(REMOVE_RECURSE
  "libsnb_algorithms.a"
)
