// Tests for the epoch-based-reclamation primitives behind the store's
// lock-free read path: EpochManager, RcuVector, DenseTable.
//
// Test-local managers are intentionally leaked: thread-exit slot release
// runs after the test body, so a manager must outlive every thread that
// ever entered it (same reason EpochManager::Global() leaks).
#include <atomic>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "store/dense_table.h"
#include "util/epoch.h"
#include "util/rcu_vector.h"

namespace snb::util {
namespace {

// Keeps the leaked managers reachable from a static root so
// LeakSanitizer treats them as intentionally alive.
EpochManager* NewLeakedManager() {
  static std::vector<EpochManager*>* managers =
      new std::vector<EpochManager*>();
  managers->push_back(new EpochManager());
  return managers->back();
}

TEST(EpochManagerTest, RetireFreesAfterTwoAdvances) {
  EpochManager* mgr = NewLeakedManager();
  mgr->Retire(new int(42));
  EXPECT_EQ(mgr->pending(), 1u);
  uint64_t before = mgr->epoch();
  mgr->TryReclaim();  // Advance 1: garbage not yet old enough.
  EXPECT_EQ(mgr->pending(), 1u);
  mgr->TryReclaim();  // Advance 2: retire epoch + 2 reached.
  EXPECT_EQ(mgr->pending(), 0u);
  EXPECT_GE(mgr->epoch(), before + 2);
}

TEST(EpochManagerTest, PinnedReaderBlocksReclamation) {
  EpochManager* mgr = NewLeakedManager();
  std::atomic<bool> pinned{false};
  std::atomic<bool> release{false};
  std::thread reader([&] {
    EpochPin pin = mgr->pin();
    pinned.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  });
  while (!pinned.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  mgr->Retire(new int(1));
  // The reader's pin caps advancement at one epoch past its pin, which is
  // one short of the retire epoch + 2 free rule.
  for (int i = 0; i < 10; ++i) mgr->TryReclaim();
  EXPECT_EQ(mgr->pending(), 1u);
  release.store(true, std::memory_order_release);
  reader.join();
  mgr->DrainForTesting();
  EXPECT_EQ(mgr->pending(), 0u);
}

TEST(EpochManagerTest, NestedPinsKeepOuterPin) {
  EpochManager* mgr = NewLeakedManager();
  EpochPin outer = mgr->pin();
  {
    EpochPin inner = mgr->pin();  // Nested: only a TLS counter bump.
  }
  // Still pinned by the outer pin: garbage must survive.
  mgr->Retire(new int(7));
  for (int i = 0; i < 10; ++i) mgr->TryReclaim();
  EXPECT_EQ(mgr->pending(), 1u);
  {
    EpochPin released = std::move(outer);  // Capability moves with the pin.
    EXPECT_FALSE(outer.engaged());  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(released.engaged());
  }
  mgr->DrainForTesting();
  EXPECT_EQ(mgr->pending(), 0u);
}

TEST(RcuVectorTest, PushBackGrowsAndKeepsValues) {
  EpochManager& epoch = EpochManager::Global();
  RcuVector<uint64_t> v;
  for (uint64_t i = 0; i < 1000; ++i) v.push_back(i * 3, epoch);
  auto view = v.view();
  ASSERT_EQ(view.size(), 1000u);
  for (uint64_t i = 0; i < 1000; ++i) EXPECT_EQ(view[i], i * 3);
  EXPECT_GE(v.capacity_bytes(), 1000 * sizeof(uint64_t));
}

TEST(RcuVectorTest, InsertSortedKeepsOrder) {
  EpochManager& epoch = EpochManager::Global();
  RcuVector<int> v;
  auto less = [](int a, int b) { return a < b; };
  for (int x : {7, 2, 9, 1, 4, 9, 0, 3}) v.insert_sorted(x, less, epoch);
  auto view = v.view();
  ASSERT_EQ(view.size(), 8u);
  for (size_t i = 1; i < view.size(); ++i) {
    EXPECT_LE(view[i - 1], view[i]);
  }
}

TEST(RcuVectorTest, ViewsStayConsistentUnderConcurrentAppend) {
  // Element i holds value i+1: any (data, size) snapshot must satisfy
  // data[i] == i+1 for all i < size, and sizes only grow.
  EpochManager& epoch = EpochManager::Global();
  RcuVector<uint64_t> v;
  constexpr uint64_t kTotal = 20000;
  std::atomic<uint64_t> errors{0};
  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      EpochPin pin = epoch.pin();
      size_t last_size = 0;
      while (!done.load(std::memory_order_acquire)) {
        auto view = v.view();
        if (view.size() < last_size) errors.fetch_add(1);
        last_size = view.size();
        for (size_t i = 0; i < view.size(); ++i) {
          if (view[i] != i + 1) {
            errors.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (uint64_t i = 0; i < kTotal; ++i) v.push_back(i + 1, epoch);
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(errors.load(), 0u);
  EXPECT_EQ(v.size(), kTotal);
  epoch.DrainForTesting();
}

TEST(DenseTableTest, RecordsKeepStableAddressesAcrossGrowth) {
  EpochManager& epoch = EpochManager::Global();
  store::DenseTable<uint64_t> table;
  uint64_t* first = table.GrowToSlot(0, epoch);
  *first = 111;
  // Growing far past the current directory must not move existing slots.
  uint64_t* far = table.GrowToSlot(1u << 20, epoch);
  *far = 222;
  EXPECT_EQ(table.Slot(0), first);
  EXPECT_EQ(*table.Slot(0), 111u);
  EXPECT_EQ(*table.Slot(1u << 20), 222u);
  EXPECT_EQ(table.bound(), (1u << 20) + 1);
  epoch.DrainForTesting();
}

TEST(DenseTableTest, UnallocatedChunksReadAsAbsent) {
  EpochManager& epoch = EpochManager::Global();
  store::DenseTable<uint64_t> table;
  table.GrowToSlot(5, epoch);
  EXPECT_NE(table.Slot(5), nullptr);
  EXPECT_NE(table.Slot(6), nullptr);  // Same chunk: address exists.
  EXPECT_EQ(table.Slot(1u << 16), nullptr);  // Chunk never allocated.
  EXPECT_GT(table.overhead_bytes(), 0u);
}

}  // namespace
}  // namespace snb::util
