// Sorted-set kernels over u64 id arrays: intersection, difference, count.
//
// The hot loops of the heaviest complex reads reduce to ordered-set
// algebra over adjacency lists that the store already keeps sorted and
// duplicate-free (friend lists sort by neighbour id): friend-of-friend
// expansion is difference-then-union, mutual-friend counting is
// intersection. Three interchangeable intersection kernels cover the
// shapes that occur:
//
//   * IntersectScalar — branch-free two-pointer merge. The loop body has
//     no data-dependent branches (comparisons feed index increments), so
//     it pipelines well and the compiler can if-convert it; best when the
//     lists are of comparable length.
//   * IntersectGalloping — exponential search of the longer list for each
//     element of the shorter one; O(na log(nb/na)), the right shape when
//     one list is much longer (a hub person probed against a small
//     circle).
//   * IntersectSimd — 4x4 block compare via AVX2 (all-pairs equality of
//     two 4-lane blocks, advance the block with the smaller maximum).
//     Compiled in a separate -mavx2 translation unit and selected by a
//     runtime CPUID check, so one binary runs everywhere; configure with
//     -DSNB_SIMD=OFF to drop the AVX2 unit entirely (the symbol then
//     falls back to the scalar merge).
//
// Intersect() picks per call: galloping past a 16x length ratio, SIMD when
// available below it, scalar otherwise. All kernels require strictly
// ascending (hence duplicate-free) inputs and produce identical, strictly
// ascending output — the microbench (bench_micro_intersect) cross-checks
// the three against each other and tests/exec_intersect_test.cc against
// std::set_intersection.
#ifndef SNB_EXEC_INTERSECT_H_
#define SNB_EXEC_INTERSECT_H_

#include <cstddef>
#include <cstdint>

namespace snb::exec {

/// True when the AVX2 kernel is compiled in AND the CPU reports AVX2.
bool SimdAvailable();

// Every kernel: `a` (na elements) and `b` (nb elements) strictly
// ascending; `out` must have room for min(na, nb) elements. Returns the
// number of common elements written (ascending).

size_t IntersectScalar(const uint64_t* a, size_t na, const uint64_t* b,
                       size_t nb, uint64_t* out);

size_t IntersectGalloping(const uint64_t* a, size_t na, const uint64_t* b,
                          size_t nb, uint64_t* out);

/// AVX2 block kernel; identical to IntersectScalar when SimdAvailable()
/// is false.
size_t IntersectSimd(const uint64_t* a, size_t na, const uint64_t* b,
                     size_t nb, uint64_t* out);

/// Adaptive entry point: galloping when the length ratio exceeds
/// kGallopRatio, otherwise SIMD when available, otherwise scalar.
size_t Intersect(const uint64_t* a, size_t na, const uint64_t* b, size_t nb,
                 uint64_t* out);

/// |a ∩ b| without materializing (mutual-friend counting).
size_t IntersectCount(const uint64_t* a, size_t na, const uint64_t* b,
                      size_t nb);

/// a \ b into `out` (room for na elements); returns elements written,
/// ascending. The friend-of-friend expansion uses this to drop
/// already-seen neighbours before the dedup sort.
size_t DifferenceSorted(const uint64_t* a, size_t na, const uint64_t* b,
                        size_t nb, uint64_t* out);

/// Length ratio beyond which Intersect() switches to galloping.
inline constexpr size_t kGallopRatio = 16;

}  // namespace snb::exec

#endif  // SNB_EXEC_INTERSECT_H_
