// Tests for the transactional graph store.
#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "queries/update_queries.h"
#include "store/graph_store.h"

namespace snb::store {
namespace {

using schema::Forum;
using schema::ForumMembership;
using schema::Knows;
using schema::Like;
using schema::Message;
using schema::MessageKind;
using schema::Person;
using util::StatusCode;

Person MakePerson(schema::PersonId id) {
  Person p;
  p.id = id;
  p.first_name = "First" + std::to_string(id);
  p.last_name = "Last" + std::to_string(id);
  p.creation_date = 1000 + static_cast<int64_t>(id);
  return p;
}

Forum MakeForum(schema::ForumId id, schema::PersonId moderator) {
  Forum f;
  f.id = id;
  f.title = "Forum" + std::to_string(id);
  f.moderator_id = moderator;
  f.creation_date = 2000;
  return f;
}

Message MakePost(schema::MessageId id, schema::PersonId creator,
                 schema::ForumId forum, util::TimestampMs date = 3000) {
  Message m;
  m.id = id;
  m.kind = MessageKind::kPost;
  m.creator_id = creator;
  m.forum_id = forum;
  m.root_post_id = id;
  m.creation_date = date;
  m.content = "hello world";
  return m;
}

TEST(GraphStoreTest, AddAndFindPerson) {
  GraphStore store;
  ASSERT_TRUE(store.AddPerson(MakePerson(1)).ok());
  auto pin = store.ReadLock();
  const PersonRecord* p = store.FindPerson(pin, 1);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->data.first_name, "First1");
  EXPECT_EQ(store.FindPerson(pin, 2), nullptr);
}

TEST(GraphStoreTest, DuplicatePersonRejected) {
  GraphStore store;
  ASSERT_TRUE(store.AddPerson(MakePerson(1)).ok());
  EXPECT_EQ(store.AddPerson(MakePerson(1)).code(),
            StatusCode::kAlreadyExists);
}

TEST(GraphStoreTest, FriendshipRequiresBothEndpoints) {
  GraphStore store;
  ASSERT_TRUE(store.AddPerson(MakePerson(1)).ok());
  Knows k{1, 2, 5000};
  EXPECT_EQ(store.AddFriendship(k).code(), StatusCode::kNotFound);
  ASSERT_TRUE(store.AddPerson(MakePerson(2)).ok());
  EXPECT_TRUE(store.AddFriendship(k).ok());
  auto pin = store.ReadLock();
  EXPECT_TRUE(store.AreFriends(pin, 1, 2));
  EXPECT_TRUE(store.AreFriends(pin, 2, 1));
  EXPECT_FALSE(store.AreFriends(pin, 1, 3));
  EXPECT_EQ(store.NumKnowsEdges(), 1u);
}

TEST(GraphStoreTest, FriendListsStaySorted) {
  GraphStore store;
  for (schema::PersonId id = 0; id < 10; ++id) {
    ASSERT_TRUE(store.AddPerson(MakePerson(id)).ok());
  }
  // Insert in scrambled order.
  for (schema::PersonId other : {7, 2, 9, 1, 4}) {
    ASSERT_TRUE(store.AddFriendship({0, other, 100}).ok());
  }
  auto pin = store.ReadLock();
  const PersonRecord* p = store.FindPerson(pin, 0);
  ASSERT_NE(p, nullptr);
  for (size_t i = 1; i < p->friends.size(); ++i) {
    EXPECT_LT(p->friends[i - 1].other, p->friends[i].other);
  }
}

TEST(GraphStoreTest, ForumRequiresModerator) {
  GraphStore store;
  EXPECT_EQ(store.AddForum(MakeForum(10, 1)).code(), StatusCode::kNotFound);
  ASSERT_TRUE(store.AddPerson(MakePerson(1)).ok());
  EXPECT_TRUE(store.AddForum(MakeForum(10, 1)).ok());
  EXPECT_EQ(store.AddForum(MakeForum(10, 1)).code(),
            StatusCode::kAlreadyExists);
}

TEST(GraphStoreTest, MembershipLinksBothSides) {
  GraphStore store;
  ASSERT_TRUE(store.AddPerson(MakePerson(1)).ok());
  ASSERT_TRUE(store.AddForum(MakeForum(10, 1)).ok());
  EXPECT_EQ(store.AddForumMembership({11, 1, 2500}).code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(store.AddForumMembership({10, 1, 2500}).ok());
  auto pin = store.ReadLock();
  EXPECT_EQ(store.FindPerson(pin, 1)->forums.size(), 1u);
  EXPECT_EQ(store.FindForum(pin, 10)->members.size(), 1u);
  EXPECT_EQ(store.FindForum(pin, 10)->members[0].date, 2500);
}

TEST(GraphStoreTest, PostRequiresForumCommentRequiresParent) {
  GraphStore store;
  ASSERT_TRUE(store.AddPerson(MakePerson(1)).ok());
  EXPECT_EQ(store.AddMessage(MakePost(0, 1, 10)).code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(store.AddForum(MakeForum(10, 1)).ok());
  ASSERT_TRUE(store.AddMessage(MakePost(0, 1, 10)).ok());

  Message comment;
  comment.id = 1;
  comment.kind = MessageKind::kComment;
  comment.creator_id = 1;
  comment.forum_id = 10;
  comment.reply_to_id = 99;  // Missing parent.
  comment.root_post_id = 0;
  comment.creation_date = 3100;
  EXPECT_EQ(store.AddMessage(comment).code(), StatusCode::kNotFound);
  comment.reply_to_id = 0;
  EXPECT_TRUE(store.AddMessage(comment).ok());

  auto pin = store.ReadLock();
  const MessageRecord* post = store.FindMessage(pin, 0);
  ASSERT_NE(post, nullptr);
  ASSERT_EQ(post->replies.size(), 1u);
  EXPECT_EQ(post->replies[0], 1u);
  EXPECT_EQ(store.FindForum(pin, 10)->posts.size(), 1u);
  EXPECT_EQ(store.FindPerson(pin, 1)->messages.size(), 2u);
}

TEST(GraphStoreTest, LikeRequiresPersonAndMessage) {
  GraphStore store;
  ASSERT_TRUE(store.AddPerson(MakePerson(1)).ok());
  ASSERT_TRUE(store.AddForum(MakeForum(10, 1)).ok());
  ASSERT_TRUE(store.AddMessage(MakePost(0, 1, 10)).ok());
  EXPECT_EQ(store.AddLike({2, 0, 3200}).code(), StatusCode::kNotFound);
  EXPECT_EQ(store.AddLike({1, 5, 3200}).code(), StatusCode::kNotFound);
  ASSERT_TRUE(store.AddLike({1, 0, 3200}).ok());
  auto pin = store.ReadLock();
  EXPECT_EQ(store.FindMessage(pin, 0)->likes.size(), 1u);
  EXPECT_EQ(store.FindPerson(pin, 1)->likes.size(), 1u);
  EXPECT_EQ(store.NumLikes(), 1u);
}

TEST(GraphStoreTest, BulkLoadRequiresEmptyStore) {
  GraphStore store;
  ASSERT_TRUE(store.AddPerson(MakePerson(1)).ok());
  schema::SocialNetwork network;
  EXPECT_EQ(store.BulkLoad(network).code(),
            StatusCode::kFailedPrecondition);
}

TEST(GraphStoreTest, BulkLoadFullDataset) {
  datagen::DatagenConfig config;
  config.num_persons = 120;
  datagen::Dataset ds = datagen::Generate(config);
  GraphStore store;
  ASSERT_TRUE(store.BulkLoad(ds.bulk).ok());
  EXPECT_EQ(store.NumPersons(), ds.bulk.persons.size());
  EXPECT_EQ(store.NumKnowsEdges(), ds.bulk.knows.size());
  EXPECT_EQ(store.NumMessages(), ds.bulk.messages.size());
  EXPECT_EQ(store.NumLikes(), ds.bulk.likes.size());
  EXPECT_EQ(store.NumMemberships(), ds.bulk.memberships.size());
  EXPECT_EQ(store.NumForums(), ds.bulk.forums.size());
}

TEST(GraphStoreTest, UpdateStreamAppliesInOrder) {
  datagen::DatagenConfig config;
  config.num_persons = 120;
  datagen::Dataset ds = datagen::Generate(config);
  GraphStore store;
  ASSERT_TRUE(store.BulkLoad(ds.bulk).ok());
  ASSERT_GT(ds.updates.size(), 0u);
  for (const datagen::UpdateOperation& op : ds.updates) {
    util::Status s = queries::ApplyUpdate(store, op);
    ASSERT_TRUE(s.ok()) << datagen::UpdateKindName(op.kind) << ": "
                        << s.ToString();
  }
  EXPECT_EQ(store.NumPersons(), ds.stats.num_persons);
  EXPECT_EQ(store.NumKnowsEdges(), ds.stats.num_knows);
  EXPECT_EQ(store.NumMessages(), ds.stats.NumMessages());
}

TEST(GraphStoreTest, MessageIdsAreDateOrdered) {
  datagen::DatagenConfig config;
  config.num_persons = 100;
  config.split_update_stream = false;
  datagen::Dataset ds = datagen::Generate(config);
  GraphStore store;
  ASSERT_TRUE(store.BulkLoad(ds.bulk).ok());
  auto pin = store.ReadLock();
  util::TimestampMs last = 0;
  for (schema::MessageId id = 0; id < store.MessageIdBound(); ++id) {
    const MessageRecord* m = store.FindMessage(pin, id);
    if (m == nullptr) continue;
    EXPECT_GE(m->data.creation_date, last);
    last = m->data.creation_date;
  }
}

TEST(GraphStoreTest, StorageBreakdownAccountsMajorStructures) {
  datagen::DatagenConfig config;
  config.num_persons = 100;
  config.split_update_stream = false;
  datagen::Dataset ds = datagen::Generate(config);
  GraphStore store;
  ASSERT_TRUE(store.BulkLoad(ds.bulk).ok());
  StorageBreakdown b = store.ComputeStorageBreakdown();
  EXPECT_GT(b.message_bytes, 0u);
  EXPECT_GT(b.message_content_bytes, 0u);
  EXPECT_GT(b.likes_bytes, 0u);
  EXPECT_GT(b.membership_bytes, 0u);
  EXPECT_GT(b.friends_bytes, 0u);
  EXPECT_GT(b.person_bytes, 0u);
  // The message table (with content) dominates, as in Table 8.
  EXPECT_GT(b.message_bytes, b.friends_bytes);
  EXPECT_EQ(b.Total(), b.message_bytes + b.likes_bytes + b.membership_bytes +
                           b.friends_bytes + b.person_bytes + b.forum_bytes);
}

TEST(GraphStoreTest, ConcurrentReadersDuringWritesGlobalLock) {
  // The whole-store invariant (adjacency totals == counters) needs a frozen
  // snapshot, which only the shared-lock mode provides; the epoch mode's
  // weaker per-object guarantees are covered by the test below and by
  // concurrency_stress_test.
  GraphStore store(ReadConcurrency::kGlobalLock);
  for (schema::PersonId id = 0; id < 50; ++id) {
    ASSERT_TRUE(store.AddPerson(MakePerson(id)).ok());
  }
  ASSERT_TRUE(store.AddForum(MakeForum(1000, 0)).ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> read_errors{0};
  std::thread reader([&] {
    while (!stop.load()) {
      auto pin = store.ReadLock();
      // Under the shared lock, edge counters and adjacency must agree.
      uint64_t sum = 0;
      for (schema::PersonId id = 0; id < 50; ++id) {
        const PersonRecord* p = store.FindPerson(pin, id);
        if (p != nullptr) sum += p->friends.size();
      }
      if (sum != 2 * store.NumKnowsEdges()) read_errors.fetch_add(1);
    }
  });
  for (schema::PersonId id = 1; id < 50; ++id) {
    ASSERT_TRUE(store.AddFriendship({0, id, 100}).ok());
    Message m = MakePost(id, id, 1000, 3000 + static_cast<int64_t>(id));
    ASSERT_TRUE(store.AddMessage(m).ok());
  }
  stop.store(true);
  reader.join();
  EXPECT_EQ(read_errors.load(), 0u);
  EXPECT_EQ(store.NumKnowsEdges(), 49u);
}

TEST(GraphStoreTest, ConcurrentReadersDuringWritesEpoch) {
  // Epoch readers never block and see per-object snapshots: every friend
  // list stays sorted and every id reachable through an adjacency list
  // resolves to a fully built record, even mid-write.
  GraphStore store;
  ASSERT_EQ(store.read_concurrency(), ReadConcurrency::kEpoch);
  for (schema::PersonId id = 0; id < 50; ++id) {
    ASSERT_TRUE(store.AddPerson(MakePerson(id)).ok());
  }
  ASSERT_TRUE(store.AddForum(MakeForum(1000, 0)).ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> read_errors{0};
  std::thread reader([&] {
    while (!stop.load()) {
      auto pin = store.ReadLock();
      for (schema::PersonId id = 0; id < 50; ++id) {
        const PersonRecord* p = store.FindPerson(pin, id);
        if (p == nullptr) continue;
        auto friends = p->friends.view();
        for (size_t i = 0; i < friends.size(); ++i) {
          if (i > 0 && friends[i - 1].other >= friends[i].other) {
            read_errors.fetch_add(1);
          }
          if (store.FindPerson(pin, friends[i].other) == nullptr) {
            read_errors.fetch_add(1);
          }
        }
        for (const DatedEdge& e : p->messages.view()) {
          const MessageRecord* m = store.FindMessage(pin, e.id);
          if (m == nullptr || m->data.creation_date != e.date) {
            read_errors.fetch_add(1);
          }
        }
      }
    }
  });
  for (schema::PersonId id = 1; id < 50; ++id) {
    ASSERT_TRUE(store.AddFriendship({0, id, 100}).ok());
    Message m = MakePost(id, id, 1000, 3000 + static_cast<int64_t>(id));
    ASSERT_TRUE(store.AddMessage(m).ok());
  }
  stop.store(true);
  reader.join();
  EXPECT_EQ(read_errors.load(), 0u);
  EXPECT_EQ(store.NumKnowsEdges(), 49u);
  EXPECT_EQ(store.NumMessages(), 49u);
}

}  // namespace
}  // namespace snb::store
