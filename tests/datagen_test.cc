// End-to-end tests of the DATAGEN pipeline: determinism, correlations,
// time-ordering invariants and the bulk/update split.
#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include <gtest/gtest.h>

#include "datagen/datagen.h"
#include "datagen/degree_model.h"
#include "util/datetime.h"

namespace snb::datagen {
namespace {

using schema::Message;
using schema::MessageKind;
using schema::Person;

class DatagenTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kPersons = 400;

  static const Dataset& dataset() {
    static Dataset* ds = [] {
      DatagenConfig config;
      config.num_persons = kPersons;
      config.num_threads = 4;
      return new Dataset(Generate(config));
    }();
    return *ds;
  }
};

TEST_F(DatagenTest, GeneratesAllEntityKinds) {
  const GenerationStats& stats = dataset().stats;
  EXPECT_EQ(stats.num_persons, kPersons);
  EXPECT_GT(stats.num_knows, 0u);
  EXPECT_GT(stats.num_forums, kPersons);  // At least wall+album each.
  EXPECT_GT(stats.num_memberships, stats.num_forums);
  EXPECT_GT(stats.num_posts, 0u);
  EXPECT_GT(stats.num_comments, 0u);
  EXPECT_GT(stats.num_photos, 0u);
  EXPECT_GT(stats.num_likes, 0u);
  EXPECT_GT(stats.csv_bytes, 0u);
}

TEST_F(DatagenTest, DeterministicAcrossThreadCounts) {
  DatagenConfig config;
  config.num_persons = 150;
  config.num_threads = 1;
  Dataset single = Generate(config);
  config.num_threads = 7;
  Dataset multi = Generate(config);

  ASSERT_EQ(single.bulk.persons.size(), multi.bulk.persons.size());
  for (size_t i = 0; i < single.bulk.persons.size(); ++i) {
    EXPECT_EQ(single.bulk.persons[i].id, multi.bulk.persons[i].id);
    EXPECT_EQ(single.bulk.persons[i].first_name,
              multi.bulk.persons[i].first_name);
    EXPECT_EQ(single.bulk.persons[i].creation_date,
              multi.bulk.persons[i].creation_date);
  }
  ASSERT_EQ(single.bulk.knows.size(), multi.bulk.knows.size());
  for (size_t i = 0; i < single.bulk.knows.size(); ++i) {
    EXPECT_EQ(single.bulk.knows[i].person1_id, multi.bulk.knows[i].person1_id);
    EXPECT_EQ(single.bulk.knows[i].person2_id, multi.bulk.knows[i].person2_id);
  }
  ASSERT_EQ(single.bulk.messages.size(), multi.bulk.messages.size());
  for (size_t i = 0; i < single.bulk.messages.size(); ++i) {
    EXPECT_EQ(single.bulk.messages[i].id, multi.bulk.messages[i].id);
    EXPECT_EQ(single.bulk.messages[i].creator_id,
              multi.bulk.messages[i].creator_id);
    EXPECT_EQ(single.bulk.messages[i].content,
              multi.bulk.messages[i].content);
  }
  EXPECT_EQ(single.updates.size(), multi.updates.size());
}

TEST_F(DatagenTest, FriendshipDegreeNearTarget) {
  const GenerationStats& stats = dataset().stats;
  double avg = 2.0 * static_cast<double>(stats.num_knows) /
               static_cast<double>(stats.num_persons);
  double target = DegreeModel::AverageDegreeFormula(kPersons);
  // The sliding-window process loses some proposals at range boundaries and
  // to dedup; accept a generous band around the formula value.
  EXPECT_GT(avg, target * 0.5);
  EXPECT_LT(avg, target * 1.5);
}

TEST_F(DatagenTest, FriendshipsAreNormalizedAndUnique) {
  std::unordered_set<uint64_t> seen;
  auto all_knows = dataset().bulk.knows;
  for (const UpdateOperation& op : dataset().updates) {
    if (op.kind == UpdateKind::kAddFriendship) {
      all_knows.push_back(std::get<schema::Knows>(op.payload));
    }
  }
  for (const schema::Knows& k : all_knows) {
    EXPECT_LT(k.person1_id, k.person2_id);
    uint64_t key = k.person1_id * 1000000 + k.person2_id;
    EXPECT_TRUE(seen.insert(key).second) << "duplicate edge";
  }
}

TEST_F(DatagenTest, HomophilyFriendsShareCountryMoreThanRandom) {
  // Structure correlation (section 2.3): friends share study location /
  // interests far more often than random pairs would.
  const auto& persons = dataset().bulk.persons;
  std::unordered_map<uint64_t, const Person*> by_id;
  for (const Person& p : persons) by_id[p.id] = &p;
  schema::Dictionaries dict(dataset().config.seed);

  auto country_of = [&](const Person& p) {
    return dict.CountryOfCity(p.city_id);
  };

  uint64_t same = 0, total = 0;
  for (const schema::Knows& k : dataset().bulk.knows) {
    auto it1 = by_id.find(k.person1_id);
    auto it2 = by_id.find(k.person2_id);
    if (it1 == by_id.end() || it2 == by_id.end()) continue;
    ++total;
    if (country_of(*it1->second) == country_of(*it2->second)) ++same;
  }
  ASSERT_GT(total, 0u);
  double friend_same = static_cast<double>(same) / total;

  // Baseline: random pairs.
  uint64_t base_same = 0, base_total = 0;
  for (size_t i = 0; i + 1 < persons.size(); i += 2) {
    ++base_total;
    if (country_of(persons[i]) == country_of(persons[i + 1])) ++base_same;
  }
  double random_same = static_cast<double>(base_same) / base_total;
  EXPECT_GT(friend_same, random_same * 1.5);
}

TEST_F(DatagenTest, TimeCorrelationsHold) {
  // Table 1 bottom rows: logical event order.
  const auto& bulk = dataset().bulk;
  std::unordered_map<uint64_t, util::TimestampMs> person_created;
  for (const Person& p : bulk.persons) {
    EXPECT_LT(p.birthday, p.creation_date);
    person_created[p.id] = p.creation_date;
  }
  std::unordered_map<uint64_t, util::TimestampMs> forum_created;
  for (const schema::Forum& f : bulk.forums) {
    auto it = person_created.find(f.moderator_id);
    ASSERT_NE(it, person_created.end());
    EXPECT_GT(f.creation_date, it->second);
    forum_created[f.id] = f.creation_date;
  }
  for (const schema::ForumMembership& fm : bulk.memberships) {
    EXPECT_GE(fm.join_date, forum_created[fm.forum_id]);
    EXPECT_GT(fm.join_date, person_created[fm.person_id]);
  }
  std::unordered_map<uint64_t, const Message*> messages;
  for (const Message& m : bulk.messages) messages[m.id] = &m;
  for (const Message& m : bulk.messages) {
    EXPECT_GT(m.creation_date, person_created[m.creator_id]);
    if (m.kind == MessageKind::kComment) {
      auto parent = messages.find(m.reply_to_id);
      ASSERT_NE(parent, messages.end());
      EXPECT_GT(m.creation_date, parent->second->creation_date);
    }
  }
  for (const schema::Like& l : bulk.likes) {
    auto target = messages.find(l.message_id);
    ASSERT_NE(target, messages.end());
    EXPECT_GT(l.creation_date, target->second->creation_date);
  }
}

TEST_F(DatagenTest, MessageIdsIncreaseWithTime) {
  // Section 3 (RDF URI locality): ids are assigned in creation-time order.
  util::TimestampMs last = 0;
  schema::MessageId last_id = 0;
  bool first = true;
  for (const Message& m : dataset().bulk.messages) {
    if (!first) {
      EXPECT_GT(m.id, last_id);
      EXPECT_GE(m.creation_date, last);
    }
    last = m.creation_date;
    last_id = m.id;
    first = false;
  }
}

TEST_F(DatagenTest, SplitRespectsTimestamp) {
  util::TimestampMs split = util::UpdateStreamStartMs();
  for (const Person& p : dataset().bulk.persons) {
    EXPECT_LT(p.creation_date, split);
  }
  for (const Message& m : dataset().bulk.messages) {
    EXPECT_LT(m.creation_date, split);
  }
  util::TimestampMs last_due = 0;
  for (const UpdateOperation& op : dataset().updates) {
    EXPECT_GE(op.due_time, split);
    EXPECT_GE(op.due_time, last_due) << "updates must be time-ordered";
    last_due = op.due_time;
  }
  EXPECT_GT(dataset().updates.size(), 0u);
}

TEST_F(DatagenTest, UpdateDependenciesPrecedeDueTimes) {
  // T_SAFE: every dependent operation is due at least kTSafeMs after its
  // dependency completed — except comment/like chains, which the driver
  // runs in per-forum sequential mode.
  for (const UpdateOperation& op : dataset().updates) {
    EXPECT_LT(op.dependency_time, op.due_time);
    switch (op.kind) {
      case UpdateKind::kAddPerson:
        EXPECT_EQ(op.dependency_time, 0);
        break;
      case UpdateKind::kAddFriendship:
      case UpdateKind::kAddForum:
      case UpdateKind::kAddForumMembership:
        EXPECT_GE(op.due_time - op.dependency_time, kTSafeMs);
        break;
      default:
        break;
    }
  }
}

TEST_F(DatagenTest, UpdateStreamContainsAllKinds) {
  std::map<UpdateKind, int> counts;
  for (const UpdateOperation& op : dataset().updates) ++counts[op.kind];
  EXPECT_GT(counts[UpdateKind::kAddPost], 0);
  EXPECT_GT(counts[UpdateKind::kAddComment], 0);
  EXPECT_GT(counts[UpdateKind::kAddFriendship], 0);
  EXPECT_GT(counts[UpdateKind::kAddForumMembership], 0);
  EXPECT_GT(counts[UpdateKind::kAddLikePost] +
                counts[UpdateKind::kAddLikeComment],
            0);
}

TEST_F(DatagenTest, EventDrivenPostsSpike) {
  // Figure 2a: with event-driven generation the monthly post volume has
  // spikes; with uniform generation it is flat. Compare dispersion.
  DatagenConfig config;
  config.num_persons = 300;
  config.event_driven_posts = true;
  config.split_update_stream = false;
  Dataset spiky = Generate(config);
  config.event_driven_posts = false;
  Dataset flat = Generate(config);

  // Compare on the mature part of the timeline (months 18..35), where the
  // network ramp-up no longer dominates the monthly series.
  auto dispersion = [](const GenerationStats& stats) {
    constexpr int kFrom = 18;
    double mean = 0;
    int n = 0;
    for (int m = kFrom; m < util::kSimulationMonths; ++m) {
      mean += stats.posts_per_month[m];
      ++n;
    }
    mean /= n;
    double var = 0;
    for (int m = kFrom; m < util::kSimulationMonths; ++m) {
      double d = static_cast<double>(stats.posts_per_month[m]) - mean;
      var += d * d;
    }
    var /= n;
    return var / mean;  // Index of dispersion.
  };
  EXPECT_GT(dispersion(spiky.stats), 2.0 * dispersion(flat.stats));
}

TEST_F(DatagenTest, PostTopicsFollowCreatorInterests) {
  // Table 1: person.interests -> person.forum.post.topic. Event-driven posts
  // may use any trending tag, so require a strong majority, not totality.
  const auto& bulk = dataset().bulk;
  std::unordered_map<uint64_t, const Person*> by_id;
  for (const Person& p : bulk.persons) by_id[p.id] = &p;
  uint64_t match = 0, total = 0;
  for (const Message& m : bulk.messages) {
    if (m.kind != MessageKind::kPost || m.tags.empty()) continue;
    auto it = by_id.find(m.creator_id);
    if (it == by_id.end()) continue;
    ++total;
    const Person& p = *it->second;
    if (std::find(p.interests.begin(), p.interests.end(), m.tags[0]) !=
        p.interests.end()) {
      ++match;
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(match) / total, 0.6);
}

TEST_F(DatagenTest, TwoHopDistributionIsMultimodalWide) {
  // Figure 5a: the 2-hop neighbourhood size varies a lot across persons.
  const GenerationStats& stats = dataset().stats;
  uint32_t min = ~0u, max = 0;
  for (uint32_t c : stats.two_hop_count) {
    min = std::min(min, c);
    max = std::max(max, c);
  }
  EXPECT_GT(max, 4 * std::max(min, 1u));
}

TEST_F(DatagenTest, StatsCountsMatchData) {
  const Dataset& ds = dataset();
  uint64_t messages = ds.bulk.messages.size();
  for (const UpdateOperation& op : ds.updates) {
    if (op.kind == UpdateKind::kAddPost || op.kind == UpdateKind::kAddComment) {
      ++messages;
    }
  }
  EXPECT_EQ(ds.stats.NumMessages(), messages);
  uint64_t knows = ds.bulk.knows.size();
  for (const UpdateOperation& op : ds.updates) {
    if (op.kind == UpdateKind::kAddFriendship) ++knows;
  }
  EXPECT_EQ(ds.stats.num_knows, knows);
}

TEST_F(DatagenTest, ScaleFactorHelper) {
  EXPECT_EQ(PersonsForScaleFactor(30), 180000u);   // Table 3 anchor.
  EXPECT_EQ(PersonsForScaleFactor(1), 6000u);
  EXPECT_EQ(PersonsForScaleFactor(0.0001), 50u);   // Floor.
}

}  // namespace
}  // namespace snb::datagen
