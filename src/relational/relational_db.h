// A relational-style baseline SUT.
//
// The paper evaluates two systems: a native graph store (Sparksee) and a
// relational/columnar engine (Virtuoso) running the same workload. Our
// second system keeps every relation as sorted row vectors — the in-memory
// stand-in for clustered B-tree primary keys plus secondary foreign-key
// indexes ("indices are created on foreign key columns where needed,
// otherwise all is in primary key order"). Every access is a binary search
// (O(log n)) instead of the graph store's O(1) hash + adjacency pointer, so
// the two systems execute identical logical plans with different physical
// costs — the Table 6/7/9 comparison axis.
//
// Concurrency model matches the graph store: single writer, shared-lock
// read snapshots; sorted-vector inserts make writes O(n) worst-case (the
// price a clustered layout pays for point inserts).
#ifndef SNB_RELATIONAL_RELATIONAL_DB_H_
#define SNB_RELATIONAL_RELATIONAL_DB_H_

#include <algorithm>
#include <shared_mutex>
#include <vector>

#include "schema/entities.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace snb::rel {

using schema::ForumId;
using schema::MessageId;
using schema::PersonId;
using util::TimestampMs;

/// One direction of a friendship edge; table stores both directions.
struct KnowsRow {
  PersonId src = schema::kInvalidId;
  PersonId dst = schema::kInvalidId;
  TimestampMs date = 0;
};

/// Secondary index row: messages by creator.
struct CreatorIndexRow {
  PersonId creator = schema::kInvalidId;
  MessageId message = schema::kInvalidId;
};

/// Secondary index row: comments by the message they reply to.
struct ReplyIndexRow {
  MessageId parent = schema::kInvalidId;
  MessageId child = schema::kInvalidId;
};

/// Forum membership; stored sorted by forum and sorted by person.
struct MemberRow {
  ForumId forum = schema::kInvalidId;
  PersonId person = schema::kInvalidId;
  TimestampMs date = 0;
};

/// Root posts by containing forum.
struct ForumPostRow {
  ForumId forum = schema::kInvalidId;
  MessageId post = schema::kInvalidId;
};

/// Like edge; stored sorted by message and sorted by person.
struct LikeRow {
  MessageId message = schema::kInvalidId;
  PersonId person = schema::kInvalidId;
  TimestampMs date = 0;
};

/// The database: base tables in primary-key order + FK indexes.
class RelationalDb {
 public:
  RelationalDb() = default;
  RelationalDb(const RelationalDb&) = delete;
  RelationalDb& operator=(const RelationalDb&) = delete;

  /// Loads a full bulk dataset into an empty database.
  util::Status BulkLoad(const schema::SocialNetwork& network);

  // Transactional inserts (exclusive lock per call).
  util::Status AddPerson(const schema::Person& person);
  util::Status AddFriendship(const schema::Knows& knows);
  util::Status AddForum(const schema::Forum& forum);
  util::Status AddForumMembership(const schema::ForumMembership& membership);
  util::Status AddMessage(const schema::Message& message);
  util::Status AddLike(const schema::Like& like);

  /// Shared lock for snapshot-consistent multi-statement reads. Returned
  /// by value, so it rides the wrapped std::shared_mutex (movable guards
  /// are invisible to the thread-safety analysis; the tables below are
  /// therefore not SNB_GUARDED_BY — writer-side discipline is enforced
  /// through SNB_REQUIRES on the *Locked helpers instead).
  std::shared_lock<std::shared_mutex> ReadLock() const {
    return std::shared_lock<std::shared_mutex>(mu_.native());
  }

  // ---- Index lookups (caller holds a read lock) -----------------------

  /// Person row by primary key; nullptr when absent.
  const schema::Person* FindPerson(PersonId id) const;
  const schema::Forum* FindForum(ForumId id) const;
  const schema::Message* FindMessage(MessageId id) const;

  /// Equal-range over the knows index: all (src=id, dst, date) rows.
  std::pair<const KnowsRow*, const KnowsRow*> FriendsOf(PersonId id) const;
  /// Equal-range over the creator index, ascending message id (== date).
  std::pair<const CreatorIndexRow*, const CreatorIndexRow*> MessagesBy(
      PersonId creator) const;
  std::pair<const ReplyIndexRow*, const ReplyIndexRow*> RepliesTo(
      MessageId parent) const;
  std::pair<const MemberRow*, const MemberRow*> MembersOf(
      ForumId forum) const;
  std::pair<const MemberRow*, const MemberRow*> ForumsOf(
      PersonId person) const;
  std::pair<const ForumPostRow*, const ForumPostRow*> PostsIn(
      ForumId forum) const;
  std::pair<const LikeRow*, const LikeRow*> LikesOf(MessageId message) const;
  std::pair<const LikeRow*, const LikeRow*> LikesBy(PersonId person) const;

  bool AreFriends(PersonId a, PersonId b) const;

  uint64_t NumPersons() const { return persons_.size(); }
  uint64_t NumMessages() const { return messages_.size(); }
  uint64_t NumKnowsEdges() const { return knows_.size() / 2; }
  uint64_t NumLikes() const { return likes_by_message_.size(); }
  uint64_t NumMemberships() const { return members_by_forum_.size(); }
  uint64_t NumForums() const { return forums_.size(); }

 private:
  util::Status AddPersonLocked(const schema::Person& person)
      SNB_REQUIRES(mu_);
  util::Status AddFriendshipLocked(const schema::Knows& knows)
      SNB_REQUIRES(mu_);
  util::Status AddForumLocked(const schema::Forum& forum) SNB_REQUIRES(mu_);
  util::Status AddForumMembershipLocked(
      const schema::ForumMembership& membership) SNB_REQUIRES(mu_);
  util::Status AddMessageLocked(const schema::Message& message)
      SNB_REQUIRES(mu_);
  util::Status AddLikeLocked(const schema::Like& like) SNB_REQUIRES(mu_);

  bool PersonExistsLocked(PersonId id) const SNB_REQUIRES(mu_);
  bool MessageExistsLocked(MessageId id) const SNB_REQUIRES(mu_);

  mutable util::SharedMutex mu_;
  // Base tables, primary-key sorted.
  std::vector<schema::Person> persons_;    // By id.
  std::vector<schema::Forum> forums_;      // By id.
  std::vector<schema::Message> messages_;  // By id (== creation order).
  // Edge tables / FK indexes.
  std::vector<KnowsRow> knows_;                    // By (src, dst).
  std::vector<CreatorIndexRow> message_by_creator_;  // By (creator, msg).
  std::vector<ReplyIndexRow> replies_;             // By (parent, child).
  std::vector<MemberRow> members_by_forum_;        // By (forum, person).
  std::vector<MemberRow> members_by_person_;       // By (person, forum).
  std::vector<ForumPostRow> posts_by_forum_;       // By (forum, post).
  std::vector<LikeRow> likes_by_message_;          // By (message, person).
  std::vector<LikeRow> likes_by_person_;           // By (person, message).
};

}  // namespace snb::rel

#endif  // SNB_RELATIONAL_RELATIONAL_DB_H_
