file(REMOVE_RECURSE
  "CMakeFiles/degree_model_test.dir/degree_model_test.cc.o"
  "CMakeFiles/degree_model_test.dir/degree_model_test.cc.o.d"
  "degree_model_test"
  "degree_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/degree_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
