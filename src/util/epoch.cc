#include "util/epoch.h"

#include <cstdio>
#include <cstdlib>
#include <thread>

#if defined(__linux__)
#include <linux/membarrier.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

#if defined(__SANITIZE_THREAD__)
#define SNB_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SNB_TSAN 1
#endif
#endif

namespace snb::util {
namespace {

/// Full memory barrier on every thread of the process (expedited
/// membarrier). Only called when DetectAsymmetricPins() succeeded, so the
/// command is known to be registered and supported.
inline void MembarrierAllThreads() {
#if defined(__linux__)
  syscall(SYS_membarrier, MEMBARRIER_CMD_PRIVATE_EXPEDITED, 0, 0);
#endif
}

/// Per-thread slot bindings. A thread may use a handful of managers (the
/// process-wide one plus test-local instances); bindings are found by
/// linear scan. Non-global managers must outlive every thread that ever
/// entered them — the Global() instance is leaked for exactly this reason.
struct Binding {
  EpochManager* manager = nullptr;
  void* slot = nullptr;
  uint32_t nest = 0;
};

struct ThreadEpochState {
  // A thread may bind the whole Domain() pool (kMaxDomains = 8) plus a
  // handful of test-local managers; bindings are never released before
  // thread exit, so the cap must cover the union, not the working set.
  static constexpr int kMaxBindings = 32;
  Binding bindings[kMaxBindings];

  ~ThreadEpochState() {
    for (Binding& b : bindings) {
      if (b.manager != nullptr) {
        EpochManager::ReleaseSlotAtThreadExit(b.slot);
      }
    }
  }

  Binding* Find(EpochManager* manager) {
    for (Binding& b : bindings) {
      if (b.manager == manager) return &b;
    }
    return nullptr;
  }

  Binding* Create(EpochManager* manager, void* slot) {
    for (Binding& b : bindings) {
      if (b.manager == nullptr) {
        b.manager = manager;
        b.slot = slot;
        b.nest = 0;
        return &b;
      }
    }
    std::fprintf(stderr,
                 "EpochManager: thread bound to more than %d managers\n",
                 kMaxBindings);
    std::abort();
  }
};

thread_local ThreadEpochState tls_epoch_state;

}  // namespace

EpochManager& EpochManager::Global() {
  static EpochManager* instance = new EpochManager();  // Intentional leak.
  return *instance;
}

EpochManager& EpochManager::Domain(size_t index) {
  if (index >= kMaxDomains) {
    std::fprintf(stderr, "EpochManager::Domain(%zu): only %zu domains\n",
                 index, kMaxDomains);
    std::abort();
  }
  if (index == 0) return Global();
  // Intentional leak, same argument as Global(): a thread's cached slot
  // binding is released only at thread exit, which must not race manager
  // destruction.
  static EpochManager* extra = new EpochManager[kMaxDomains - 1];
  return extra[index - 1];
}

EpochManager::~EpochManager() {
  // Caller guarantees quiescence; free whatever is still in limbo.
  MutexLock lock(&retire_mu_);
  for (Garbage& g : garbage_) g.deleter(g.ptr);
  garbage_.clear();
}

EpochManager::Slot* EpochManager::ClaimSlot() {
  for (Slot& slot : slots_) {
    uint32_t expected = 0;
    if (slot.claimed.compare_exchange_strong(expected, 1,
                                             std::memory_order_acq_rel)) {
      return &slot;
    }
  }
  std::fprintf(stderr, "EpochManager: more than %zu concurrent threads\n",
               kMaxThreads);
  std::abort();
}

bool EpochManager::DetectAsymmetricPins() {
#if defined(__linux__) && !defined(SNB_TSAN)
  long supported = syscall(SYS_membarrier, MEMBARRIER_CMD_QUERY, 0, 0);
  if (supported < 0 ||
      (supported & MEMBARRIER_CMD_PRIVATE_EXPEDITED) == 0) {
    return false;
  }
  return syscall(SYS_membarrier, MEMBARRIER_CMD_REGISTER_PRIVATE_EXPEDITED,
                 0, 0) == 0;
#else
  // TSan cannot model IPI-induced ordering; keep the seq_cst pins it can
  // verify. Non-Linux likewise falls back.
  return false;
#endif
}

void EpochManager::Enter() {
  Binding* binding = tls_epoch_state.Find(this);
  if (binding == nullptr) {
    binding = tls_epoch_state.Create(this, ClaimSlot());
  }
  if (binding->nest++ > 0) return;
  Slot* slot = static_cast<Slot*>(binding->slot);
  // Publish the epoch we observed, then re-check: if the global moved while
  // we were publishing, catch up so reclamation is not stalled by a pin
  // that is stale from birth. (A stale pin is safe — see header — this
  // loop is a liveness optimisation, and it terminates because advances
  // require *this* slot to catch up once pinned.)
  if (asymmetric_pins_) {
    // Writer-side membarrier makes the relaxed pin store visible to the
    // slot scan; the acquire re-check orders this section's pointer loads
    // after every unlink that preceded the epoch we end up pinned at.
    uint64_t e = global_epoch_.load(std::memory_order_acquire);
    for (;;) {
      slot->epoch.store(e, std::memory_order_relaxed);
      std::atomic_signal_fence(std::memory_order_seq_cst);
      uint64_t current = global_epoch_.load(std::memory_order_acquire);
      if (current == e) break;
      e = current;
    }
    return;
  }
  uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
  for (;;) {
    slot->epoch.store(e, std::memory_order_seq_cst);
    uint64_t current = global_epoch_.load(std::memory_order_seq_cst);
    if (current == e) break;
    e = current;
  }
}

void EpochManager::Exit() {
  Binding* binding = tls_epoch_state.Find(this);
  if (binding == nullptr || binding->nest == 0) {
    std::fprintf(stderr, "EpochManager::Exit without matching Enter\n");
    std::abort();
  }
  if (--binding->nest > 0) return;
  static_cast<Slot*>(binding->slot)->epoch.store(0,
                                                 std::memory_order_release);
}

void EpochManager::Retire(void* p, void (*deleter)(void*)) {
  constexpr size_t kReclaimThreshold = 64;
  MutexLock lock(&retire_mu_);
  garbage_.push_back(
      {p, deleter, global_epoch_.load(std::memory_order_seq_cst)});
  retired_total_.fetch_add(1, std::memory_order_relaxed);
  if (garbage_.size() >= kReclaimThreshold) ReclaimLocked();
}

size_t EpochManager::TryReclaim() {
  MutexLock lock(&retire_mu_);
  return ReclaimLocked();
}

size_t EpochManager::ReclaimLocked() {
  // Asymmetric mode: flush every reader's in-flight pin store before the
  // scan (the pairing fence for the relaxed stores in Enter), so a pin
  // issued before this point cannot be missed below.
  if (asymmetric_pins_) MembarrierAllThreads();
  uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
  bool can_advance = true;
  for (const Slot& slot : slots_) {
    uint64_t pinned = slot.epoch.load(std::memory_order_seq_cst);
    if (pinned != 0 && pinned != e) {
      can_advance = false;
      break;
    }
  }
  if (can_advance) {
    global_epoch_.store(e + 1, std::memory_order_seq_cst);
    e = e + 1;
    advances_.fetch_add(1, std::memory_order_relaxed);
    // Make the advance globally visible before freeing anything under the
    // new epoch: a reader pinning concurrently re-checks the global with
    // an acquire load and so observes every unlink older than the epoch
    // it settles on.
    if (asymmetric_pins_) MembarrierAllThreads();
  }
  size_t freed = 0;
  while (!garbage_.empty() && garbage_.front().retire_epoch + 2 <= e) {
    Garbage& g = garbage_.front();
    g.deleter(g.ptr);
    garbage_.pop_front();
    ++freed;
  }
  freed_total_.fetch_add(freed, std::memory_order_relaxed);
  return freed;
}

void EpochManager::DrainForTesting() {
  for (;;) {
    {
      MutexLock lock(&retire_mu_);
      if (garbage_.empty()) return;
      ReclaimLocked();
    }
    std::this_thread::yield();
  }
}

void EpochManager::ReleaseSlotAtThreadExit(void* slot) {
  Slot* s = static_cast<Slot*>(slot);
  // A thread exiting inside a critical section would be a bug elsewhere;
  // clear the pin regardless so reclamation is never wedged forever.
  s->epoch.store(0, std::memory_order_release);
  s->claimed.store(0, std::memory_order_release);
}

size_t EpochManager::pending() const {
  MutexLock lock(&retire_mu_);
  return garbage_.size();
}

EpochManager::EpochStats EpochManager::stats() const {
  EpochStats s;
  s.advances = advances_.load(std::memory_order_relaxed);
  s.retired = retired_total_.load(std::memory_order_relaxed);
  s.freed = freed_total_.load(std::memory_order_relaxed);
  s.pending = pending();
  return s;
}

}  // namespace snb::util
