# Empty dependencies file for bench_table7_short_reads.
# This may be replaced when dependencies are built.
