#include "exec/operators.h"

#include <algorithm>

#include "exec/intersect.h"
#include "store/adjacency_blocks.h"

namespace snb::exec {

using store::DatedEdge;
using store::PersonRecord;

TwoHopStats ExpandTwoHopSorted(const store::GraphStore& store,
                               const store::ShardSnapshot& pin, uint64_t start,
                               std::vector<uint64_t>* circle,
                               obs::OperatorStats* join1_sink,
                               obs::OperatorStats* join2_sink) {
  TwoHopStats stats;
  circle->clear();
  const PersonRecord* p = store.FindPerson(pin, start);
  if (p == nullptr) return stats;

  // join1: the direct friend list, already sorted by neighbour id.
  std::vector<uint64_t> direct;
  {
    obs::TraceSpan span(join1_sink, "join1");
    store::CopyFriendIds(p->friends.view(), &direct);
    stats.direct = direct.size();
    span.AddRows(stats.direct);
  }

  // join2: per-friend difference against the direct list keeps the fresh
  // candidates small before the single dedup sort; one merge restores
  // global order. Equivalent to hash-dedup + sort (TwoHopCircleLocked) —
  // same element set, same final order.
  std::vector<uint64_t> fof;
  {
    obs::TraceSpan span(join2_sink, "join2");
    std::vector<uint64_t> ids;
    std::vector<uint64_t> fresh;
    for (uint64_t f : direct) {
      const PersonRecord* fp = store.FindPerson(pin, f);
      if (fp == nullptr) continue;
      store::CopyFriendIds(fp->friends.view(), &ids);
      stats.fof_tuples += ids.size();
      fresh.resize(ids.size());
      size_t n = DifferenceSorted(ids.data(), ids.size(), direct.data(),
                                  direct.size(), fresh.data());
      fof.insert(fof.end(), fresh.begin(), fresh.begin() + n);
    }
    std::sort(fof.begin(), fof.end());
    fof.erase(std::unique(fof.begin(), fof.end()), fof.end());
    // Friendship is symmetric, so `start` shows up as a friend-of-friend;
    // the circle excludes it (it was never in `direct`: nobody friends
    // themselves).
    auto self = std::lower_bound(fof.begin(), fof.end(), start);
    if (self != fof.end() && *self == start) fof.erase(self);
    span.AddRows(stats.fof_tuples);
  }

  circle->resize(direct.size() + fof.size());
  std::merge(direct.begin(), direct.end(), fof.begin(), fof.end(),
             circle->begin());
  return stats;
}

MessageScanOperator::MessageScanOperator(const store::GraphStore& store,
                                         const store::ShardSnapshot& pin,
                                         const std::vector<uint64_t>& persons,
                                         util::TimestampMs max_date_exclusive,
                                         size_t per_person_limit,
                                         obs::OperatorStats* stats)
    : store_(store),
      pin_(pin),
      persons_(persons),
      max_date_exclusive_(max_date_exclusive),
      per_person_limit_(per_person_limit),
      stats_(stats) {}

bool MessageScanOperator::OpenNextPerson() {
  while (person_idx_ < persons_.size()) {
    uint64_t pid = persons_[person_idx_++];
    const PersonRecord* p = store_.FindPerson(pin_, pid);
    if (p == nullptr) continue;
    auto view = p->messages.view();
    // First index with date >= max_date_exclusive; the index is
    // date-ascending with dates inline, so the cut touches no records.
    auto it = std::partition_point(
        view.begin(), view.end(),
        [this](const DatedEdge& e) { return e.date < max_date_exclusive_; });
    size_t upper = static_cast<size_t>(it - view.begin());
    size_t take = std::min(upper, per_person_limit_);
    if (take == 0) continue;
    edges_ = view.data();
    pos_ = upper - take;
    end_ = upper;
    current_person_ = pid;
    return true;
  }
  return false;
}

bool MessageScanOperator::Next(Batch* out) {
  obs::TraceSpan span(stats_, "message_scan");
  out->clear();
  while (out->size < kBatchCapacity) {
    if (pos_ == end_ && !OpenNextPerson()) break;
    size_t n = std::min(kBatchCapacity - out->size, end_ - pos_);
    for (size_t i = 0; i < n; ++i) {
      const DatedEdge& e = edges_[pos_ + i];
      out->a[out->size + i] = e.id;
      out->b[out->size + i] = current_person_;
      out->date[out->size + i] = e.date;
    }
    pos_ += n;
    out->size += n;
  }
  rows_emitted_ += out->size;
  span.AddRows(out->size);
  return out->size > 0;
}

}  // namespace snb::exec
