// Negative-compilation case (ctest WILL_FAIL, Clang only): writing a
// SNB_GUARDED_BY field without holding its mutex must fail under
// -Wthread-safety -Werror=thread-safety. Registered only for Clang
// builds — GCC compiles the annotations away.
#include "util/mutex.h"
#include "util/thread_annotations.h"

class Counter {
 public:
  void Unsafe() { ++value_; }  // error: writing value_ requires mu_

 private:
  snb::util::Mutex mu_;
  int value_ SNB_GUARDED_BY(mu_) = 0;
};

int main() {
  Counter c;
  c.Unsafe();
  return 0;
}
