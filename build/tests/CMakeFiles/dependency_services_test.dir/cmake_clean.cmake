file(REMOVE_RECURSE
  "CMakeFiles/dependency_services_test.dir/dependency_services_test.cc.o"
  "CMakeFiles/dependency_services_test.dir/dependency_services_test.cc.o.d"
  "dependency_services_test"
  "dependency_services_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dependency_services_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
