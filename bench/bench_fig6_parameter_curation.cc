// Figure 6 reproduction: the Parameter-Count table of Query 2 and the
// greedy window selection. Prints sample PC-table rows, the curated
// bindings, and the variance of their intermediate-result counts.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "curation/parameter_curation.h"
#include "util/rng.h"

namespace snb::bench {
namespace {

void Run() {
  PrintHeader("Figure 6 — Parameter-Count table & greedy curation (Query 2)");
  std::unique_ptr<BenchWorld> world = MakeWorld(kMediumSf, false, false);
  curation::PcTable table =
      curation::BuildQuery2Table(world->dataset.stats);

  std::printf("  Intended plan (Fig. 6a): (Person |> friends) |> messages,"
              " sort, top-20\n");
  std::printf("  PC table: %zu rows x %zu columns"
              " (|join1| = friends, |join2| = friends' messages)\n\n",
              table.num_rows(), table.num_columns());

  constexpr size_t kPick = 10;
  std::vector<uint64_t> curated = curation::CurateParameters(table, kPick);

  std::printf("  %-12s %10s %10s %s\n", "PersonID", "|join1|", "|join2|",
              "curated?");
  // Print rows around the curated window plus a few contrasting rows.
  std::vector<uint64_t> show = curated;
  util::Rng rng(5, 5, util::RandomPurpose::kParameterPick);
  for (int i = 0; i < 6; ++i) show.push_back(rng.NextBounded(table.num_rows()));
  std::sort(show.begin(), show.end());
  show.erase(std::unique(show.begin(), show.end()), show.end());
  for (uint64_t key : show) {
    bool is_curated =
        std::find(curated.begin(), curated.end(), key) != curated.end();
    std::printf("  %-12llu %10llu %10llu %s\n", (unsigned long long)key,
                (unsigned long long)table.columns[0][key],
                (unsigned long long)table.columns[1][key],
                is_curated ? "  <== selected" : "");
  }

  double curated_var = curation::SelectionCoutVariance(table, curated);
  double uniform_var = 0;
  for (int s = 0; s < 10; ++s) {
    uniform_var += curation::SelectionCoutVariance(
        table, curation::UniformParameters(table, kPick, rng));
  }
  uniform_var /= 10;
  std::printf("\n  Cout variance: curated %.1f vs uniform %.1f (%.0fx)\n",
              curated_var, uniform_var,
              curated_var > 0 ? uniform_var / curated_var : 1e9);
  std::printf(
      "  Shape to check: selected PersonIDs share near-identical |join1|\n"
      "  and |join2| (the dark-gray window of Fig. 6b); their Cout variance\n"
      "  is orders of magnitude below a uniform sample's.\n\n");
}

}  // namespace
}  // namespace snb::bench

int main() {
  snb::bench::Run();
  return 0;
}
