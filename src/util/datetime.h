// Simulation-time utilities.
//
// All SNB timestamps are milliseconds since the Unix epoch in simulation
// time. A standard scale factor covers three years of network activity
// (2010-01-01 .. 2013-01-01): the first 32 months are bulk-loaded and the
// final 4 months become the update stream.
#ifndef SNB_UTIL_DATETIME_H_
#define SNB_UTIL_DATETIME_H_

#include <cstdint>
#include <string>

namespace snb::util {

/// Milliseconds since the Unix epoch, simulation time.
using TimestampMs = int64_t;

inline constexpr int64_t kMillisPerSecond = 1000;
inline constexpr int64_t kMillisPerMinute = 60 * kMillisPerSecond;
inline constexpr int64_t kMillisPerHour = 60 * kMillisPerMinute;
inline constexpr int64_t kMillisPerDay = 24 * kMillisPerHour;
// Calendar-free month: the network timeline maths uses a uniform 30-day
// month, which keeps the 32-month/4-month split exact and deterministic.
inline constexpr int64_t kMillisPerMonth = 30 * kMillisPerDay;
inline constexpr int64_t kMillisPerYear = 365 * kMillisPerDay;

/// 2010-01-01T00:00:00Z — start of the simulated network.
inline constexpr TimestampMs kNetworkStartMs = 1262304000000LL;
/// Total simulated span: 36 months.
inline constexpr int kSimulationMonths = 36;
/// Months included in the bulk load; the remainder feeds the update stream.
inline constexpr int kBulkLoadMonths = 32;

/// End of the simulated timeline.
constexpr TimestampMs NetworkEndMs() {
  return kNetworkStartMs + kSimulationMonths * kMillisPerMonth;
}

/// Timestamp at which the bulk-load/update-stream split occurs.
constexpr TimestampMs UpdateStreamStartMs() {
  return kNetworkStartMs + kBulkLoadMonths * kMillisPerMonth;
}

/// Month index (0-based from network start) containing `ts`. Values outside
/// the timeline clamp to the first/last month.
inline int MonthIndex(TimestampMs ts) {
  int64_t m = (ts - kNetworkStartMs) / kMillisPerMonth;
  if (m < 0) return 0;
  if (m >= kSimulationMonths) return kSimulationMonths - 1;
  return static_cast<int>(m);
}

/// Formats a timestamp as "YYYY-MM-DD hh:mm:ss" (UTC, proleptic calendar).
std::string FormatTimestamp(TimestampMs ts);

/// Timestamp of the given calendar date at midnight UTC.
TimestampMs TimestampFromDate(int year, int month, int day);

}  // namespace snb::util

#endif  // SNB_UTIL_DATETIME_H_
