// SNB_INVARIANT_ROOT("domain"): declare the enclosing function a root of a
// binary-level reachability invariant, checked by tools/snb_invariants.
//
// The repo carries three runtime invariants that comments alone cannot
// enforce: the SIGPROF handler must stay async-signal-safe, epoch-pinned
// snapshot reads must never block or allocate, and the metrics/SPSC-ring
// hot paths must stay lock-free. This macro is the source-side half of the
// enforcement: it plants a zero-cost tag the checker reads back out of the
// built binary, so the set of checked roots lives next to the code it
// describes instead of drifting in a separate list.
//
// Mechanism: the macro defines a function-local `static const char` array
// (constant-initialized — no guard variable, no code, no runtime cost) in
// a dedicated ELF section named
//
//     snb_invariants.<domain>.<line>
//
// The variable's mangled name (`_ZZ<function>E snb_invariant_root_<line>`)
// encodes the enclosing function; the section name encodes the domain.
// tools/snb_invariants scans the symbol table for symbols whose section
// starts with "snb_invariants.", demangles each to recover (domain,
// function), and then verifies the declared rule for that domain over the
// whole-program direct-call graph reconstructed from `objdump -d`.
//
// The per-tag section name (rather than one shared "snb_invariants"
// section) is load-bearing: tags inside header-inline functions have
// vague (comdat) linkage while tags inside .cc-local functions do not,
// and GCC refuses to mix comdat and non-comdat definitions in one named
// section ("section type conflict"). One section per tag sidesteps the
// conflict while keeping the "dedicated ELF section" discovery contract.
//
// Usage — first statement of the function body, domain as a string
// literal matching a rule name in tools/snb_invariants/invariants.toml:
//
//   const PersonRecord* FindPerson(const util::EpochPin&, PersonId id) {
//     SNB_INVARIANT_ROOT("pinned_read");
//     ...
//   }
//
// Constraints:
//   * The macro must be placed inside a C++ (mangled) function body; the
//     checker recovers the function from the tag's mangled name, which a
//     C-linkage function does not carry.
//   * A function may carry several tags (one per domain).
//   * Roots that the optimizer could inline out of existence entirely must
//     either be odr-anchored by tools/snb_invariants/probe_main.cc (the
//     probe takes their address through a volatile pointer, forcing an
//     out-of-line copy whose body the checker analyzes) or be marked
//     noinline at their definition. A tag whose function has no symbol in
//     the analyzed binary is a hard checker error, never silently skipped.
//
// SNB_INVARIANTS=OFF (cmake -DSNB_INVARIANTS=OFF) compiles the macro to
// nothing; binaries then carry no tags and the checker has nothing to
// verify. The default is ON in every build type — the tags cost a few
// bytes of rodata and zero instructions.
#ifndef SNB_UTIL_INVARIANT_ROOT_H_
#define SNB_UTIL_INVARIANT_ROOT_H_

#if defined(SNB_INVARIANTS) && SNB_INVARIANTS

#define SNB_INVARIANT_ROOT_STR_INNER(x) #x
#define SNB_INVARIANT_ROOT_STR(x) SNB_INVARIANT_ROOT_STR_INNER(x)
#define SNB_INVARIANT_ROOT_CAT_INNER(a, b) a##b
#define SNB_INVARIANT_ROOT_CAT(a, b) SNB_INVARIANT_ROOT_CAT_INNER(a, b)

#define SNB_INVARIANT_ROOT(domain)                                        \
  static const char SNB_INVARIANT_ROOT_CAT(snb_invariant_root_,           \
                                           __LINE__)[]                    \
      __attribute__((used,                                                \
                     section("snb_invariants." domain                     \
                             "." SNB_INVARIANT_ROOT_STR(__LINE__)))) = ""

#else  // !SNB_INVARIANTS

#define SNB_INVARIANT_ROOT(domain) static_assert(true, "")

#endif  // SNB_INVARIANTS

#endif  // SNB_UTIL_INVARIANT_ROOT_H_
