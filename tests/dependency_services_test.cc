// Tests for the Local/Global Dependency Services (Figure 7).
#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "driver/dependency_services.h"

namespace snb::driver {
namespace {

TEST(LdsTest, TliTracksLowestInFlight) {
  GlobalDependencyService gds;
  LocalDependencyService* lds = gds.AddStream();
  lds->Initiate(100);
  lds->Initiate(200);
  EXPECT_EQ(lds->TLI(), 100);
  lds->Complete(100);
  EXPECT_EQ(lds->TLI(), 200);
  lds->Complete(200);
  // IT empty: TLI stays at the last known floor.
  EXPECT_EQ(lds->TLI(), 200);
}

TEST(LdsTest, TlcAdvancesOnlyBehindTli) {
  GlobalDependencyService gds;
  LocalDependencyService* lds = gds.AddStream();
  lds->Initiate(100);
  lds->Initiate(200);
  lds->Initiate(300);
  // Out-of-order completion: 300 completes first but 100 still in flight.
  lds->Complete(300);
  EXPECT_LT(lds->TLC(), 100);
  lds->Complete(100);
  // Now TLI=200; completions below it (100) and also 300? 300 >= TLI stays.
  EXPECT_EQ(lds->TLC(), 100);
  lds->Complete(200);
  // Everything done; TLI floor = 300, all completions fold in.
  EXPECT_GE(lds->TLC(), 300 - 1);
}

TEST(LdsTest, MarkTimeAdvancesIdleStream) {
  GlobalDependencyService gds;
  LocalDependencyService* lds = gds.AddStream();
  lds->MarkTime(500);
  EXPECT_EQ(lds->TLI(), 500);
  EXPECT_GE(lds->TLC(), 499);
}

TEST(LdsTest, MonotoneUnderInterleaving) {
  GlobalDependencyService gds;
  LocalDependencyService* lds = gds.AddStream();
  TimestampMs last_tli = 0, last_tlc = 0;
  for (TimestampMs t = 10; t <= 1000; t += 10) {
    if (t % 30 == 0) {
      lds->Initiate(t);
      lds->Complete(t);
    } else {
      lds->MarkTime(t);
    }
    EXPECT_GE(lds->TLI(), last_tli);
    EXPECT_GE(lds->TLC(), last_tlc);
    last_tli = lds->TLI();
    last_tlc = lds->TLC();
  }
}

TEST(GdsTest, TgcIsMinAcrossStreams) {
  GlobalDependencyService gds;
  LocalDependencyService* a = gds.AddStream();
  LocalDependencyService* b = gds.AddStream();
  a->Initiate(100);
  b->Initiate(500);
  EXPECT_EQ(gds.TGI(), 100);
  EXPECT_LT(gds.TGC(), 100);
  a->Complete(100);
  a->MarkTime(600);
  // Now TGI = min(600, 500) = 500, and some TLC >= 499.
  EXPECT_EQ(gds.TGI(), 500);
  EXPECT_GE(gds.TGC(), 100);
  EXPECT_LT(gds.TGC(), 500);
  b->Complete(500);
  b->MarkTime(700);
  EXPECT_GE(gds.TGC(), 500);
}

TEST(GdsTest, WaitUnblocksWhenDependencyCompletes) {
  GlobalDependencyService gds;
  LocalDependencyService* producer = gds.AddStream();
  LocalDependencyService* consumer = gds.AddStream();
  consumer->MarkTime(1000);  // Consumer is ahead.

  producer->Initiate(100);
  std::atomic<bool> released{false};
  std::thread waiter([&] {
    gds.WaitUntilCompleted(100);
    released.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(released.load());
  producer->Complete(100);
  producer->MarkTime(kTimeMax);
  waiter.join();
  EXPECT_TRUE(released.load());
}

TEST(GdsTest, HierarchicalCompositionTracksChildren) {
  // "A GDS instance could track other GDS instances in the same manner as
  // it tracks LDS instances" — the distributed-driver setting.
  GlobalDependencyService site_a;
  GlobalDependencyService site_b;
  GlobalDependencyService root;
  root.AddChild(&site_a);
  root.AddChild(&site_b);

  LocalDependencyService* a1 = site_a.AddStream();
  LocalDependencyService* a2 = site_a.AddStream();
  LocalDependencyService* b1 = site_b.AddStream();

  a1->Initiate(100);
  a2->MarkTime(900);
  b1->Initiate(400);
  // Root must not pass the globally oldest in-flight op (100 in site A).
  EXPECT_LT(root.TGC(), 100);
  a1->Complete(100);
  a1->MarkTime(1000);
  // Site A caught up; now site B's 400 pins the root.
  EXPECT_GE(root.TGC(), 100);
  EXPECT_LT(root.TGC(), 400);
  b1->Complete(400);
  b1->MarkTime(1000);
  EXPECT_GE(root.TGC(), 400);
  // Root watermark interface reports the same values.
  EXPECT_EQ(root.WatermarkTLC(), root.TGC());
  EXPECT_EQ(root.WatermarkTLI(), root.TGI());
}

TEST(GdsTest, ManyStreamsConcurrentProgress) {
  // Hammer the services from several threads; watermarks must stay monotone
  // and the final TGC must cover the whole range.
  GlobalDependencyService gds;
  constexpr int kStreams = 6;
  constexpr int kOpsPerStream = 2000;
  std::vector<LocalDependencyService*> streams;
  for (int s = 0; s < kStreams; ++s) streams.push_back(gds.AddStream());

  std::atomic<bool> failed{false};
  std::thread monitor([&] {
    TimestampMs last = 0;
    for (int i = 0; i < 200; ++i) {
      TimestampMs tgc = gds.TGC();
      if (tgc < last) failed.store(true);
      last = tgc;
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  });

  std::vector<std::thread> workers;
  for (int s = 0; s < kStreams; ++s) {
    workers.emplace_back([&, s] {
      LocalDependencyService* lds = streams[s];
      for (int i = 1; i <= kOpsPerStream; ++i) {
        TimestampMs t = static_cast<TimestampMs>(i) * 10 + s;
        if (i % 3 == 0) {
          lds->Initiate(t);
          lds->Complete(t);
        } else {
          lds->MarkTime(t);
        }
      }
      lds->MarkTime(kTimeMax);
    });
  }
  for (std::thread& t : workers) t.join();
  monitor.join();
  EXPECT_FALSE(failed.load());
  EXPECT_GE(gds.TGC(), kOpsPerStream * 10);
}

}  // namespace
}  // namespace snb::driver
