// Differential query fuzzer: three independent implementations (graph
// store, relational baseline, naive oracle) must agree on every read query
// over hundreds of random graphs; any disagreement shrinks to a minimal
// standalone regression artifact.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "validate/fuzz.h"

namespace snb::validate {
namespace {

TEST(FuzzGeneratorTest, IsDeterministicAndBounded) {
  schema::SocialNetwork a = GenerateFuzzNetwork(42, 12);
  schema::SocialNetwork b = GenerateFuzzNetwork(42, 12);
  ASSERT_EQ(a.persons.size(), b.persons.size());
  ASSERT_GE(a.persons.size(), 2u);
  ASSERT_LE(a.persons.size(), 12u);
  ASSERT_EQ(a.knows.size(), b.knows.size());
  ASSERT_EQ(a.messages.size(), b.messages.size());
  ASSERT_EQ(a.likes.size(), b.likes.size());
  for (size_t i = 0; i < a.messages.size(); ++i) {
    EXPECT_EQ(a.messages[i].id, b.messages[i].id);
    EXPECT_EQ(a.messages[i].content, b.messages[i].content);
  }
  // A different seed produces a different graph (overwhelmingly likely).
  schema::SocialNetwork c = GenerateFuzzNetwork(43, 12);
  EXPECT_TRUE(a.persons.size() != c.persons.size() ||
              a.messages.size() != c.messages.size() ||
              a.knows.size() != c.knows.size() ||
              a.likes.size() != c.likes.size());
}

TEST(FuzzGeneratorTest, CommentsReplyToEarlierMessages) {
  for (uint64_t seed : {1ULL, 7ULL, 99ULL}) {
    schema::SocialNetwork net = GenerateFuzzNetwork(seed, 12);
    for (const schema::Message& m : net.messages) {
      if (m.kind == schema::MessageKind::kComment) {
        EXPECT_LT(m.reply_to_id, m.id);
        EXPECT_NE(m.root_post_id, schema::kInvalidId);
      } else {
        EXPECT_EQ(m.root_post_id, m.id);
      }
    }
  }
}

// The acceptance gate: >= 200 random graphs, all 21 read queries, zero
// mismatches between the store, the relational baseline and the oracle.
TEST(DifferentialFuzzTest, TwoHundredGraphsAgreeAcrossBackends) {
  FuzzConfig config;
  config.num_graphs = 200;
  FuzzOutcome outcome;
  ASSERT_TRUE(RunDifferentialFuzz(config, &outcome).ok());
  EXPECT_EQ(outcome.graphs_run, 200);
  EXPECT_GT(outcome.comparisons, 0u);
  ASSERT_EQ(outcome.mismatches, 0)
      << "backend " << outcome.first.backend << " diverged on "
      << outcome.first.binding.op << " (graph seed "
      << outcome.first.graph_seed << "):\n"
      << MismatchToJson(outcome.first);
}

TEST(DifferentialFuzzTest, PerturbationIsCaughtShrunkAndRoundTrips) {
  // Simulated store-side bug: Q2 drops its last row.
  StorePerturbation drop_last = [](const std::string& op,
                                   std::vector<std::string>* rows) {
    if (op == "complex.Q2" && !rows->empty()) rows->pop_back();
  };
  FuzzConfig config;
  config.num_graphs = 50;
  FuzzOutcome outcome;
  ASSERT_TRUE(RunDifferentialFuzz(config, drop_last, &outcome).ok());
  ASSERT_EQ(outcome.mismatches, 1);
  const FuzzMismatch& mismatch = outcome.first;
  EXPECT_EQ(mismatch.backend, "store");
  EXPECT_EQ(mismatch.binding.op, "complex.Q2");
  EXPECT_NE(mismatch.expected, mismatch.actual);

  // The shrunk graph still reproduces, and shrinking actually removed
  // irrelevant structure: the surviving graph is no bigger than the
  // original the seed regenerates.
  EXPECT_TRUE(MismatchReproduces(mismatch, drop_last));
  schema::SocialNetwork original =
      GenerateFuzzNetwork(mismatch.graph_seed, config.max_persons);
  size_t original_entities = original.persons.size() + original.knows.size() +
                             original.messages.size() + original.likes.size() +
                             original.memberships.size() +
                             original.forums.size();
  size_t shrunk_entities =
      mismatch.graph.persons.size() + mismatch.graph.knows.size() +
      mismatch.graph.messages.size() + mismatch.graph.likes.size() +
      mismatch.graph.memberships.size() + mismatch.graph.forums.size();
  EXPECT_LE(shrunk_entities, original_entities);

  // Artifact round-trip: write, read back, reproduce from the file alone.
  std::string path = ::testing::TempDir() + "fuzz_regression.json";
  ASSERT_TRUE(WriteMismatch(mismatch, path).ok());
  FuzzMismatch loaded;
  ASSERT_TRUE(ReadMismatch(path, &loaded).ok());
  EXPECT_EQ(loaded.backend, mismatch.backend);
  EXPECT_EQ(loaded.binding.op, mismatch.binding.op);
  EXPECT_EQ(loaded.expected, mismatch.expected);
  EXPECT_EQ(loaded.actual, mismatch.actual);
  EXPECT_EQ(loaded.graph.persons.size(), mismatch.graph.persons.size());
  EXPECT_EQ(loaded.graph.messages.size(), mismatch.graph.messages.size());
  for (size_t i = 0; i < loaded.graph.messages.size(); ++i) {
    EXPECT_EQ(loaded.graph.messages[i].content,
              mismatch.graph.messages[i].content);
    EXPECT_EQ(loaded.graph.messages[i].reply_to_id,
              mismatch.graph.messages[i].reply_to_id);
  }
  EXPECT_TRUE(MismatchReproduces(loaded, drop_last));
  // Without the simulated bug the artifact does not reproduce — the
  // mismatch lived in the perturbation, not the store.
  EXPECT_FALSE(MismatchReproduces(loaded));
  std::remove(path.c_str());
}

TEST(FuzzArtifactTest, RejectsForeignAndCorruptDocuments) {
  FuzzMismatch out;
  EXPECT_FALSE(MismatchFromJson("not json", &out).ok());
  EXPECT_FALSE(MismatchFromJson("{\"schema\":\"other-v9\"}", &out).ok());
  EXPECT_FALSE(
      MismatchFromJson("{\"schema\":\"snb-fuzz-regression-v1\"}", &out).ok());
}

}  // namespace
}  // namespace snb::validate
