// Query-mix construction (paper section 4, Table 4).
//
// The overall SNB-Interactive mix is calibrated so that ~10% of runtime is
// updates, ~50% complex reads and ~40% short reads. Updates come from the
// pre-generated stream; complex reads are woven in at the Table 4 relative
// frequencies ("Query 1 once every 132 update operations"), and short reads
// are spawned by the connector's random walk over complex-read results.
// As the scale factor grows, complex reads get heavier by the logarithmic
// index factor (O(D^k log n)), so their frequencies are scaled down
// accordingly ("Scaling the workload").
#ifndef SNB_DRIVER_QUERY_MIX_H_
#define SNB_DRIVER_QUERY_MIX_H_

#include <array>
#include <cstdint>
#include <vector>

#include "curation/parameter_curation.h"
#include "datagen/datagen.h"
#include "driver/operation.h"
#include "schema/dictionaries.h"

namespace snb::driver {

/// Table 4: number of update operations between two instances of each
/// complex query, at the calibration scale.
inline constexpr std::array<uint32_t, 14> kTable4Frequencies = {
    132, 240, 550, 161, 534, 1615, 144, 13, 1425, 217, 133, 238, 57, 144};

/// Frequency multiplier for a scale with `num_persons` members relative to
/// the SF1 calibration point: complex reads cost an extra log(n) factor, so
/// they run log(n)/log(n_SF1) times less often.
double FrequencyLogScale(uint64_t num_persons);

/// Knobs for workload construction.
struct QueryMixConfig {
  std::array<uint32_t, 14> frequencies = kTable4Frequencies;
  /// Multiplies every frequency (>= 1 slows reads down). Use
  /// FrequencyLogScale() to follow the paper's scaling rule.
  double frequency_scale = 1.0;
  /// Curated parameter bindings per query template.
  size_t params_per_query = 20;
  bool include_updates = true;
  bool include_complex_reads = true;
  uint64_t seed = 0x5eedULL;
};

/// A fully instantiated workload: operations sorted by due time, ready for
/// the driver.
struct Workload {
  std::vector<Operation> operations;
  uint64_t num_updates = 0;
  uint64_t num_complex_reads = 0;
};

/// Builds the interleaved update + complex-read operation stream for
/// `dataset`. Complex-read person parameters are curated from the dataset's
/// generation statistics (section 4.1); date/tag/country parameters derive
/// deterministically from the seed and due times.
Workload BuildWorkload(const datagen::Dataset& dataset,
                       const schema::Dictionaries& dictionaries,
                       const QueryMixConfig& config);

/// Result of calibrating the mix for a concrete SUT (the paper performed
/// this step with Virtuoso; we perform it against the measured costs of
/// whatever connector will run the workload).
struct MixCalibration {
  /// Per-complex-query frequency (one instance per N updates).
  std::array<uint32_t, 14> frequencies{};
  /// Random-walk parameters (P and decay) hitting the short-read share.
  double short_read_initial_probability = 0.5;
  double short_read_decay = 0.08;
  /// Expected walk length implied by the parameters.
  double expected_walk_length = 0.0;
};

/// Calibrates frequencies and walk parameters so that, given the measured
/// mean costs (microseconds), the run spends `update_share` of its CPU time
/// on updates, `complex_share` on complex reads (equal time per query type)
/// and the rest on short reads — the paper's 10% / 50% / 40% target.
///
/// `complex_cost_us[q-1]` is the mean cost of query q; `num_updates` and
/// `mean_update_cost_us` describe the update stream; `mean_short_cost_us`
/// the average short-read cost.
MixCalibration CalibrateMix(const std::array<double, 14>& complex_cost_us,
                            uint64_t num_updates,
                            double mean_update_cost_us,
                            double mean_short_cost_us,
                            double update_share = 0.10,
                            double complex_share = 0.50);

}  // namespace snb::driver

#endif  // SNB_DRIVER_QUERY_MIX_H_
