file(REMOVE_RECURSE
  "CMakeFiles/bi_queries_test.dir/bi_queries_test.cc.o"
  "CMakeFiles/bi_queries_test.dir/bi_queries_test.cc.o.d"
  "bi_queries_test"
  "bi_queries_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bi_queries_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
