#include "queries/recycler.h"

#include <algorithm>

namespace snb::queries {

std::shared_ptr<const std::vector<schema::PersonId>> TwoHopRecycler::Get(
    const GraphStore& store, schema::PersonId person) {
  // Read the version before computing: if a write lands in between, the
  // entry is stored under the older version and simply recomputed next
  // time — stale entries are never served because the stored version must
  // match the current one at lookup.
  uint64_t version = store.KnowsVersion();
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(person);
    if (it != cache_.end() && it->second.version == version) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second.circle;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  auto circle = std::make_shared<const std::vector<schema::PersonId>>(
      TwoHopCircle(store, person));
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (cache_.size() >= capacity_) cache_.clear();
    cache_[person] = {version, circle};
  }
  return circle;
}

std::vector<Q9Result> Query9Recycled(const GraphStore& store,
                                     TwoHopRecycler& recycler,
                                     schema::PersonId start,
                                     TimestampMs max_date, int limit) {
  std::shared_ptr<const std::vector<schema::PersonId>> circle =
      recycler.Get(store, start);
  auto lock = store.ReadLock();
  std::vector<Q9Result> candidates;
  for (schema::PersonId pid : *circle) {
    const store::PersonRecord* p = store.FindPerson(pid);
    if (p == nullptr) continue;
    size_t upper = p->messages.size();
    // Binary search the date-ordered per-creator message list.
    auto it = std::partition_point(
        p->messages.begin(), p->messages.end(), [&](schema::MessageId id) {
          const store::MessageRecord* m = store.FindMessage(id);
          return m != nullptr && m->data.creation_date <= max_date - 1;
        });
    upper = static_cast<size_t>(it - p->messages.begin());
    size_t take = std::min<size_t>(upper, static_cast<size_t>(limit));
    for (size_t i = upper - take; i < upper; ++i) {
      const store::MessageRecord* m = store.FindMessage(p->messages[i]);
      if (m == nullptr) continue;
      candidates.push_back({m->data.id, pid, m->data.creation_date});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Q9Result& a, const Q9Result& b) {
              if (a.creation_date != b.creation_date) {
                return a.creation_date > b.creation_date;
              }
              return a.message_id < b.message_id;
            });
  if (static_cast<int>(candidates.size()) > limit) candidates.resize(limit);
  return candidates;
}

}  // namespace snb::queries
