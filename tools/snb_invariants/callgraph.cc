#include "snb_invariants/callgraph.h"

#include <cxxabi.h>

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <set>

namespace snb::inv {
namespace {

bool IsHexDigit(char c) {
  return std::isxdigit(static_cast<unsigned char>(c)) != 0;
}

bool AllDigits(const std::string& s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(), [](char c) {
    return std::isdigit(static_cast<unsigned char>(c)) != 0;
  });
}

/// Splits on any whitespace run.
std::vector<std::string> Tokens(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ' ' || c == '\t') {
      if (!cur.empty()) out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

/// Instruction prefixes objdump prints as separate leading tokens.
bool IsPrefixToken(const std::string& t) {
  return t == "lock" || t == "rep" || t == "repz" || t == "repnz" ||
         t == "notrack" || t == "bnd" || t == "data16" || t == "cs";
}

struct PendingTransfer {
  uint64_t from_func = 0;
  uint64_t target = 0;
  bool call = false;  // call insn (jumps only become edges cross-function).
};

}  // namespace

std::string Demangle(const std::string& mangled) {
  int status = -1;
  char* out = abi::__cxa_demangle(mangled.c_str(), nullptr, nullptr, &status);
  if (status != 0 || out == nullptr) {
    std::free(out);
    return mangled;
  }
  std::string result(out);
  std::free(out);
  return result;
}

std::string StripCloneSuffix(const std::string& raw, std::string* suffix) {
  std::string base = raw;
  std::string sfx;
  for (;;) {
    size_t dot = base.rfind('.');
    if (dot == std::string::npos || dot == 0) break;
    std::string tail = base.substr(dot + 1);
    if (tail == "cold") {
      sfx = base.substr(dot) + sfx;
      base.resize(dot);
      continue;
    }
    if (AllDigits(tail)) {
      size_t dot2 = base.rfind('.', dot - 1);
      if (dot2 == std::string::npos) break;
      std::string name = base.substr(dot2 + 1, dot - dot2 - 1);
      if (name == "part" || name == "constprop" || name == "isra" ||
          name == "cold" || name == "lto_priv") {
        sfx = base.substr(dot2) + sfx;
        base.resize(dot2);
        continue;
      }
    }
    break;
  }
  *suffix = sfx;
  return base;
}

bool GlobMatch(const std::string& pattern, const std::string& text) {
  // Iterative glob with single-star backtracking.
  size_t p = 0, t = 0;
  size_t star = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == text[t] || pattern[p] == '?')) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_t = t;
    } else if (star != std::string::npos) {
      p = star + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

CallGraph CallGraph::FromDisassembly(const std::string& text) {
  CallGraph g;
  FuncNode* current = nullptr;
  // All direct transfers resolve in a second pass: a forward call/jump
  // targets a function that has not been parsed yet, so Containing()
  // cannot be consulted mid-stream.
  std::vector<PendingTransfer> transfers;
  std::set<std::pair<uint64_t, uint64_t>> edges;  // Dedup (from, to).

  size_t pos = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    std::string line = nl == std::string::npos
                           ? text.substr(pos)
                           : text.substr(pos, nl - pos);
    pos = nl == std::string::npos ? text.size() : nl + 1;

    // Function header: "0000000000401000 <label>:".
    if (!line.empty() && IsHexDigit(line[0])) {
      size_t sp = line.find(' ');
      if (sp != std::string::npos && sp + 1 < line.size() &&
          line[sp + 1] == '<' && line.back() == ':' &&
          line[line.size() - 2] == '>') {
        FuncNode node;
        node.addr = std::strtoull(line.substr(0, sp).c_str(), nullptr, 16);
        node.raw = line.substr(sp + 2, line.size() - sp - 4);
        if (node.raw.size() > 4 &&
            node.raw.compare(node.raw.size() - 4, 4, "@plt") == 0) {
          node.plt = true;
          node.match_name =
              Demangle(node.raw.substr(0, node.raw.size() - 4));
          node.display = node.match_name + "@plt";
        } else {
          std::string sfx;
          std::string base = StripCloneSuffix(node.raw, &sfx);
          node.match_name = Demangle(base);
          node.display = sfx.empty() ? node.match_name
                                     : node.match_name + " [" + sfx + "]";
        }
        uint64_t addr = node.addr;
        auto [it, inserted] = g.funcs_.emplace(addr, std::move(node));
        current = &it->second;
        if (inserted) {
          g.by_match_.emplace(it->second.match_name, addr);
        }
        continue;
      }
    }

    // Instruction line: "  84621:\t<insn>".
    if (current == nullptr || current->plt) continue;
    size_t i = 0;
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    size_t hex_start = i;
    while (i < line.size() && IsHexDigit(line[i])) ++i;
    if (i == hex_start || i >= line.size() || line[i] != ':') continue;
    uint64_t insn_addr =
        std::strtoull(line.substr(hex_start, i - hex_start).c_str(),
                      nullptr, 16);
    std::vector<std::string> toks = Tokens(line.substr(i + 1));
    size_t m = 0;
    while (m < toks.size() && IsPrefixToken(toks[m])) ++m;
    if (m >= toks.size()) continue;
    const std::string& mnemonic = toks[m];
    std::string operand = m + 1 < toks.size() ? toks[m + 1] : "";

    bool is_call = mnemonic == "call" || mnemonic == "callq";
    bool is_jump = !is_call && !mnemonic.empty() && mnemonic[0] == 'j';
    if (!is_call && !is_jump) continue;

    if (!operand.empty() && operand[0] == '*') {
      // Indexed memory operand => compiler jump table (intra-function).
      // Anything else (*%reg, *mem single-pointer) is a real indirect
      // transfer the rules must see.
      bool indexed = operand.find(',') != std::string::npos;
      if (is_jump && indexed) {
        ++current->jump_table_jmps;
      } else {
        current->indirect.push_back(
            {insn_addr, mnemonic + " " + operand});
      }
      continue;
    }
    if (operand.empty() || !IsHexDigit(operand[0])) continue;
    uint64_t target = std::strtoull(operand.c_str(), nullptr, 16);
    transfers.push_back({current->addr, target, is_call});
  }

  for (const PendingTransfer& t : transfers) {
    const FuncNode* target = g.Containing(t.target);
    if (target == nullptr) continue;
    // A jump landing in its own function is ordinary control flow; a
    // call to the own function is recursion and stays an edge.
    if (!t.call && target->addr == t.from_func) continue;
    if (edges.emplace(t.from_func, target->addr).second) {
      g.funcs_[t.from_func].callees.push_back(target->addr);
    }
  }
  return g;
}

const FuncNode* CallGraph::Containing(uint64_t addr) const {
  auto it = funcs_.upper_bound(addr);
  if (it == funcs_.begin()) return nullptr;
  return &std::prev(it)->second;
}

std::vector<const FuncNode*> CallGraph::ByMatchName(
    const std::string& name) const {
  std::vector<const FuncNode*> out;
  auto [lo, hi] = by_match_.equal_range(name);
  for (auto it = lo; it != hi; ++it) {
    out.push_back(&funcs_.at(it->second));
  }
  return out;
}

std::vector<SymbolEntry> ParseSymbolTable(const std::string& text) {
  std::vector<SymbolEntry> out;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    std::string line = nl == std::string::npos
                           ? text.substr(pos)
                           : text.substr(pos, nl - pos);
    pos = nl == std::string::npos ? text.size() : nl + 1;

    // "0000000000002004 l     O snb_invariants.x.29 0000000000000001 name"
    // The flags field is fixed at 7 characters.
    size_t i = 0;
    while (i < line.size() && IsHexDigit(line[i])) ++i;
    if (i < 8 || i >= line.size() || line[i] != ' ') continue;
    SymbolEntry e;
    e.addr = std::strtoull(line.substr(0, i).c_str(), nullptr, 16);
    size_t flags_end = i + 1 + 7;
    if (flags_end >= line.size()) continue;
    std::vector<std::string> rest = Tokens(line.substr(flags_end));
    if (rest.size() < 3) continue;
    e.section = rest[0];
    if (!std::all_of(rest[1].begin(), rest[1].end(), IsHexDigit)) continue;
    e.size = std::strtoull(rest[1].c_str(), nullptr, 16);
    size_t name_idx = 2;
    if (rest[name_idx] == ".hidden" && rest.size() > 3) ++name_idx;
    e.name = rest[name_idx];
    out.push_back(std::move(e));
  }
  return out;
}

std::vector<RootTag> ExtractRootTags(const std::vector<SymbolEntry>& symbols,
                                     std::vector<std::string>* errors) {
  constexpr const char kSectionPrefix[] = "snb_invariants.";
  constexpr const char kTagMarker[] = "::snb_invariant_root_";
  std::vector<RootTag> out;
  for (const SymbolEntry& sym : symbols) {
    if (sym.section.compare(0, sizeof(kSectionPrefix) - 1, kSectionPrefix) !=
        0) {
      continue;
    }
    std::string rest = sym.section.substr(sizeof(kSectionPrefix) - 1);
    size_t dot = rest.rfind('.');
    std::string domain =
        dot != std::string::npos && AllDigits(rest.substr(dot + 1))
            ? rest.substr(0, dot)
            : rest;
    if (domain.empty()) {
      errors->push_back("tag symbol '" + sym.name +
                        "' has a malformed section name '" + sym.section +
                        "'");
      continue;
    }
    std::string dem = Demangle(sym.name);
    size_t marker = dem.rfind(kTagMarker);
    if (marker == std::string::npos || marker == 0) {
      errors->push_back(
          "tag symbol '" + sym.name + "' (section '" + sym.section +
          "') does not name an enclosing function — SNB_INVARIANT_ROOT "
          "must be placed inside a C++ function body");
      continue;
    }
    RootTag tag;
    tag.domain = std::move(domain);
    tag.function = dem.substr(0, marker);
    tag.symbol = sym.name;
    out.push_back(std::move(tag));
  }
  return out;
}

}  // namespace snb::inv
