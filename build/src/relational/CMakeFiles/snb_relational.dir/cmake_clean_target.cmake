file(REMOVE_RECURSE
  "libsnb_relational.a"
)
