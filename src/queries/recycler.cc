#include "queries/recycler.h"

#include <algorithm>
#include <utility>

namespace snb::queries {

std::shared_ptr<const std::vector<schema::PersonId>> TwoHopRecycler::Get(
    const GraphStore& store, schema::PersonId person) {
  // Read the version before computing: if a write lands in between, the
  // entry is stored under the older version and simply recomputed next
  // time — stale entries are never served because the stored version must
  // match the current one at lookup.
  uint64_t version = store.KnowsVersion();
  {
    util::MutexLock lock(&mu_);
    auto it = cache_.find(person);
    if (it != cache_.end() && it->second.version == version) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      it->second.referenced = true;
      return it->second.circle;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  auto circle = std::make_shared<const std::vector<schema::PersonId>>(
      TwoHopCircle(store, person));
  {
    util::MutexLock lock(&mu_);
    PutLocked(person, {version, true, circle});
  }
  return circle;
}

void TwoHopRecycler::PutLocked(schema::PersonId person, Entry entry) {
  auto it = cache_.find(person);
  if (it != cache_.end()) {
    // Version refresh: the key already owns a ring slot.
    it->second = std::move(entry);
    return;
  }
  if (cache_.size() >= capacity_ && !ring_.empty()) {
    // Clock sweep: skip (and strip) referenced entries; evict the first
    // unreferenced one and reuse its ring slot. Terminates within two
    // passes — the first pass clears every referenced bit it crosses.
    for (;;) {
      auto victim = cache_.find(ring_[hand_]);
      if (victim->second.referenced) {
        victim->second.referenced = false;
        hand_ = (hand_ + 1) % ring_.size();
        continue;
      }
      cache_.erase(victim);
      ring_[hand_] = person;
      hand_ = (hand_ + 1) % ring_.size();
      evictions_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
  } else {
    ring_.push_back(person);
  }
  cache_[person] = std::move(entry);
}

std::vector<Q9Result> Query9Recycled(const GraphStore& store,
                                     TwoHopRecycler& recycler,
                                     schema::PersonId start,
                                     TimestampMs max_date, int limit) {
  std::shared_ptr<const std::vector<schema::PersonId>> circle =
      recycler.Get(store, start);
  auto pin = store.ReadLock();
  std::vector<Q9Result> candidates;
  for (schema::PersonId pid : *circle) {
    const store::PersonRecord* p = store.FindPerson(pin, pid);
    if (p == nullptr) continue;
    // Binary search the date-ordered per-creator message list; creation
    // dates ride inline, so no message record is touched per probe.
    auto messages = p->messages.view();
    auto it = std::partition_point(
        messages.begin(), messages.end(),
        [&](const store::DatedEdge& e) { return e.date < max_date; });
    size_t upper = static_cast<size_t>(it - messages.begin());
    size_t take = std::min<size_t>(upper, static_cast<size_t>(limit));
    for (size_t i = upper - take; i < upper; ++i) {
      candidates.push_back({messages[i].id, pid, messages[i].date});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Q9Result& a, const Q9Result& b) {
              if (a.creation_date != b.creation_date) {
                return a.creation_date > b.creation_date;
              }
              return a.message_id < b.message_id;
            });
  if (static_cast<int>(candidates.size()) > limit) candidates.resize(limit);
  return candidates;
}

}  // namespace snb::queries
