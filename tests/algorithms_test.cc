// Tests for the SNB-Algorithms workload implementations.
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "algorithms/graph_algorithms.h"
#include "datagen/datagen.h"

namespace snb::algorithms {
namespace {

// A 4-cycle plus a pendant: 0-1-2-3-0, 4-0; vertex 5 isolated.
CsrGraph SmallGraph() {
  return CsrGraph(6, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {4, 0}});
}

// Two triangles joined by one edge: {0,1,2} and {3,4,5}, bridge 2-3.
CsrGraph TwoTriangles() {
  return CsrGraph(6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}});
}

TEST(CsrGraphTest, BuildsSortedDedupedAdjacency) {
  CsrGraph g(3, {{0, 1}, {1, 0}, {0, 2}, {0, 0}});
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);  // Parallel edge collapsed, self-loop gone.
  EXPECT_EQ(g.Degree(0), 2u);
  EXPECT_EQ(g.Degree(1), 1u);
  EXPECT_EQ(*g.NeighborsBegin(0), 1u);
  EXPECT_EQ(*(g.NeighborsBegin(0) + 1), 2u);
}

TEST(BfsTest, LevelsAndReachability) {
  CsrGraph g = SmallGraph();
  uint64_t reached = 0;
  std::vector<int32_t> level = BreadthFirstSearch(g, 0, &reached);
  EXPECT_EQ(reached, 5u);
  EXPECT_EQ(level[0], 0);
  EXPECT_EQ(level[1], 1);
  EXPECT_EQ(level[3], 1);
  EXPECT_EQ(level[2], 2);
  EXPECT_EQ(level[4], 1);
  EXPECT_EQ(level[5], -1);  // Isolated.
}

TEST(ConnectedComponentsTest, CountsComponents) {
  uint64_t count = 0;
  std::vector<uint32_t> comp = ConnectedComponents(SmallGraph(), &count);
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(comp[0], comp[4]);
  EXPECT_NE(comp[0], comp[5]);
}

TEST(PageRankTest, SumsToOneAndRanksHubs) {
  CsrGraph g = SmallGraph();
  std::vector<double> pr = PageRank(g);
  double sum = 0;
  for (double v : pr) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-6);
  // Vertex 0 has the highest degree -> highest rank among the cycle.
  EXPECT_GT(pr[0], pr[1]);
  EXPECT_GT(pr[0], pr[2]);
  // The isolated vertex keeps only teleport mass.
  EXPECT_LT(pr[5], pr[1]);
}

TEST(PageRankTest, UniformOnRegularGraph) {
  // On a cycle (2-regular), PageRank is uniform.
  CsrGraph cycle(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  std::vector<double> pr = PageRank(cycle);
  for (double v : pr) EXPECT_NEAR(v, 0.25, 1e-9);
}

TEST(ClusteringTest, TriangleCounts) {
  EXPECT_EQ(CountTriangles(SmallGraph()), 0u);
  EXPECT_EQ(CountTriangles(TwoTriangles()), 2u);
  CsrGraph k4(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}});
  EXPECT_EQ(CountTriangles(k4), 4u);
  EXPECT_DOUBLE_EQ(AverageClusteringCoefficient(k4), 1.0);
}

TEST(ClusteringTest, LocalCoefficient) {
  CsrGraph g = TwoTriangles();
  EXPECT_DOUBLE_EQ(LocalClusteringCoefficient(g, 0), 1.0);
  // Vertex 2 has neighbors {0,1,3}: only (0,1) is an edge -> 1/3.
  EXPECT_NEAR(LocalClusteringCoefficient(g, 2), 1.0 / 3.0, 1e-9);
}

TEST(LabelPropagationTest, FindsObviousCommunities) {
  CsrGraph g = TwoTriangles();
  std::vector<uint32_t> labels = LabelPropagation(g);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_EQ(labels[4], labels[5]);
  double q = Modularity(g, labels);
  EXPECT_GT(q, 0.2);
}

TEST(ModularityTest, SingleCommunityIsZero) {
  CsrGraph g = TwoTriangles();
  std::vector<uint32_t> one(6, 0);
  EXPECT_NEAR(Modularity(g, one), 0.0, 1e-9);
}

class GeneratedGraphTest : public ::testing::Test {
 protected:
  static const CsrGraph& graph() {
    static CsrGraph* g = [] {
      datagen::DatagenConfig config;
      config.num_persons = 500;
      config.split_update_stream = false;
      datagen::Dataset ds = datagen::Generate(config);
      return new CsrGraph(CsrGraph::FromKnows(config.num_persons,
                                              ds.bulk.knows));
    }();
    return *g;
  }
};

TEST_F(GeneratedGraphTest, MostlyOneGiantComponent) {
  // "The dataset forms a graph that is a fully connected component of
  // persons" — at mini scale a few stragglers are tolerated.
  uint64_t count = 0;
  std::vector<uint32_t> comp = ConnectedComponents(graph(), &count);
  std::map<uint32_t, int> sizes;
  for (uint32_t c : comp) ++sizes[c];
  int giant = 0;
  for (auto [_, size] : sizes) giant = std::max(giant, size);
  EXPECT_GT(giant, static_cast<int>(graph().num_vertices() * 0.95));
}

TEST_F(GeneratedGraphTest, CorrelatedGraphClustersAboveRandom) {
  // The correlation dimensions must produce community structure: the
  // generated graph's clustering coefficient has to clearly exceed a
  // degree-matched random rewiring (the [13] validation, in miniature).
  double real_cc = AverageClusteringCoefficient(graph());
  util::Rng rng(99, 1, util::RandomPurpose::kFriendPick);
  CsrGraph random = graph().DegreeMatchedRandom(rng);
  double random_cc = AverageClusteringCoefficient(random);
  EXPECT_GT(real_cc, 2.0 * random_cc)
      << "real=" << real_cc << " random=" << random_cc;
}

TEST_F(GeneratedGraphTest, LouvainFindsCommunities) {
  // The correlation dimensions induce real community structure (partition
  // by home country alone reaches q ~ 0.28 on this graph); Louvain must
  // find at least that much.
  std::vector<uint32_t> labels = Louvain(graph());
  double q = Modularity(graph(), labels);
  EXPECT_GT(q, 0.2);
  // And clearly more than on a degree-matched random graph.
  util::Rng rng(7, 2, util::RandomPurpose::kFriendPick);
  CsrGraph random = graph().DegreeMatchedRandom(rng);
  double random_q = Modularity(random, Louvain(random));
  EXPECT_GT(q, random_q + 0.05) << "q=" << q << " random_q=" << random_q;
}

TEST(LouvainTest, TwoTrianglesSplit) {
  CsrGraph g = TwoTriangles();
  std::vector<uint32_t> labels = Louvain(g);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_EQ(labels[4], labels[5]);
  EXPECT_NE(labels[0], labels[3]);
  EXPECT_GT(Modularity(g, labels), 0.3);
}

TEST_F(GeneratedGraphTest, PageRankCorrelatesWithDegree) {
  std::vector<double> pr = PageRank(graph());
  // Spearman-ish check: the max-degree vertex ranks in the top decile.
  uint32_t max_v = 0;
  for (uint32_t v = 0; v < graph().num_vertices(); ++v) {
    if (graph().Degree(v) > graph().Degree(max_v)) max_v = v;
  }
  int higher = 0;
  for (uint32_t v = 0; v < graph().num_vertices(); ++v) {
    if (pr[v] > pr[max_v]) ++higher;
  }
  EXPECT_LT(higher, static_cast<int>(graph().num_vertices() / 10));
}

}  // namespace
}  // namespace snb::algorithms
