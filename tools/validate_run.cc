// Validation-mode CLI: golden-set emission and replay.
//
//   ./tools/validate_run --emit [--out validation_set.json]
//                        [--seed S] [--persons N] [--segments K]
//
//     Runs the serial reference execution (datagen at the given seed,
//     updates applied in stream order, deterministic read battery after
//     each segment) and writes the versioned golden file
//     ("snb-validation-v1").
//
//   ./tools/validate_run --replay validation_set.json
//                        [--threads N] [--mode sequential|parallel|windowed]
//                        [--shards N] [--exec scalar|batched]
//                        [--report report.json] [--mutate <op>]
//
//     Regenerates the dataset from the golden file's parameters, replays
//     the update segments through the real driver at the requested thread
//     count, execution mode and store shard count, re-runs the battery
//     and diffs every canonical row. --shards runs the sharded store
//     (1..8); the serial single-shard emission must replay
//     byte-identically at every count. Writes report.json (schema
//     snb-report-v3) with the "validation" section and the replayed
//     updates' latency table.
//     --exec=batched runs the read battery through the block-at-a-time
//     engine for the ported queries (Q5/Q9/Q14); the golden rows are the
//     same either way — replay under both modes proves byte-identity.
//     --mutate injects a result corruption for the named op (e.g.
//     "complex.Q9") — the mutation test: a replay so poisoned MUST fail.
//
// Exit codes: 0 = success / zero diffs, 1 = usage or setup error,
// 2 = divergence detected.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "driver/driver.h"
#include "exec/exec_mode.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "store/shard_router.h"
#include "validate/canonical.h"
#include "validate/golden.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --emit [--out FILE] [--seed S] [--persons N] "
               "[--segments K]\n"
               "       %s --replay FILE [--threads N] "
               "[--mode sequential|parallel|windowed] [--shards N] "
               "[--exec scalar|batched] [--report FILE] "
               "[--mutate OP]\n",
               argv0, argv0);
  return 1;
}

bool ParseMode(const std::string& name, snb::driver::ExecutionMode* out) {
  if (name == "sequential") {
    *out = snb::driver::ExecutionMode::kSequentialForum;
  } else if (name == "parallel") {
    *out = snb::driver::ExecutionMode::kParallelGct;
  } else if (name == "windowed") {
    *out = snb::driver::ExecutionMode::kWindowed;
  } else {
    return false;
  }
  return true;
}

int RunEmit(const std::string& out_path,
            const snb::validate::GoldenEmitOptions& options) {
  using namespace snb;
  validate::GoldenSet golden;
  util::Status st = validate::EmitGoldenSet(options, &golden);
  if (!st.ok()) {
    std::fprintf(stderr, "emit failed: %s\n", st.message().c_str());
    return 1;
  }
  st = validate::WriteGoldenSet(golden, out_path);
  if (!st.ok()) {
    std::fprintf(stderr, "cannot write %s: %s\n", out_path.c_str(),
                 st.message().c_str());
    return 1;
  }
  uint64_t ops = 0;
  for (const auto& segment : golden.segments) {
    ops += segment.operations.size();
  }
  std::printf(
      "emitted %s: seed=%s persons=%s segments=%zu battery_ops=%s\n",
      out_path.c_str(), validate::FormatU64(golden.seed).c_str(),
      validate::FormatU64(golden.num_persons).c_str(),
      golden.segments.size(), validate::FormatU64(ops).c_str());
  return 0;
}

int RunReplay(const std::string& golden_path, const std::string& report_path,
              snb::validate::ReplayOptions options) {
  using namespace snb;
  validate::GoldenSet golden;
  util::Status st = validate::ReadGoldenSet(golden_path, &golden);
  if (!st.ok()) {
    std::fprintf(stderr, "cannot read %s: %s\n", golden_path.c_str(),
                 st.message().c_str());
    return 1;
  }
  obs::MetricsRegistry metrics;
  options.metrics = &metrics;
  validate::ReplayOutcome outcome;
  st = validate::ReplayGoldenSet(golden, options, &outcome);
  if (!st.ok()) {
    std::fprintf(stderr, "replay failed: %s\n", st.message().c_str());
    return 1;
  }

  obs::RunReport report;
  report.title = "golden replay of " + golden_path;
  report.exec_mode = exec::ExecModeName(exec::DefaultExecMode());
  report.metrics = metrics.Snapshot();
  report.has_validation = true;
  obs::ValidationSection& v = report.validation;
  v.passed = outcome.passed;
  v.golden_path = golden_path;
  v.threads = options.threads;
  v.mode = driver::ExecutionModeName(options.mode);
  v.segments_compared = outcome.segments_compared;
  v.ops_compared = outcome.ops_compared;
  v.rows_compared = outcome.rows_compared;
  v.diffs = outcome.diffs;
  if (outcome.diffs > 0) {
    const validate::Divergence& d = outcome.first;
    v.first_divergence = "segment " + std::to_string(d.segment) + " " +
                         d.op + "(" + d.params + ") row " +
                         validate::FormatU64(d.row) + ": expected \"" +
                         d.expected + "\", got \"" + d.actual + "\"";
  } else if (!outcome.error.empty()) {
    v.first_divergence = outcome.error;
  }
  if (!report_path.empty()) {
    std::string json = obs::ToJson(report);
    st = obs::ValidateReportJson(json);
    if (!st.ok()) {
      std::fprintf(stderr, "report failed self-validation: %s\n",
                   st.message().c_str());
      return 1;
    }
    st = obs::WriteFileReport(report_path, json);
    if (!st.ok()) {
      std::fprintf(stderr, "cannot write %s: %s\n", report_path.c_str(),
                   st.message().c_str());
      return 1;
    }
  }

  std::printf(
      "replay %s: threads=%u mode=%s exec=%s segments=%s ops=%s rows=%s "
      "diffs=%s\n",
      outcome.passed ? "PASSED" : "FAILED", options.threads, v.mode.c_str(),
      report.exec_mode.c_str(),
      validate::FormatU64(outcome.segments_compared).c_str(),
      validate::FormatU64(outcome.ops_compared).c_str(),
      validate::FormatU64(outcome.rows_compared).c_str(),
      validate::FormatU64(outcome.diffs).c_str());
  if (!v.first_divergence.empty()) {
    std::printf("first divergence: %s\n", v.first_divergence.c_str());
  }
  return outcome.passed ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool emit = false;
  bool replay = false;
  std::string golden_path = "validation_set.json";
  std::string report_path;
  snb::validate::GoldenEmitOptions emit_options;
  snb::validate::ReplayOptions replay_options;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--emit") {
      emit = true;
    } else if (arg == "--replay") {
      const char* value = next();
      if (value == nullptr) return Usage(argv[0]);
      replay = true;
      golden_path = value;
    } else if (arg == "--out") {
      const char* value = next();
      if (value == nullptr) return Usage(argv[0]);
      golden_path = value;
    } else if (arg == "--seed") {
      const char* value = next();
      if (value == nullptr) return Usage(argv[0]);
      emit_options.seed = std::strtoull(value, nullptr, 0);
    } else if (arg == "--persons") {
      const char* value = next();
      if (value == nullptr) return Usage(argv[0]);
      emit_options.num_persons = std::strtoull(value, nullptr, 10);
    } else if (arg == "--segments") {
      const char* value = next();
      if (value == nullptr) return Usage(argv[0]);
      emit_options.num_segments = std::atoi(value);
    } else if (arg == "--threads") {
      const char* value = next();
      if (value == nullptr) return Usage(argv[0]);
      int threads = std::atoi(value);
      if (threads < 1) return Usage(argv[0]);
      replay_options.threads = static_cast<uint32_t>(threads);
    } else if (arg == "--mode") {
      const char* value = next();
      if (value == nullptr || !ParseMode(value, &replay_options.mode)) {
        return Usage(argv[0]);
      }
    } else if (arg == "--shards") {
      const char* value = next();
      if (value == nullptr) return Usage(argv[0]);
      int shards = std::atoi(value);
      if (shards < 1 || shards > static_cast<int>(snb::store::kMaxShards)) {
        return Usage(argv[0]);
      }
      replay_options.shards = static_cast<uint32_t>(shards);
    } else if (arg == "--report") {
      const char* value = next();
      if (value == nullptr) return Usage(argv[0]);
      report_path = value;
    } else if (arg == "--exec") {
      const char* value = next();
      snb::exec::ExecMode exec_mode;
      if (value == nullptr || !snb::exec::ParseExecMode(value, &exec_mode)) {
        return Usage(argv[0]);
      }
      snb::exec::SetDefaultExecMode(exec_mode);
    } else if (arg == "--mutate") {
      const char* value = next();
      if (value == nullptr) return Usage(argv[0]);
      replay_options.mutate_op = value;
    } else {
      return Usage(argv[0]);
    }
  }
  if (emit == replay) return Usage(argv[0]);  // Exactly one action.
  if (emit) return RunEmit(golden_path, emit_options);
  return RunReplay(golden_path, report_path, replay_options);
}
