# Empty compiler generated dependencies file for bench_fig2a_post_density.
# This may be replaced when dependencies are built.
