# Empty dependencies file for degree_model_test.
# This may be replaced when dependencies are built.
