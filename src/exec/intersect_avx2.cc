// AVX2 set-intersection kernel. This is the ONLY translation unit compiled
// with -mavx2 (see src/exec/CMakeLists.txt); the rest of the tree stays at
// the baseline ISA and reaches this code through the runtime dispatch in
// IntersectSimd(), so the binary keeps running on pre-AVX2 hardware.
//
// Shape: compare 4-lane blocks of each list all-pairs (one vector equality
// per rotation of the b block), turn the lane mask into compressed stores,
// then advance whichever block has the smaller maximum. Correctness
// argument for the advance rule: a block is discarded only when its max is
// <= the other block's max, and every element of the discarded block was
// all-pairs compared against the other block in this iteration; any
// not-yet-seen element of the other list is strictly greater than that
// block's max, hence greater than every discarded element — ascending,
// duplicate-free inputs — so no common element can be missed. The scalar
// merge finishes the tails. tests/exec_intersect_test.cc drives block
// boundaries (sizes around multiples of 4) against std::set_intersection.
#include <cstddef>
#include <cstdint>

#if defined(SNB_EXEC_HAVE_AVX2)

#include <immintrin.h>

namespace snb::exec {

size_t IntersectScalar(const uint64_t* a, size_t na, const uint64_t* b,
                       size_t nb, uint64_t* out);

size_t IntersectAvx2(const uint64_t* a, size_t na, const uint64_t* b,
                     size_t nb, uint64_t* out) {
  size_t i = 0, j = 0, k = 0;
  while (i + 4 <= na && j + 4 <= nb) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    // All-pairs 4x4 equality: vb rotated by 0..3 lanes. Each a-lane can
    // match at most one b value (inputs are duplicate-free), so OR-ing
    // the four masks cannot double-count a lane.
    __m256i eq = _mm256_cmpeq_epi64(va, vb);
    eq = _mm256_or_si256(
        eq, _mm256_cmpeq_epi64(va, _mm256_permute4x64_epi64(vb, 0x39)));
    eq = _mm256_or_si256(
        eq, _mm256_cmpeq_epi64(va, _mm256_permute4x64_epi64(vb, 0x4E)));
    eq = _mm256_or_si256(
        eq, _mm256_cmpeq_epi64(va, _mm256_permute4x64_epi64(vb, 0x93)));
    int mask = _mm256_movemask_pd(_mm256_castsi256_pd(eq));
    while (mask != 0) {
      int lane = __builtin_ctz(static_cast<unsigned>(mask));
      out[k++] = a[i + static_cast<size_t>(lane)];
      mask &= mask - 1;
    }
    const uint64_t amax = a[i + 3];
    const uint64_t bmax = b[j + 3];
    i += amax <= bmax ? 4 : 0;
    j += bmax <= amax ? 4 : 0;
  }
  return k + IntersectScalar(a + i, na - i, b + j, nb - j, out + k);
}

}  // namespace snb::exec

#endif  // SNB_EXEC_HAVE_AVX2
