# Empty compiler generated dependencies file for bench_table6_complex_reads.
# This may be replaced when dependencies are built.
