
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig6_parameter_curation.cc" "bench/CMakeFiles/bench_fig6_parameter_curation.dir/bench_fig6_parameter_curation.cc.o" "gcc" "bench/CMakeFiles/bench_fig6_parameter_curation.dir/bench_fig6_parameter_curation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/snb_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/snb_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/snb_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/queries/CMakeFiles/snb_queries.dir/DependInfo.cmake"
  "/root/repo/build/src/curation/CMakeFiles/snb_curation.dir/DependInfo.cmake"
  "/root/repo/build/src/store/CMakeFiles/snb_store.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/snb_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/schema/CMakeFiles/snb_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/snb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
